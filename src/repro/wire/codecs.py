"""Payload codecs for the telemetry wire format.

A codec turns the ``watts`` matrix of one
:class:`~repro.stream.ingest.SampleBatch` into payload bytes and back,
and *states its own per-sample error bound* — the number the
:class:`~repro.faults.quality.QualityReport` stamps into the data's
provenance.  Four base codecs, behind a registry/factory:

``raw64`` (id 1)
    IEEE-754 float64 passthrough.  Bit-identical; bound 0 W.
``delta-varint`` (id 2)
    Quantise to integer milliwatts, take per-node first differences
    along time, zigzag-map to unsigned, and pack as LEB128 varints.
    Lossless *at the declared milliwatt resolution*: the round trip
    returns exactly ``rint(watts·1000)/1000``, so the per-sample error
    is at most half a milliwatt and re-encoding the decoded matrix is
    bit-identical.  Both directions are vectorised (one numpy pass per
    varint byte position), which is what carries the ≥10 M samples/s
    benchmark floor.
``quant8`` / ``quant12`` (ids 3 / 4)
    Lossy truncating codecs: per-frame affine quantisation to 8- or
    12-bit codes between the frame's min and max.  The per-sample
    error is at most half the step, and the *actual* step is written
    into the payload, so the decoder recovers the exact bound that
    held for each frame.

``zlib`` composes as an outer layer over any base codec
(``zlib(delta-varint)``): the frame's :data:`~repro.wire.framing.FLAG_ZLIB`
flag records it, the error bound is the inner codec's.

Everything here is a pure function of the input matrix — no RNG, no
clock — so encode/decode is trivially deterministic.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.units import (
    MILLIWATTS_PER_WATT,
    milliwatts_to_watts,
    watts_to_milliwatts,
)

__all__ = [
    "Codec",
    "Raw64Codec",
    "DeltaVarintCodec",
    "Quant8Codec",
    "Quant12Codec",
    "ZlibCodec",
    "CODEC_NAMES",
    "available_codecs",
    "make_codec",
    "codec_for_frame",
]

#: Half a milliwatt, in watts: the delta-varint grid's worst rounding.
_HALF_MILLIWATT_W = 0.5 / MILLIWATTS_PER_WATT


def _grid_bound_w(grid: np.ndarray) -> float:
    """Advertised error bound for a milliwatt-grid integer matrix.

    Half a milliwatt is exact in real arithmetic, but the
    float64-computed ``|decoded - original|`` can overshoot it by an
    ulp when a sample sits exactly on a half-grid boundary (e.g.
    1.1425 W), so pad by a few ulps at the peak magnitude.  Derived
    from the quantised grid — which encode and decode both hold — so
    writer and reader advertise bit-identical bounds.
    """
    peak_w = float(milliwatts_to_watts(np.abs(grid).max(initial=0)))
    return _HALF_MILLIWATT_W + 4.0 * float(np.spacing(max(peak_w, 1.0)))

#: Longest possible varint for a 64-bit value (ceil(64/7) bytes).
_MAX_VARINT_LEN = 10


class Codec:
    """One payload codec: name, wire id, and its honesty contract.

    ``encode`` returns ``(payload, error_bound_w)`` where the bound is
    the largest possible per-sample deviation of the decoded matrix
    from the encoded one; ``decode`` returns ``(watts, error_bound_w)``
    recovering the same bound from the payload alone.  ``decode``
    raises :class:`ValueError` on malformed payloads — the session
    layer catches it and books the frame as undecodable.
    """

    name: str = ""
    codec_id: int = 0
    lossless: bool = False

    def encode(self, watts: np.ndarray) -> tuple[bytes, float]:
        """Encode a watts matrix; returns ``(payload, error_bound_w)``."""
        raise NotImplementedError  # pragma: no cover - abstract

    def decode(
        self, payload: bytes, n_ticks: int, n_nodes: int
    ) -> tuple[np.ndarray, float]:
        """Decode a payload; returns ``(watts, error_bound_w)``."""
        raise NotImplementedError  # pragma: no cover - abstract

    def decode_into(self, payload: bytes, out: np.ndarray) -> float:
        """Decode a payload straight into a preallocated matrix view.

        ``out`` is a C-contiguous float64 ``(n_ticks, n_nodes)`` view —
        typically a :class:`~repro.shard.slab.Slab` region — so frame
        decode lands in shard storage without allocating a fresh batch
        matrix per frame.  Returns the error bound.  The base
        implementation decodes then copies; codecs with a natural
        in-place path override it.
        """
        if out.ndim != 2 or out.dtype != np.float64:
            raise ValueError("out must be a 2-D float64 matrix view")
        if not out.flags["C_CONTIGUOUS"] or not out.flags["WRITEABLE"]:
            raise ValueError("out must be C-contiguous and writeable")
        watts, bound_w = self.decode(payload, out.shape[0], out.shape[1])
        np.copyto(out, watts)
        return bound_w


def _as_matrix(watts: np.ndarray) -> np.ndarray:
    watts = np.asarray(watts, dtype=np.float64)
    if watts.ndim != 2:
        raise ValueError("watts must be 2-D (n_ticks, n_nodes)")
    return np.ascontiguousarray(watts)


def _expect_len(payload: bytes, n_bytes: int, what: str) -> None:
    if len(payload) != n_bytes:
        raise ValueError(
            f"{what}: expected {n_bytes} payload bytes, got {len(payload)}"
        )


class Raw64Codec(Codec):
    """IEEE-754 float64 passthrough — the bit-identical reference."""

    name = "raw64"
    codec_id = 1
    lossless = True

    def encode(self, watts: np.ndarray) -> tuple[bytes, float]:
        """Dump the float64 matrix verbatim; bound 0 W."""
        return _as_matrix(watts).tobytes(), 0.0

    def decode(
        self, payload: bytes, n_ticks: int, n_nodes: int
    ) -> tuple[np.ndarray, float]:
        """Reinterpret the payload as the original float64 matrix."""
        _expect_len(payload, n_ticks * n_nodes * 8, self.name)
        watts = np.frombuffer(payload, dtype="<f8").reshape(
            n_ticks, n_nodes
        )
        return watts.copy(), 0.0

    def decode_into(self, payload: bytes, out: np.ndarray) -> float:
        """Copy the payload bytes straight into the target view."""
        if out.ndim != 2 or out.dtype != np.float64:
            raise ValueError("out must be a 2-D float64 matrix view")
        if not out.flags["C_CONTIGUOUS"] or not out.flags["WRITEABLE"]:
            raise ValueError("out must be C-contiguous and writeable")
        _expect_len(payload, out.size * 8, self.name)
        np.copyto(
            out, np.frombuffer(payload, dtype="<f8").reshape(out.shape)
        )
        return 0.0


def _zigzag(deltas: np.ndarray) -> np.ndarray:
    """Map signed int64 deltas to unsigned, small-magnitude-first."""
    return (
        np.left_shift(deltas, 1) ^ np.right_shift(deltas, 63)
    ).view(np.uint64)


def _unzigzag(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_zigzag`."""
    half = np.right_shift(codes, np.uint64(1)).view(np.int64)
    sign = (codes & np.uint64(1)).view(np.int64)
    return half ^ -sign


def _varint_encode(values: np.ndarray) -> bytes:
    """LEB128-encode a uint64 vector, one numpy pass per byte slot.

    Strategy: compute each value's varint length with early-exiting
    threshold passes (telemetry deltas are small, so usually two), lay
    all varints out in a fixed-width ``(n, max_len)`` byte matrix, and
    compact it with one boolean selection — row-major order is exactly
    the concatenated varint stream, with no per-value Python work.
    """
    n_values = values.size
    if n_values == 0:
        return b""
    lengths = np.ones(n_values, dtype=np.int8)
    high = values >= np.uint64(1) << np.uint64(7)
    k = 1
    while high.any():
        lengths += high
        k += 1
        if k >= _MAX_VARINT_LEN:
            break
        high = high & (values >= np.uint64(1) << np.uint64(7 * k))
    width = int(lengths.max())
    septets = np.empty((n_values, width), dtype=np.uint8)
    for k in range(width):
        col = (
            np.right_shift(values, np.uint64(7 * k)) & np.uint64(0x7F)
        ).astype(np.uint8)
        col |= (lengths > k + 1).astype(np.uint8) << 7
        septets[:, k] = col
    keep = np.arange(width, dtype=np.int8)[None, :] < lengths[:, None]
    return septets[keep].tobytes()


def _varint_decode(data: np.ndarray, n_values: int) -> np.ndarray:
    """Decode exactly ``n_values`` LEB128 varints; strict on layout."""
    if n_values == 0:
        if data.size:
            raise ValueError("varint payload has trailing bytes")
        return np.zeros(0, dtype=np.uint64)
    terminal = (data & 0x80) == 0
    ends = np.flatnonzero(terminal)
    if ends.size != n_values:
        raise ValueError(
            f"varint payload holds {ends.size} values, expected {n_values}"
        )
    if ends[-1] != data.size - 1:
        raise ValueError("varint payload has trailing bytes")
    starts = np.empty(n_values, dtype=np.int64)
    starts[0] = 0
    starts[1:] = ends[:-1] + 1
    lengths = ends - starts + 1
    width = int(lengths.max())
    if width > _MAX_VARINT_LEN:
        raise ValueError("varint longer than 10 bytes")
    # Inverse of the encoder's compaction: scatter the byte stream back
    # into a fixed-width (n, width) matrix in one boolean assignment,
    # then fold the byte columns together — no per-value index math.
    septets = np.zeros((n_values, width), dtype=np.uint8)
    keep = np.arange(width, dtype=np.int64)[None, :] < lengths[:, None]
    septets[keep] = data
    values = (septets[:, 0] & 0x7F).astype(np.uint64)
    for k in range(1, width):
        column = (septets[:, k] & 0x7F).astype(np.uint64)
        values |= np.left_shift(column, np.uint64(7 * k))
    return values


class DeltaVarintCodec(Codec):
    """Milliwatt quantisation + per-node zigzag delta + varint packing.

    Lossless at the declared milliwatt resolution: decode(encode(x))
    equals ``rint(x·1000)/1000`` exactly, so re-encoding the decoded
    matrix round-trips bit-identically and the per-sample error never
    exceeds half a milliwatt.
    """

    name = "delta-varint"
    codec_id = 2
    lossless = True

    #: Matrices whose milliwatt magnitudes exceed this cannot be
    #: delta-coded in int64 without overflow; refuse loudly instead.
    _MAX_ABS_MILLIWATTS = float(np.int64(1) << np.int64(61))

    def encode(self, watts: np.ndarray) -> tuple[bytes, float]:
        """Quantise to milliwatts, delta-code per node, varint-pack."""
        watts = _as_matrix(watts)
        if not np.all(np.isfinite(watts)):
            raise ValueError(
                "delta-varint requires finite samples (NaN travels as "
                "frame gaps, not payload values)"
            )
        milliwatt_grid = np.rint(watts_to_milliwatts(watts))
        if np.abs(milliwatt_grid).max(initial=0.0) > self._MAX_ABS_MILLIWATTS:
            raise ValueError("sample magnitude overflows the milliwatt grid")
        grid = milliwatt_grid.astype(np.int64)
        # Per-node first differences along time, node-major so each
        # node's (small) deltas are contiguous for the varint packer.
        column_major = grid.T
        deltas = np.empty_like(column_major)
        deltas[:, 0] = column_major[:, 0]
        deltas[:, 1:] = column_major[:, 1:] - column_major[:, :-1]
        return _varint_encode(_zigzag(deltas.ravel())), _grid_bound_w(grid)

    def decode(
        self, payload: bytes, n_ticks: int, n_nodes: int
    ) -> tuple[np.ndarray, float]:
        """Unpack varints and integrate deltas back to watts."""
        data = np.frombuffer(payload, dtype=np.uint8)
        deltas = _unzigzag(_varint_decode(data, n_ticks * n_nodes))
        grid = np.cumsum(
            deltas.reshape(n_nodes, n_ticks), axis=1, dtype=np.int64
        )
        # grid.T is a transpose view; force the (n_ticks, n_nodes)
        # result C-contiguous so batch kernels stay on the fast path.
        return (
            np.ascontiguousarray(milliwatts_to_watts(grid.T)),
            _grid_bound_w(grid),
        )


class _AffineQuantCodec(Codec):
    """Shared machinery for the lossy fixed-width truncating codecs.

    Payload: ``lo`` (f8), ``step`` (f8), then the packed codes.  The
    error bound is ``step/2`` — and because the step is *stored*, the
    decoder recovers the exact bound that held for the frame rather
    than a worst-case guess.
    """

    bits: int = 0

    @property
    def _levels(self) -> int:
        return (1 << self.bits) - 1

    def _pack(self, codes: np.ndarray) -> bytes:
        raise NotImplementedError  # pragma: no cover - abstract

    def _unpack(self, data: np.ndarray, n_codes: int) -> np.ndarray:
        raise NotImplementedError  # pragma: no cover - abstract

    def encode(self, watts: np.ndarray) -> tuple[bytes, float]:
        watts = _as_matrix(watts)
        if not np.all(np.isfinite(watts)):
            raise ValueError(
                f"{self.name} requires finite samples (NaN travels as "
                "frame gaps, not payload values)"
            )
        lo = float(watts.min()) if watts.size else 0.0
        hi = float(watts.max()) if watts.size else 0.0
        step = (hi - lo) / self._levels
        if step > 0.0:
            codes = np.rint((watts - lo) / step)
            codes = np.clip(codes, 0, self._levels).astype(np.uint32)
        else:
            codes = np.zeros(watts.shape, dtype=np.uint32)
        header = np.array([lo, step], dtype="<f8").tobytes()
        return header + self._pack(codes.ravel()), step / 2.0

    def decode(
        self, payload: bytes, n_ticks: int, n_nodes: int
    ) -> tuple[np.ndarray, float]:
        if len(payload) < 16:
            raise ValueError(f"{self.name}: payload too short for header")
        lo, step = np.frombuffer(payload[:16], dtype="<f8")
        if not (np.isfinite(lo) and np.isfinite(step) and step >= 0.0):
            raise ValueError(f"{self.name}: malformed quantisation header")
        data = np.frombuffer(payload[16:], dtype=np.uint8)
        codes = self._unpack(data, n_ticks * n_nodes)
        watts = lo + codes.astype(np.float64) * step
        return watts.reshape(n_ticks, n_nodes), float(step) / 2.0


class Quant8Codec(_AffineQuantCodec):
    """8-bit affine truncation: 1 byte per sample, bound = range/510."""

    name = "quant8"
    codec_id = 3
    bits = 8

    def _pack(self, codes: np.ndarray) -> bytes:
        return codes.astype(np.uint8).tobytes()

    def _unpack(self, data: np.ndarray, n_codes: int) -> np.ndarray:
        if data.size != n_codes:
            raise ValueError(
                f"quant8: expected {n_codes} codes, got {data.size}"
            )
        return data.astype(np.uint32)


class Quant12Codec(_AffineQuantCodec):
    """12-bit affine truncation: 3 bytes per sample pair."""

    name = "quant12"
    codec_id = 4
    bits = 12

    def _pack(self, codes: np.ndarray) -> bytes:
        if codes.size % 2:  # pad to a whole pair with a zero code
            codes = np.concatenate(
                [codes, np.zeros(1, dtype=codes.dtype)]
            )
        first = codes[0::2].astype(np.uint32)
        second = codes[1::2].astype(np.uint32)
        packed = np.empty(3 * first.size, dtype=np.uint8)
        packed[0::3] = first & 0xFF
        packed[1::3] = (first >> 8) | ((second & 0x0F) << 4)
        packed[2::3] = second >> 4
        return packed.tobytes()

    def _unpack(self, data: np.ndarray, n_codes: int) -> np.ndarray:
        n_pairs = (n_codes + 1) // 2
        if data.size != 3 * n_pairs:
            raise ValueError(
                f"quant12: expected {3 * n_pairs} bytes, got {data.size}"
            )
        b0 = data[0::3].astype(np.uint32)
        b1 = data[1::3].astype(np.uint32)
        b2 = data[2::3].astype(np.uint32)
        first = b0 | ((b1 & 0x0F) << 8)
        second = (b1 >> 4) | (b2 << 4)
        codes = np.empty(2 * n_pairs, dtype=np.uint32)
        codes[0::2] = first
        codes[1::2] = second
        return codes[:n_codes]


class ZlibCodec(Codec):
    """Composable outer layer: zlib over any base codec's payload.

    The error bound is the inner codec's — compression is lossless.
    The wire records the wrapping in the frame's flags
    (:data:`~repro.wire.framing.FLAG_ZLIB`), not in ``codec_id``, so a
    reader reconstructs exactly this composition.
    """

    def __init__(self, inner: Codec, level: int = 6) -> None:
        if isinstance(inner, ZlibCodec):
            raise ValueError("zlib layers do not stack")
        self.inner = inner
        self.level = int(level)
        self.name = f"zlib({inner.name})"
        self.codec_id = inner.codec_id
        self.lossless = inner.lossless

    def encode(self, watts: np.ndarray) -> tuple[bytes, float]:
        """Encode with the inner codec, then deflate the payload."""
        payload, bound_w = self.inner.encode(watts)
        return zlib.compress(payload, self.level), bound_w

    def decode(
        self, payload: bytes, n_ticks: int, n_nodes: int
    ) -> tuple[np.ndarray, float]:
        """Inflate the payload, then decode with the inner codec."""
        try:
            raw = zlib.decompress(payload)
        except zlib.error as exc:
            raise ValueError(f"zlib layer: {exc}") from exc
        return self.inner.decode(raw, n_ticks, n_nodes)


#: Base codec registry: name -> class.  ``zlib(...)`` composes via the
#: factory, it is not a base entry.
_BASE_CODECS: dict[str, type[Codec]] = {
    cls.name: cls
    for cls in (Raw64Codec, DeltaVarintCodec, Quant8Codec, Quant12Codec)
}

_CODECS_BY_ID: dict[int, type[Codec]] = {
    cls.codec_id: cls for cls in _BASE_CODECS.values()
}

#: Every spec the factory accepts, bases first.
CODEC_NAMES: tuple[str, ...] = tuple(_BASE_CODECS) + tuple(
    f"zlib({name})" for name in _BASE_CODECS
)


def available_codecs() -> tuple[str, ...]:
    """All codec specs :func:`make_codec` accepts."""
    return CODEC_NAMES


def make_codec(spec: str | Codec) -> Codec:
    """Factory: build a codec from a spec like ``"zlib(delta-varint)"``."""
    if isinstance(spec, Codec):
        return spec
    name = spec.strip()
    if name.startswith("zlib(") and name.endswith(")"):
        return ZlibCodec(make_codec(name[len("zlib("):-1]))
    try:
        return _BASE_CODECS[name]()
    except KeyError:
        raise ValueError(
            f"unknown codec {spec!r} (known: {', '.join(CODEC_NAMES)})"
        ) from None


def codec_for_frame(codec_id: int, flags: int) -> Codec:
    """Reconstruct the codec a frame header declares.

    Raises :class:`ValueError` for an unregistered id — the session
    layer books such frames as undecodable rather than crashing.
    """
    from repro.wire.framing import FLAG_ZLIB

    try:
        base = _CODECS_BY_ID[codec_id]()
    except KeyError:
        raise ValueError(f"unregistered codec id {codec_id}") from None
    if flags & FLAG_ZLIB:
        return ZlibCodec(base)
    return base
