"""Framed binary telemetry transport for per-node power streams.

The paper's statistics assume every per-node sample arrives intact;
this package models the part of a real measurement campaign that sits
*between* the meters and the statistics — a lossy, bandwidth-starved
collection network — and quantifies what it does to the results.

Layout:

* :mod:`repro.wire.framing` — the self-delimiting frame format (magic,
  version, sequence, tick, node range, CRC-32 trailer) and the
  crash-proof incremental parser.
* :mod:`repro.wire.codecs` — the payload codec registry: ``raw64``,
  ``delta-varint`` (lossless at 1 mW), ``quant8``/``quant12`` (lossy
  with declared bounds), and ``zlib`` as a composable outer layer.
* :mod:`repro.wire.session` — :class:`WireWriter` / :class:`WireReader`
  sessions: sequence numbering, reordering windows, gap detection, and
  the bridge into the :mod:`repro.faults` recovery layer.
* :mod:`repro.wire.chaos` — transport chaos harness: inject frame
  drops/corruption, recover, and audit the provenance label exactly.
* :mod:`repro.wire.frontier` — the bandwidth-vs-accuracy frontier the
  X-WIRE experiment reports.
"""

from repro.wire.chaos import WireChaosOutcome, WireScenario, run_wire_chaos
from repro.wire.codecs import (
    Codec,
    DeltaVarintCodec,
    Quant8Codec,
    Quant12Codec,
    Raw64Codec,
    ZlibCodec,
    available_codecs,
    codec_for_frame,
    make_codec,
)
from repro.wire.framing import (
    FLAG_ZLIB,
    HEADER_LEN,
    MAGIC,
    MAX_PAYLOAD_LEN,
    TRAILER_LEN,
    WIRE_VERSION,
    FrameEvent,
    FrameHeader,
    FrameParser,
    encode_frame,
)
from repro.wire.frontier import FrontierCell, frontier_cell, wire_frontier
from repro.wire.session import WireFrame, WireReader, WireWriter

__all__ = [
    "Codec",
    "DeltaVarintCodec",
    "FLAG_ZLIB",
    "FrameEvent",
    "FrameHeader",
    "FrameParser",
    "FrontierCell",
    "HEADER_LEN",
    "MAGIC",
    "MAX_PAYLOAD_LEN",
    "Quant12Codec",
    "Quant8Codec",
    "Raw64Codec",
    "TRAILER_LEN",
    "WIRE_VERSION",
    "WireChaosOutcome",
    "WireFrame",
    "WireReader",
    "WireScenario",
    "WireWriter",
    "ZlibCodec",
    "available_codecs",
    "codec_for_frame",
    "encode_frame",
    "frontier_cell",
    "make_codec",
    "run_wire_chaos",
    "wire_frontier",
]
