"""Framed binary wire format for per-node power telemetry.

A telemetry stream is a sequence of self-delimiting **frames**, each
carrying one :class:`~repro.stream.ingest.SampleBatch` worth of
samples.  The layout (all little-endian)::

    offset  size  field
    ------  ----  -----------------------------------------------
       0      4   magic          b"RPWR"
       4      1   version        u8, currently 1
       5      1   codec_id       u8, see repro.wire.codecs
       6      2   flags          u16 bitfield (bit 0: zlib outer layer)
       8      4   seq            u32 frame sequence number
      12      4   node_lo        u32 first node id in the frame
      16      4   n_nodes        u32 node count (columns)
      20      4   n_ticks        u32 tick count (rows)
      24      8   tick           u64 stream tick index of the first row
      32      4   payload_len    u32 payload bytes
      36      *   payload        codec output (see repro.wire.codecs)
      36+*    4   crc32          u32 CRC-32 over header + payload

The parser (:class:`FrameParser`) is the trust boundary: it consumes
*arbitrary* bytes — truncated, corrupted, reordered, or pure garbage —
and never raises.  Every complete candidate frame is either emitted as
an ``ok`` event (magic, version, bounds and CRC all check out) or as a
``corrupt`` event naming what failed; bytes that never line up with a
plausible header are counted as garbage and skipped.  On a CRC failure
with a plausible header the parser skips the frame's entire declared
extent rather than rescanning inside it, so one corrupted frame
produces exactly one ``corrupt`` event — the property the chaos
ledger's exact reconciliation rests on.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

__all__ = [
    "MAGIC",
    "WIRE_VERSION",
    "HEADER_LEN",
    "TRAILER_LEN",
    "MAX_PAYLOAD_LEN",
    "FLAG_ZLIB",
    "FrameHeader",
    "FrameEvent",
    "FrameParser",
    "encode_frame",
]

#: Frame preamble — "RePro WiRe".
MAGIC = b"RPWR"

#: Wire format version this module reads and writes.
WIRE_VERSION = 1

#: Header layout: magic, version, codec_id, flags, seq, node_lo,
#: n_nodes, n_ticks, tick, payload_len.
_HEADER = struct.Struct("<4sBBHIIIIQI")

HEADER_LEN = _HEADER.size
TRAILER_LEN = 4

#: Upper bound on a sane payload (64 MiB).  Anything larger is treated
#: as a corrupt length field, which also stops a fuzzed header from
#: making the parser buffer unbounded amounts of garbage.
MAX_PAYLOAD_LEN = 64 * 1024 * 1024

#: flags bit 0 — payload is zlib-compressed codec output.
FLAG_ZLIB = 0x0001

#: All currently meaningful flag bits.
_KNOWN_FLAGS = FLAG_ZLIB


@dataclass(frozen=True)
class FrameHeader:
    """Decoded fixed header of one frame."""

    codec_id: int
    flags: int
    seq: int
    node_lo: int
    n_nodes: int
    n_ticks: int
    tick: int
    payload_len: int

    @property
    def zlib_wrapped(self) -> bool:
        """Whether the payload has the zlib outer layer."""
        return bool(self.flags & FLAG_ZLIB)


@dataclass(frozen=True)
class FrameEvent:
    """One parser outcome: a validated frame or a detected corruption.

    ``kind`` is ``"ok"`` (header + payload valid, CRC matched) or
    ``"corrupt"`` (a plausible frame failed validation; ``reason`` says
    how).  Corrupt events carry the header when it parsed — the chaos
    layer uses its ``seq``/``tick`` for exact accounting — and an empty
    payload.
    """

    kind: str
    header: FrameHeader | None
    payload: bytes
    reason: str = ""

    @property
    def ok(self) -> bool:
        """Whether this event is a validated frame."""
        return self.kind == "ok"


def encode_frame(
    *,
    codec_id: int,
    flags: int,
    seq: int,
    node_lo: int,
    n_nodes: int,
    n_ticks: int,
    tick: int,
    payload: bytes,
) -> bytes:
    """Assemble one wire frame (header + payload + CRC-32 trailer)."""
    if len(payload) > MAX_PAYLOAD_LEN:
        raise ValueError(
            f"payload of {len(payload)} exceeds MAX_PAYLOAD_LEN"
        )
    header = _HEADER.pack(
        MAGIC,
        WIRE_VERSION,
        codec_id,
        flags,
        seq,
        node_lo,
        n_nodes,
        n_ticks,
        tick,
        len(payload),
    )
    crc = zlib.crc32(header + payload) & 0xFFFFFFFF
    return header + payload + struct.pack("<I", crc)


def _parse_header(buf: bytes, pos: int) -> tuple[FrameHeader | None, str]:
    """Try to read a header at ``pos``; returns ``(header, reason)``.

    ``header is None`` with an empty reason means "not enough bytes
    yet"; a non-empty reason means the candidate is implausible and the
    caller should resynchronise.
    """
    if len(buf) - pos < HEADER_LEN:
        return None, ""
    (
        magic,
        version,
        codec_id,
        flags,
        seq,
        node_lo,
        n_nodes,
        n_ticks,
        tick,
        payload_len,
    ) = _HEADER.unpack_from(buf, pos)
    if magic != MAGIC:  # pragma: no cover - caller aligns to magic
        return None, "bad magic"
    if version != WIRE_VERSION:
        return None, f"unsupported version {version}"
    if flags & ~_KNOWN_FLAGS:
        return None, f"unknown flags 0x{flags:04x}"
    if payload_len > MAX_PAYLOAD_LEN:
        return None, f"implausible payload length {payload_len}"
    return (
        FrameHeader(
            codec_id=codec_id,
            flags=flags,
            seq=seq,
            node_lo=node_lo,
            n_nodes=n_nodes,
            n_ticks=n_ticks,
            tick=tick,
            payload_len=payload_len,
        ),
        "",
    )


class FrameParser:
    """Incremental, crash-proof frame scanner.

    Feed byte chunks of any size; each call returns the
    :class:`FrameEvent` list completed by those bytes.  The parser
    keeps an internal buffer for partial frames; :meth:`close` flushes
    it, reporting a trailing incomplete frame as one final ``corrupt``
    event.

    Resynchronisation policy:

    * bytes before the next ``MAGIC`` are garbage — counted, skipped;
    * a candidate whose header is implausible (bad version, unknown
      flags, absurd length) yields a ``corrupt`` event and a rescan
      from the byte after its magic;
    * a candidate with a plausible header but failing CRC yields a
      ``corrupt`` event and skips the *declared* frame extent — never
      rescanning inside a frame that announced its own length.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.frames_ok = 0
        self.crc_failures = 0
        self.header_rejects = 0
        self.truncated_frames = 0
        self.garbage_bytes = 0
        self.bytes_fed = 0
        self._closed = False

    def feed(self, data: bytes) -> list[FrameEvent]:
        """Consume a chunk; return the events it completed."""
        if self._closed:
            raise ValueError("parser is closed")
        self._buf.extend(data)
        self.bytes_fed += len(data)
        return self._scan(final=False)

    def close(self) -> list[FrameEvent]:
        """Flush: report any dangling partial frame, then stop."""
        if self._closed:
            return []
        self._closed = True
        events = self._scan(final=True)
        if self._buf:
            # Leftover bytes start with MAGIC (otherwise _scan would
            # have discarded them as garbage) but never completed.
            self.truncated_frames += 1
            header, _ = _parse_header(bytes(self._buf), 0)
            events.append(
                FrameEvent(
                    kind="corrupt",
                    header=header,
                    payload=b"",
                    reason="truncated at end of stream",
                )
            )
            self.garbage_bytes += len(self._buf)
            self._buf.clear()
        return events

    # ------------------------------------------------------------------
    def _discard(self, n_bytes: int) -> None:
        del self._buf[:n_bytes]

    def _scan(self, *, final: bool) -> list[FrameEvent]:
        events: list[FrameEvent] = []
        while True:
            # Align to the next magic; everything before it is garbage.
            idx = self._buf.find(MAGIC)
            if idx < 0:
                # Keep a tail shorter than the magic — it may be a
                # prefix of a magic split across chunks.
                keep = min(len(self._buf), len(MAGIC) - 1)
                drop = len(self._buf) - keep
                if final:
                    drop = len(self._buf)
                self.garbage_bytes += drop
                self._discard(drop)
                return events
            if idx > 0:
                self.garbage_bytes += idx
                self._discard(idx)
            header, reason = _parse_header(bytes(self._buf), 0)
            if header is None and not reason:
                return events  # need more bytes for the header
            if header is None:
                self.header_rejects += 1
                events.append(
                    FrameEvent(
                        kind="corrupt",
                        header=None,
                        payload=b"",
                        reason=reason,
                    )
                )
                self._discard(1)  # rescan just past this magic
                continue
            frame_len = HEADER_LEN + header.payload_len + TRAILER_LEN
            if len(self._buf) < frame_len:
                return events  # need more bytes for payload + CRC
            stored = struct.unpack_from(
                "<I", self._buf, HEADER_LEN + header.payload_len
            )[0]
            body = bytes(self._buf[: HEADER_LEN + header.payload_len])
            if zlib.crc32(body) & 0xFFFFFFFF != stored:
                self.crc_failures += 1
                events.append(
                    FrameEvent(
                        kind="corrupt",
                        header=header,
                        payload=b"",
                        reason="crc mismatch",
                    )
                )
                # Trust the declared extent: skip the whole frame.
                self._discard(frame_len)
                continue
            payload = body[HEADER_LEN:]
            self.frames_ok += 1
            events.append(
                FrameEvent(kind="ok", header=header, payload=payload)
            )
            self._discard(frame_len)
