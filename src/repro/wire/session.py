"""Encoder/decoder sessions: batches to frames and back, with audit.

:class:`WireWriter` serialises a :class:`~repro.stream.ingest.SampleBatch`
stream into wire frames, assigning sequence numbers and stream tick
indices; :class:`WireReader` is the receiving side, and the bridge into
the PR 4 recovery layer: it validates CRCs, re-orders frames inside a
bounded window, detects sequence gaps, and emits an *in-order* batch
stream in which every missing frame's rows appear as NaN — exactly the
missing-sample convention :class:`~repro.faults.recovery.RecoveryPipeline`
repairs and labels.  Nothing is dropped silently: every corrupt,
duplicate, reordered, undecodable or missing frame is counted, and the
worst lossy-codec error bound seen on the stream is tracked for the
:class:`~repro.faults.quality.QualityReport` provenance stamp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stream.ingest import SampleBatch
from repro.wire.codecs import Codec, codec_for_frame, make_codec
from repro.wire.framing import (
    FLAG_ZLIB,
    FrameHeader,
    FrameParser,
    encode_frame,
)

__all__ = ["WireFrame", "WireWriter", "WireReader"]


@dataclass(frozen=True)
class WireFrame:
    """One encoded frame: its bytes plus the header bookkeeping."""

    data: bytes
    seq: int
    tick: int
    n_ticks: int
    n_nodes: int
    node_lo: int
    error_bound_w: float

    @property
    def n_samples(self) -> int:
        """Scalar samples carried by the frame."""
        return self.n_ticks * self.n_nodes

    @property
    def n_bytes(self) -> int:
        """Total frame size on the wire."""
        return len(self.data)


class WireWriter:
    """Serialise a batch stream into framed, codec-compressed bytes.

    Batches must cover a contiguous node range (``node_ids`` equal to
    ``arange(node_lo, node_lo + n)``) and arrive in time order; the
    writer assigns consecutive sequence numbers and cumulative stream
    tick indices, which is what lets the reader detect gaps and
    reordering exactly.
    """

    def __init__(self, codec: str | Codec = "delta-varint") -> None:
        self.codec = make_codec(codec)
        self._flags = FLAG_ZLIB if self.codec.name.startswith("zlib(") else 0
        self._next_seq = 0
        self._next_tick = 0
        self._node_lo: int | None = None
        self._n_nodes: int | None = None
        self.frames_written = 0
        self.bytes_written = 0
        self.payload_bytes = 0
        self.samples_written = 0
        self.error_bound_w = 0.0

    def write(self, batch: SampleBatch) -> WireFrame:
        """Encode one batch as the next frame in the stream."""
        ids = np.asarray(batch.node_ids, dtype=np.int64)
        if ids.size == 0 or batch.n_ticks == 0:
            raise ValueError("cannot frame an empty batch")
        node_lo = int(ids[0])
        if not np.array_equal(
            ids, np.arange(node_lo, node_lo + ids.size, dtype=np.int64)
        ):
            raise ValueError(
                "wire frames carry contiguous node ranges; re-index "
                "the fleet before framing"
            )
        if self._node_lo is None:
            self._node_lo, self._n_nodes = node_lo, ids.size
        elif (node_lo, ids.size) != (self._node_lo, self._n_nodes):
            raise ValueError("batch node range changed mid-stream")
        payload, bound_w = self.codec.encode(
            np.asarray(batch.watts, dtype=np.float64)
        )
        times_blob = np.ascontiguousarray(
            batch.times, dtype="<f8"
        ).tobytes()
        data = encode_frame(
            codec_id=self.codec.codec_id,
            flags=self._flags,
            seq=self._next_seq,
            node_lo=node_lo,
            n_nodes=ids.size,
            n_ticks=batch.n_ticks,
            tick=self._next_tick,
            payload=times_blob + payload,
        )
        frame = WireFrame(
            data=data,
            seq=self._next_seq,
            tick=self._next_tick,
            n_ticks=batch.n_ticks,
            n_nodes=ids.size,
            node_lo=node_lo,
            error_bound_w=bound_w,
        )
        self._next_seq += 1
        self._next_tick += batch.n_ticks
        self.frames_written += 1
        self.bytes_written += frame.n_bytes
        self.payload_bytes += len(payload)
        self.samples_written += frame.n_samples
        self.error_bound_w = max(self.error_bound_w, bound_w)
        return frame

    def write_all(self, batches) -> list[WireFrame]:
        """Frame a whole batch stream."""
        return [self.write(batch) for batch in batches]


class WireReader:
    """Decode a framed byte stream back into in-order sample batches.

    Feed byte chunks of any size; each :meth:`feed` returns the
    :class:`~repro.stream.ingest.SampleBatch` objects the chunk
    completed, strictly in stream order.  Out-of-order frames are held
    in a reorder window of ``reorder_window`` frames; when the window
    overflows (or at :meth:`close`), the skipped sequence numbers are
    declared missing and their rows are delivered as all-NaN gap
    batches — the PR 4 recovery layer's missing-sample convention — so
    a downstream :class:`~repro.faults.recovery.RecoveryPipeline` can
    repair and label them.

    Timestamps for gap rows are reconstructed from the stream's tick
    grid (``t0_s + tick · dt_s``), inferred from the first decoded
    frame; pass ``dt_s`` explicitly when frames may carry a single
    tick.
    """

    def __init__(
        self,
        *,
        dt_s: float | None = None,
        reorder_window: int = 8,
    ) -> None:
        if reorder_window < 1:
            raise ValueError("reorder_window must be >= 1")
        self._parser = FrameParser()
        self._window = int(reorder_window)
        self._pending: dict[int, tuple[FrameHeader, bytes]] = {}
        self._next_seq = 0
        self._next_tick = 0
        self._max_seq_seen = -1
        self._dt_s = dt_s
        self._t0_s: float | None = None
        self._node_lo: int | None = None
        self._n_nodes: int | None = None
        self._closed = False
        self.frames_ok = 0
        self.frames_missing = 0
        self.frames_reordered = 0
        self.frames_duplicate = 0
        self.frames_undecodable = 0
        self.gap_ticks = 0
        self.ticks_delivered = 0
        self.error_bound_w = 0.0
        self.codec_names: tuple[str, ...] = ()

    # -- parser counters, re-exposed -----------------------------------
    @property
    def crc_failures(self) -> int:
        """Frames rejected by the CRC-32 trailer."""
        return self._parser.crc_failures

    @property
    def garbage_bytes(self) -> int:
        """Bytes that never lined up with a plausible frame."""
        return self._parser.garbage_bytes

    @property
    def bytes_read(self) -> int:
        """Total bytes fed in."""
        return self._parser.bytes_fed

    @property
    def truncated_frames(self) -> int:
        """Partial frames dangling at end of stream."""
        return self._parser.truncated_frames

    # ------------------------------------------------------------------
    def feed(self, data: bytes) -> list[SampleBatch]:
        """Consume a chunk; return the in-order batches it completed."""
        if self._closed:
            raise ValueError("reader is closed")
        out: list[SampleBatch] = []
        for event in self._parser.feed(data):
            if event.ok:
                out.extend(self._accept(event.header, event.payload))
        return out

    def close(self) -> list[SampleBatch]:
        """Flush the reorder window, declaring leftover gaps missing."""
        if self._closed:
            return []
        self._closed = True
        self._parser.close()
        out: list[SampleBatch] = []
        while self._pending:
            out.extend(self._release(min(self._pending)))
        return out

    # ------------------------------------------------------------------
    def _accept(
        self, header: FrameHeader, payload: bytes
    ) -> list[SampleBatch]:
        seq = header.seq
        if seq < self._next_seq or seq in self._pending:
            self.frames_duplicate += 1
            return []
        # Reordered means "arrived after a later frame", not merely
        # "blocked behind a gap".
        if seq < self._max_seq_seen:
            self.frames_reordered += 1
        self._max_seq_seen = max(self._max_seq_seen, seq)
        self._pending[seq] = (header, payload)
        out: list[SampleBatch] = []
        while self._next_seq in self._pending:
            out.extend(self._release(self._next_seq))
        # Window overflow: give up on the oldest gap and move on.
        while len(self._pending) > self._window:
            out.extend(self._release(min(self._pending)))
        return out

    def _release(self, seq: int) -> list[SampleBatch]:
        """Emit frame ``seq``, preceded by a gap batch if needed."""
        header, payload = self._pending.pop(seq)
        self.frames_missing += seq - self._next_seq
        out: list[SampleBatch] = []
        batch = self._decode(header, payload)
        if batch is None:
            # Undecodable: treat the frame's own rows as a gap too.
            self._next_seq = seq + 1
            gap = self._gap_batch(
                header, header.tick + header.n_ticks
            )
            if gap is not None:
                out.append(gap)
            self._next_tick = header.tick + header.n_ticks
            return out
        gap = self._gap_batch(header, header.tick)
        if gap is not None:
            out.append(gap)
        out.append(batch)
        self.frames_ok += 1
        self.ticks_delivered += header.n_ticks
        self._next_seq = seq + 1
        self._next_tick = header.tick + header.n_ticks
        return out

    def _decode(
        self, header: FrameHeader, payload: bytes
    ) -> SampleBatch | None:
        times_len = header.n_ticks * 8
        if len(payload) < times_len:
            self.frames_undecodable += 1
            return None
        times = np.frombuffer(payload[:times_len], dtype="<f8").copy()
        try:
            codec = codec_for_frame(header.codec_id, header.flags)
            watts, bound_w = codec.decode(
                payload[times_len:], header.n_ticks, header.n_nodes
            )
        except ValueError:
            self.frames_undecodable += 1
            return None
        if not np.all(np.isfinite(times)):
            self.frames_undecodable += 1
            return None
        if self._node_lo is None:
            self._node_lo = header.node_lo
            self._n_nodes = header.n_nodes
        if (header.node_lo, header.n_nodes) != (
            self._node_lo,
            self._n_nodes,
        ):
            self.frames_undecodable += 1
            return None
        if self._t0_s is None:
            if self._dt_s is None:
                if header.n_ticks >= 2:
                    self._dt_s = float(times[1] - times[0])
                else:
                    self._dt_s = 1.0
            self._t0_s = float(times[0]) - header.tick * self._dt_s
        self.error_bound_w = max(self.error_bound_w, bound_w)
        if codec.name not in self.codec_names:
            self.codec_names = (*self.codec_names, codec.name)
        return SampleBatch(
            times=times,
            watts=watts,
            node_ids=np.arange(
                header.node_lo,
                header.node_lo + header.n_nodes,
                dtype=np.int64,
            ),
        )

    def _gap_batch(
        self, header: FrameHeader, up_to_tick: int
    ) -> SampleBatch | None:
        """NaN batch covering ticks [_next_tick, up_to_tick), if any."""
        n_gap = up_to_tick - self._next_tick
        if n_gap <= 0:
            return None
        self.gap_ticks += n_gap
        dt_s = self._dt_s if self._dt_s is not None else 1.0
        t0_s = self._t0_s if self._t0_s is not None else 0.0
        ticks = np.arange(self._next_tick, up_to_tick, dtype=np.float64)
        n_nodes = (
            self._n_nodes if self._n_nodes is not None else header.n_nodes
        )
        node_lo = (
            self._node_lo if self._node_lo is not None else header.node_lo
        )
        return SampleBatch(
            times=t0_s + ticks * dt_s,
            watts=np.full((n_gap, n_nodes), np.nan),
            node_ids=np.arange(
                node_lo, node_lo + n_nodes, dtype=np.int64
            ),
        )
