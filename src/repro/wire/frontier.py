"""The bandwidth-vs-accuracy frontier of the wire codecs.

The question the X-WIRE experiment answers: **how many bytes per node
per second does a telemetry collector have to spend before the paper's
statistics stop moving?**  Each :class:`FrontierCell` is one point of
the trade-off — a (codec, drop rate, corruption rate) triple run
through the full wire chaos path — reporting the wire cost
(bytes/node/s, compression ratio vs ``raw64``) against the drift it
induces in the quantities the paper actually publishes:

* the fleet-mean power (Table 4's headline number),
* the node-to-node CV,
* the Table 5 required sample size ``n`` recomputed from the degraded
  CV (the operational consequence of CV drift), and
* the EE HPC WG compliance verdict (did the circuit breaker downgrade
  the level?).

Every cell also carries the two audit verdicts from
:mod:`repro.wire.chaos` — exact ledger reconciliation and stated-bound
containment — so a frontier point is only trusted when its accounting
closed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sampling import recommend_sample_size
from repro.wire.chaos import WireScenario, run_wire_chaos

__all__ = [
    "FrontierCell",
    "frontier_cell",
    "wire_frontier",
    "RAW64_BYTES_PER_SAMPLE",
]

#: Wire cost of the uncompressed baseline codec, excluding framing
#: (8 bytes per IEEE-754 float64 sample).
RAW64_BYTES_PER_SAMPLE = 8.0

#: Fleet size for the Table 5 required-n recomputation.  The paper's
#: survey argument is about populations of thousands of nodes; the
#: required-n flip is most visible there.
_REQUIRED_N_FLEET = 10_000


@dataclass(frozen=True)
class FrontierCell:
    """One point on the bandwidth-vs-accuracy frontier."""

    codec: str
    drop_rate: float
    corrupt_rate: float
    frames_sent: int
    frames_lost: int
    node_bps: float
    bytes_per_sample: float
    compression_ratio: float
    codec_error_bound_w: float
    rel_err_fleet_mean: float
    rel_err_node_cv: float
    required_n_clean: int
    required_n_degraded: int
    verdict_flipped: bool
    reconciled: bool
    within_bounds: bool

    @property
    def required_n_drift(self) -> int:
        """How far the Table 5 recommendation moved (signed nodes)."""
        return self.required_n_degraded - self.required_n_clean

    def to_dict(self) -> dict:
        """JSON-friendly rendering."""
        return {
            "codec": self.codec,
            "drop_rate": self.drop_rate,
            "corrupt_rate": self.corrupt_rate,
            "frames_sent": self.frames_sent,
            "frames_lost": self.frames_lost,
            "node_bps": self.node_bps,
            "bytes_per_sample": self.bytes_per_sample,
            "compression_ratio": self.compression_ratio,
            "codec_error_bound_w": self.codec_error_bound_w,
            "rel_err_fleet_mean": self.rel_err_fleet_mean,
            "rel_err_node_cv": self.rel_err_node_cv,
            "required_n_clean": self.required_n_clean,
            "required_n_degraded": self.required_n_degraded,
            "required_n_drift": self.required_n_drift,
            "verdict_flipped": self.verdict_flipped,
            "reconciled": self.reconciled,
            "within_bounds": self.within_bounds,
        }


def _required_n(cv: float) -> int:
    """Table 5 recommendation for the frontier's reference fleet."""
    return recommend_sample_size(_REQUIRED_N_FLEET, cv).n


def frontier_cell(run, scenario: WireScenario, **kwargs) -> FrontierCell:
    """Run one wire chaos trial and project it onto the frontier."""
    outcome = run_wire_chaos(run, scenario, **kwargs)
    dt_s = float(run.dt)
    node_bytes_per_tick = outcome.bytes_per_sample  # one sample/node/tick
    return FrontierCell(
        codec=scenario.codec,
        drop_rate=scenario.drop_rate,
        corrupt_rate=scenario.corrupt_rate,
        frames_sent=outcome.ledger.frames_sent,
        frames_lost=outcome.ledger.frames_lost,
        node_bps=node_bytes_per_tick / dt_s,
        bytes_per_sample=outcome.bytes_per_sample,
        compression_ratio=RAW64_BYTES_PER_SAMPLE
        / outcome.bytes_per_sample,
        codec_error_bound_w=outcome.report.codec_error_bound_w,
        rel_err_fleet_mean=outcome.rel_err_fleet_mean,
        rel_err_node_cv=outcome.rel_err_node_cv,
        required_n_clean=_required_n(outcome.clean_node_cv),
        required_n_degraded=_required_n(outcome.report.node_cv),
        verdict_flipped=outcome.report.downgraded(),
        reconciled=outcome.reconciled,
        within_bounds=outcome.mean_within_bound
        and outcome.cv_within_bound,
    )


def wire_frontier(
    run,
    *,
    codecs: tuple[str, ...] = (
        "raw64",
        "delta-varint",
        "zlib(delta-varint)",
        "quant12",
        "quant8",
    ),
    rates: tuple[tuple[float, float], ...] = (
        (0.0, 0.0),
        (0.1, 0.0),
        (0.0, 0.1),
        (0.1, 0.1),
    ),
    seed: int,
    node_indices: np.ndarray | None = None,
    ticks_per_batch: int = 20,
    gap_policy: str = "hold",
) -> list[FrontierCell]:
    """Sweep the codec × loss grid; returns cells in sweep order.

    Deterministic: each cell reuses the same root ``seed``, and the
    per-cell fault draws are namespaced by the scenario's models inside
    :class:`~repro.faults.wire.WireFaultPlan`, so adding a codec or a
    rate never perturbs the other cells.
    """
    cells = []
    for codec in codecs:
        for drop_rate, corrupt_rate in rates:
            scenario = WireScenario(
                name=f"{codec}@d{drop_rate:g}c{corrupt_rate:g}",
                codec=codec,
                drop_rate=drop_rate,
                corrupt_rate=corrupt_rate,
            )
            cells.append(
                frontier_cell(
                    run,
                    scenario,
                    seed=seed,
                    node_indices=node_indices,
                    ticks_per_batch=ticks_per_batch,
                    gap_policy=gap_policy,
                )
            )
    return cells
