"""Extension X1 — where the paper's machinery breaks: imbalanced
workloads.

Section 2.1 and 4.1 bound the method's domain: Davis et al. found that
data-intensive (imbalanced) workloads need far more conservative
sampling, and the paper warns its normality-based procedure "will not
be appropriate in scenarios where the distribution of per-node power
consumption contains many outliers or is heavily skewed."

This experiment makes the boundary quantitative: the same fleet is
sampled under a balanced schedule, a mildly uneven schedule and a
straggler-heavy schedule, and for each we measure (a) the normality
diagnostics, (b) actual 95% CI coverage at the paper-recommended
subset sizes, and (c) whether the diagnostics *predict* the failure —
i.e. that a site running :func:`repro.analysis.normality
.normality_report` on its pilot would have been warned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.normality import NormalityReport, normality_report
from repro.analysis.report import Table
from repro.cluster.registry import get_system, workload_utilisation
from repro.core.coverage import coverage_study
from repro.experiments.base import Comparison, ExperimentResult
from repro.rng import stream
from repro.workloads.schedule import LoadSchedule, balanced, imbalanced

__all__ = ["ImbalanceResult", "ImbalanceRegime", "run"]


@dataclass(frozen=True)
class ImbalanceRegime:
    """One workload-balance regime's outcome."""

    label: str
    skewness: float
    outlier_fraction: float
    passes_normality_check: bool
    coverage_at_16: float
    coverage_at_5: float


@dataclass
class ImbalanceResult(ExperimentResult):
    """The balanced-vs-imbalanced comparison."""

    regimes: list

    experiment_id = "X1"
    artifact = "Section 2.1/4.1 balance caveat (extension)"

    def _by_label(self, label: str) -> ImbalanceRegime:
        return next(r for r in self.regimes if r.label == label)

    def comparisons(self) -> list[Comparison]:
        bal = self._by_label("balanced")
        heavy = self._by_label("straggler-heavy")
        return [
            Comparison(
                label="balanced: 95% coverage at n=16",
                paper=0.95, measured=bal.coverage_at_16,
                abs_tol=0.012, rel_tol=0.0,
            ),
            Comparison(
                label="balanced passes the normality screen",
                paper=1.0, measured=float(bal.passes_normality_check),
                rel_tol=0.0,
            ),
            Comparison(
                label="straggler-heavy: 95% coverage collapses",
                paper=0.90, measured=heavy.coverage_at_16, mode="at_most",
            ),
            Comparison(
                label="straggler-heavy flagged by the normality screen",
                paper=0.0, measured=float(heavy.passes_normality_check),
                rel_tol=0.0,
            ),
            Comparison(
                label="straggler-heavy |skewness| ('heavily skewed')",
                paper=1.0, measured=abs(heavy.skewness), mode="at_least",
            ),
        ]

    def report(self) -> str:
        table = Table(
            ["regime", "skew", "outlier frac", "normality screen",
             "95% cov @ n=5", "95% cov @ n=16"],
            title="X1 — workload balance vs the sampling methodology "
                  "(TU Dresden fleet)",
        )
        for r in self.regimes:
            table.add_row(
                [
                    r.label,
                    r.skewness,
                    f"{r.outlier_fraction:.2%}",
                    "pass" if r.passes_normality_check else "FLAGGED",
                    f"{r.coverage_at_5:.3f}",
                    f"{r.coverage_at_16:.3f}",
                ]
            )
        lines = [table.render(), ""]
        lines += self.summary_lines()
        return "\n".join(lines)


def _schedules(n_nodes: int, seed: int) -> dict[str, LoadSchedule]:
    rng = stream(seed, "imbalance-schedules")
    return {
        "balanced": balanced(n_nodes),
        "mildly-uneven": imbalanced(n_nodes, rng, spread=0.08),
        "straggler-heavy": imbalanced(
            n_nodes, rng, spread=0.10, straggler_rate=0.08,
            straggler_level=0.4,
        ),
    }


def run(
    *, system: str = "tu-dresden", n_sims: int = 50_000, seed: int = 0
) -> ImbalanceResult:
    """Run the balance study on one of the paper's fleets."""
    model = get_system(system)
    util = workload_utilisation(system)
    regimes = []
    for label, schedule in _schedules(model.n_nodes, seed).items():
        sample = model.node_sample(util, schedule=schedule)
        diag: NormalityReport = normality_report(sample.watts)
        cov = coverage_study(
            sample.watts,
            population=10_000,
            sample_sizes=(5, 16),
            confidences=(0.95,),
            n_sims=n_sims,
            rng=stream(seed, f"imbalance-coverage-{label}"),
            system=f"{system}/{label}",
        )
        regimes.append(
            ImbalanceRegime(
                label=label,
                skewness=diag.skewness,
                outlier_fraction=diag.outlier_fraction,
                passes_normality_check=diag.is_approximately_normal(),
                coverage_at_5=float(cov.coverage[0, 0]),
                coverage_at_16=float(cov.coverage[0, 1]),
            )
        )
    return ImbalanceResult(regimes=regimes)
