"""Shared experiment machinery: paper-vs-measured comparisons."""

from __future__ import annotations

import abc
from dataclasses import dataclass

__all__ = ["Comparison", "ExperimentResult", "FailedResult"]


@dataclass(frozen=True)
class Comparison:
    """One paper-value vs measured-value record.

    Attributes
    ----------
    label:
        What is being compared (e.g. ``"sequoia core power (kW)"``).
    paper:
        The value the paper publishes.
    measured:
        What this reproduction produces.
    rel_tol / abs_tol:
        Acceptance tolerances.  A comparison passes if the absolute
        difference is within ``abs_tol`` *or* the relative difference is
        within ``rel_tol``.
    """

    label: str
    paper: float
    measured: float
    rel_tol: float = 0.05
    abs_tol: float = 0.0
    #: ``"match"`` — measured must be close to paper within tolerance;
    #: ``"at_least"`` / ``"at_most"`` — one-sided claims ("the drop
    #: exceeds 15%"), where ``paper`` is the bound.
    mode: str = "match"

    def __post_init__(self) -> None:
        if self.mode not in ("match", "at_least", "at_most"):
            raise ValueError(f"unknown comparison mode {self.mode!r}")

    @property
    def abs_diff(self) -> float:
        """|measured − paper|."""
        return abs(self.measured - self.paper)

    @property
    def rel_diff(self) -> float:
        """Relative difference vs the paper value (inf for paper = 0)."""
        if self.paper == 0:
            return float("inf") if self.measured != 0 else 0.0
        return self.abs_diff / abs(self.paper)

    @property
    def ok(self) -> bool:
        """Whether the reproduction satisfies the claim."""
        if self.mode == "at_least":
            return self.measured >= self.paper - self.abs_tol
        if self.mode == "at_most":
            return self.measured <= self.paper + self.abs_tol
        return self.abs_diff <= self.abs_tol or self.rel_diff <= self.rel_tol

    def line(self) -> str:
        """Formatted comparison line for reports."""
        status = "ok " if self.ok else "FAIL"
        rel = "" if self.mode != "match" else f" (Δ={self.rel_diff:+.2%})"
        op = {"match": "=", "at_least": ">=", "at_most": "<="}[self.mode]
        return (
            f"[{status}] {self.label}: paper {op} {self.paper:g}, "
            f"measured={self.measured:g}{rel}"
        )


class ExperimentResult(abc.ABC):
    """Base class for experiment outputs."""

    #: Experiment identifier matching DESIGN.md (e.g. ``"T2"``).
    experiment_id: str = ""
    #: The paper artefact reproduced (e.g. ``"Table 2"``).
    artifact: str = ""

    @abc.abstractmethod
    def comparisons(self) -> list[Comparison]:
        """Paper-vs-measured records for this experiment."""

    @abc.abstractmethod
    def report(self) -> str:
        """Plain-text rendering (printed by the bench harness)."""

    def all_ok(self) -> bool:
        """Whether every comparison is within tolerance."""
        return all(c.ok for c in self.comparisons())

    def summary_lines(self) -> list[str]:
        """Comparison lines for EXPERIMENTS.md."""
        return [c.line() for c in self.comparisons()]


class FailedResult(ExperimentResult):
    """Recorded failure: an experiment raised instead of returning.

    The parallel scheduler converts a crash into one of these so a
    single bad experiment degrades to a failed record (and a nonzero
    sweep exit status) instead of killing the other jobs.
    """

    artifact = "(raised)"

    def __init__(self, experiment_id: str, error: str) -> None:
        self.experiment_id = experiment_id
        #: The formatted traceback (or error message) from the worker.
        self.error = error

    def comparisons(self) -> list[Comparison]:
        """A failure compares against nothing."""
        return []

    def all_ok(self) -> bool:
        """Never OK — the experiment produced no result."""
        return False

    def report(self) -> str:
        """The captured traceback, for the sweep log."""
        return f"experiment {self.experiment_id} raised:\n{self.error}"
