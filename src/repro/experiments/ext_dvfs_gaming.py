"""Extension X2 — DVFS × partial-window interaction (Section 3).

"the current methodology specification explicitly allows DVFS ...
However, this leads to an obvious problem when the power measurement
does not cover the entire core phase.  The power consumption will
usually be lowest during the period where DVFS selects the lowest
processor voltages.  By placing the power measurement interval in this
period, the power measurement could completely avoid the period where
the processor runs at higher frequencies and drains more power."

We make the mechanism explicit with a *perfectly flat* workload — so
the HPL tail cannot be blamed — on a CPU fleet, under three governors:
constant-nominal, an efficiency governor that down-clocks the final 40%
of the run, and the same governor judged under the paper's full-core
window.  Any gaming gain is therefore pure DVFS interaction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.gaming import WindowGamingResult, optimal_window_gain
from repro.analysis.report import Table
from repro.cluster.components import CpuModel, DramModel, FanModel
from repro.cluster.dvfs import DvfsGovernor
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.experiments.base import Comparison, ExperimentResult
from repro.traces.synth import simulate_run
from repro.units import SECONDS_PER_HOUR
from repro.workloads.base import ConstantWorkload

__all__ = ["DvfsGamingResult", "run"]


@dataclass
class DvfsGamingResult(ExperimentResult):
    """Gaming gains with and without DVFS on a flat workload."""

    flat: WindowGamingResult
    dvfs: WindowGamingResult
    downclock_fraction: float
    multiplier: float

    experiment_id = "X2"
    artifact = "Section 3 DVFS interaction (extension)"

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                label="flat workload, performance governor: no gaming",
                paper=0.005,
                measured=abs(self.flat.gaming_gain),
                mode="at_most",
            ),
            Comparison(
                label="flat workload + DVFS governor: gaming appears",
                paper=0.05,
                measured=-self.dvfs.gaming_gain,
                mode="at_least",
            ),
            Comparison(
                label="DVFS window spread exceeds 8%",
                paper=0.08,
                measured=self.dvfs.spread,
                mode="at_least",
            ),
        ]

    def report(self) -> str:
        table = Table(
            ["governor", "best-window gain", "window spread",
             "efficiency inflation"],
            title="X2 — DVFS x partial-window interaction "
                  "(constant workload, CPU fleet)",
        )
        table.add_row(
            ["performance (constant)", f"{self.flat.gaming_gain:+.2%}",
             f"{self.flat.spread:.2%}",
             f"{self.flat.efficiency_inflation:+.2%}"]
        )
        table.add_row(
            [f"stepped x{self.multiplier:g} for final "
             f"{self.downclock_fraction:.0%}",
             f"{self.dvfs.gaming_gain:+.2%}",
             f"{self.dvfs.spread:.2%}",
             f"{self.dvfs.efficiency_inflation:+.2%}"]
        )
        lines = [table.render(), ""]
        lines.append(
            "countermeasure: the full-core window averages over the DVFS "
            "schedule, so no placement choice exists."
        )
        lines.append("")
        lines += self.summary_lines()
        return "\n".join(lines)


def _fleet() -> SystemModel:
    config = NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=130.0),
        n_cpus=2,
        dram=DramModel.for_capacity(64.0),
        fan=FanModel(max_watts=40.0),
        other_watts=25.0,
    )
    return SystemModel("dvfs-study", 256, config, seed=17)


def run(
    *,
    downclock_fraction: float = 0.4,
    multiplier: float = 0.75,
    core_s: float = SECONDS_PER_HOUR,
) -> DvfsGamingResult:
    """Run the DVFS gaming study.

    Parameters
    ----------
    downclock_fraction:
        Final fraction of the core phase the governor down-clocks.
    multiplier:
        Frequency multiplier during the down-clocked period.
    """
    if not (0.0 < downclock_fraction < 1.0):
        raise ValueError("downclock_fraction must be in (0, 1)")
    if not (0.0 < multiplier < 1.0):
        raise ValueError("multiplier must be in (0, 1)")
    system = _fleet()
    workload = ConstantWorkload(utilisation=0.95, core_s=core_s)

    flat_run = simulate_run(system, workload, dt=1.0, noise_cv=0.0)
    flat = optimal_window_gain(flat_run.core_trace())

    governor = DvfsGovernor.stepped(
        [1.0 - downclock_fraction], [1.0, multiplier]
    )
    dvfs_run = simulate_run(
        system, workload, dt=1.0, noise_cv=0.0, governor=governor
    )
    dvfs = optimal_window_gain(dvfs_run.core_trace())

    return DvfsGamingResult(
        flat=flat,
        dvfs=dvfs,
        downclock_fraction=downclock_fraction,
        multiplier=multiplier,
    )
