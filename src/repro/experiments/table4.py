"""Experiment T4 — paper Table 4: per-node power statistics per system.

Regenerates N, μ̂, σ̂ and σ̂/μ̂ for the six node-variability systems,
and checks the paper's aggregate claim that σ/μ falls "approximately
within the range 1.5% − 3%" for all of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.cluster.registry import (
    NODE_VARIABILITY_SYSTEMS,
    PAPER_TABLE4,
    get_system,
    workload_utilisation,
)
from repro.experiments.base import Comparison, ExperimentResult

__all__ = ["Table4Result", "Table4MeasuredRow", "run"]


@dataclass(frozen=True)
class Table4MeasuredRow:
    """One regenerated Table 4 row."""

    system: str
    n_nodes: int
    mean_w: float
    std_w: float

    @property
    def cv(self) -> float:
        """σ̂/μ̂."""
        return self.std_w / self.mean_w


@dataclass
class Table4Result(ExperimentResult):
    """Regenerated Table 4 with paper comparisons."""

    rows: list

    experiment_id = "T4"
    artifact = "Table 4"

    def comparisons(self) -> list[Comparison]:
        out = []
        for row in self.rows:
            paper = PAPER_TABLE4[row.system]
            out.append(
                Comparison(
                    label=f"{row.system} mean node power (W)",
                    paper=paper.mean_w,
                    measured=row.mean_w,
                    rel_tol=0.01,
                )
            )
            out.append(
                Comparison(
                    label=f"{row.system} node power std (W)",
                    paper=paper.std_w,
                    measured=row.std_w,
                    rel_tol=0.05,
                )
            )
            out.append(
                Comparison(
                    label=f"{row.system} sigma/mu",
                    paper=paper.cv,
                    measured=row.cv,
                    rel_tol=0.05,
                )
            )
        # Aggregate claim: all systems within ~1.5–3%.
        out.append(
            Comparison(
                label="max sigma/mu across systems",
                paper=0.03,
                measured=max(r.cv for r in self.rows),
                mode="at_most",
                abs_tol=0.001,
            )
        )
        out.append(
            Comparison(
                label="min sigma/mu across systems",
                paper=0.015,
                measured=min(r.cv for r in self.rows),
                mode="at_least",
                abs_tol=0.001,
            )
        )
        return out

    def report(self) -> str:
        table = Table(
            ["system", "N", "mean (W)", "std (W)", "sigma/mu",
             "paper sigma/mu"],
            title="Table 4 — per-node power statistics (simulated fleets)",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.system,
                    row.n_nodes,
                    row.mean_w,
                    row.std_w,
                    f"{row.cv:.2%}",
                    f"{PAPER_TABLE4[row.system].cv:.2%}",
                ]
            )
        lines = [table.render(), ""]
        lines += self.summary_lines()
        return "\n".join(lines)


def run() -> Table4Result:
    """Regenerate Table 4 from the calibrated fleets."""
    rows = []
    for name in NODE_VARIABILITY_SYSTEMS:
        system = get_system(name)
        sample = system.node_sample(workload_utilisation(name))
        rows.append(
            Table4MeasuredRow(
                system=name,
                n_nodes=len(sample),
                mean_w=sample.mean(),
                std_w=sample.std(),
            )
        )
    return Table4Result(rows=rows)
