"""Experiment modules — one per paper table/figure plus the narrative
claims (see DESIGN.md §4 for the index).

Each module exposes a ``run(...)`` function returning a result object
with:

* the regenerated artefact (rows / series / grids),
* ``comparisons()`` — paper-value vs measured-value records with
  tolerances,
* ``report()`` — the plain-text rendering the benches print.

:mod:`~repro.experiments.runner` executes everything and assembles the
EXPERIMENTS.md paper-vs-measured record.
"""

from repro.experiments.base import Comparison, ExperimentResult

__all__ = ["Comparison", "ExperimentResult"]
