"""Extension X5 — derived power numbers vs ground truth.

Half the Green500's power results "are actually based on vendor
specifications and extrapolation rather than physical measurements"
(Section 2.1, citing Scogland et al. [19]); 233 of 267 Nov 2014
submissions were derived.  With the simulator we can do what the list
operators cannot: compare the derivation recipes against the machine's
true time-averaged power, across the calibrated Table 4 fleets.

What this demonstrates (and asserts):

1. **Recipe incomparability** — the three common recipes (TDP sum,
   vendor-derated "typical", PSU nameplate) span roughly a 2x range on
   the *same* machine, and submissions do not say which was used.
2. **Workload blindness** — a derived number is one constant, but the
   machine's true average power moves by >10% across realistic
   utilisation levels; the derived/true ratio therefore depends on
   what was actually run, so two derived submissions are not
   comparable even when they use the same recipe.
3. **Bracketing, not estimating** — across every fleet, the derated
   recipe under-states the loaded draw while nameplate over-states it;
   no fixed recipe tracks the truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.cluster.registry import (
    NODE_VARIABILITY_SYSTEMS,
    get_system,
    workload_utilisation,
)
from repro.experiments.base import Comparison, ExperimentResult
from repro.lists.derived import derive_node_power

__all__ = ["DerivedResult", "DerivedRow", "run"]

#: Utilisation range spanned by realistic submissions (a lightly loaded
#: acceptance run vs a tuned HPL vs a stress test).
UTIL_RANGE = (0.70, 0.99)


@dataclass(frozen=True)
class DerivedRow:
    """Derived-vs-true per-node power for one system."""

    system: str
    true_watts: float       # at the system's Table 3 workload
    true_low_watts: float   # at UTIL_RANGE[0]
    true_high_watts: float  # at UTIL_RANGE[1]
    tdp_watts: float
    derated_watts: float
    nameplate_watts: float

    @property
    def workload_swing(self) -> float:
        """Relative swing of the truth across the utilisation range —
        the variation a constant derived number cannot follow."""
        return (self.true_high_watts - self.true_low_watts) / self.true_watts

    @property
    def recipe_spread(self) -> float:
        """Nameplate over derated: the recipe-choice ambiguity."""
        return self.nameplate_watts / self.derated_watts


@dataclass
class DerivedResult(ExperimentResult):
    """The derivation-recipe comparison."""

    rows: list

    experiment_id = "X5"
    artifact = "Section 2.1 derived-numbers discussion (extension)"

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                label="recipe choice spans >= 1.6x on the same machine",
                paper=1.6,
                measured=float(min(r.recipe_spread for r in self.rows)),
                mode="at_least",
            ),
            Comparison(
                label="true power moves >10% across workloads "
                      "(derived is constant)",
                paper=0.10,
                measured=float(min(r.workload_swing for r in self.rows)),
                mode="at_least",
            ),
            Comparison(
                label="derated recipe understates the loaded draw everywhere",
                paper=1.0,
                measured=float(
                    max(r.derated_watts / r.true_high_watts for r in self.rows)
                ),
                mode="at_most",
            ),
            Comparison(
                label="nameplate overstates the loaded draw everywhere",
                paper=1.0,
                measured=float(
                    min(
                        r.nameplate_watts / r.true_high_watts
                        for r in self.rows
                    )
                ),
                mode="at_least",
            ),
        ]

    def report(self) -> str:
        table = Table(
            ["system", "true W (u=0.70)", "true W (workload)",
             "true W (u=0.99)", "TDP", "derated", "nameplate"],
            title="X5 — derived power vs simulated truth (per node, "
                  "Table 4 fleets)",
        )
        for r in self.rows:
            table.add_row(
                [r.system, r.true_low_watts, r.true_watts,
                 r.true_high_watts, r.tdp_watts, r.derated_watts,
                 r.nameplate_watts]
            )
        lines = [table.render(), ""]
        lines.append(
            "a derived submission is one constant from an unspecified "
            "recipe against a workload-dependent truth — 'not "
            "verifiable' (repro.lists.validation) and not comparable."
        )
        lines.append("")
        lines += self.summary_lines()
        return "\n".join(lines)


def run() -> DerivedResult:
    """Compare derivation recipes with the calibrated fleets' truth."""
    u_lo, u_hi = UTIL_RANGE
    rows = []
    for name in NODE_VARIABILITY_SYSTEMS:
        system = get_system(name)
        true = system.node_sample(workload_utilisation(name)).mean()
        true_lo = system.node_sample(u_lo).mean()
        true_hi = system.node_sample(u_hi).mean()
        # The derivation uses the *calibrated* spec sheet: the node
        # config scaled by the same power_scale calibration, i.e. the
        # datasheet of the machine as simulated.
        scale = system.power_scale
        rows.append(
            DerivedRow(
                system=name,
                true_watts=true,
                true_low_watts=true_lo,
                true_high_watts=true_hi,
                tdp_watts=derive_node_power(system.config, "tdp") * scale,
                derated_watts=derive_node_power(
                    system.config, "tdp-derated"
                ) * scale,
                nameplate_watts=derive_node_power(
                    system.config, "nameplate"
                ) * scale,
            )
        )
    return DerivedResult(rows=rows)
