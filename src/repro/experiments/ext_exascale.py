"""Extension X3 — the exascale outlook (Section 6).

"Our methods and analysis will remain valid for new large-scale systems
as long as the application under test is regular.  The specific
percentage and count may shift if the level of variability increases
significantly in the exascale timeframe, but our methods would show
this and provide new baseline requirements."

This experiment *runs that forward*: sweep σ/μ beyond the observed
1.5–3% band and compute, at each level, (a) the Eq. 5 node requirement
for the paper's λ = 1.5% target, (b) the accuracy the fixed 16-node
rule actually achieves, and (c) the σ/μ frontier beyond which the
16-node rule no longer meets its design accuracy — the "new baseline
requirements" trigger point.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import brentq

from repro.analysis.report import Table
from repro.core.recommendations import NEW_RULES
from repro.core.sampling import achieved_accuracy, recommend_sample_size
from repro.experiments.base import Comparison, ExperimentResult

__all__ = ["ExascaleResult", "ExascaleRow", "run"]

#: The paper's example accuracy target for the node-count derivation.
TARGET_LAMBDA = 0.015
CONFIDENCE = 0.95
FLEET = 100_000  # an exascale-era fleet size


@dataclass(frozen=True)
class ExascaleRow:
    """Rule adequacy at one variability level."""

    cv: float
    required_nodes: int
    sixteen_node_accuracy: float
    rule_nodes: int
    rule_accuracy: float


@dataclass
class ExascaleResult(ExperimentResult):
    """The variability sweep plus the 16-node adequacy frontier."""

    rows: list
    frontier_cv: float

    experiment_id = "X3"
    artifact = "Section 6 exascale outlook (extension)"

    def comparisons(self) -> list[Comparison]:
        in_band = [r for r in self.rows if r.cv <= 0.03]
        return [
            Comparison(
                label="16 nodes meet lambda=1.5% across the observed band",
                paper=TARGET_LAMBDA,
                measured=max(r.sixteen_node_accuracy for r in in_band),
                mode="at_most",
                abs_tol=1e-4,
            ),
            Comparison(
                label="paper headroom claim: frontier beyond sigma/mu=3%",
                paper=0.03,
                measured=self.frontier_cv,
                mode="at_least",
            ),
            Comparison(
                label="frontier near the stated 5% headroom cv",
                paper=NEW_RULES.cv_headroom,
                measured=self.frontier_cv,
                rel_tol=0.4,
            ),
        ]

    def report(self) -> str:
        table = Table(
            ["sigma/mu", "Eq.5 nodes (lambda=1.5%)",
             "16-node accuracy", "new-rule nodes (10%)",
             "new-rule accuracy"],
            title=f"X3 — rule adequacy vs variability "
                  f"(N={FLEET}, {CONFIDENCE:.0%} confidence)",
        )
        for r in self.rows:
            table.add_row(
                [f"{r.cv:.1%}", r.required_nodes,
                 f"±{r.sixteen_node_accuracy:.2%}",
                 r.rule_nodes, f"±{r.rule_accuracy:.3%}"]
            )
        lines = [table.render(), ""]
        lines.append(
            f"16-node rule meets ±{TARGET_LAMBDA:.1%} up to sigma/mu = "
            f"{self.frontier_cv:.2%}; beyond that the paper's 'new "
            "baseline requirements' clause triggers."
        )
        lines.append("")
        lines += self.summary_lines()
        return "\n".join(lines)


def run(
    *, cvs=(0.015, 0.02, 0.03, 0.05, 0.08, 0.12), fleet: int = FLEET
) -> ExascaleResult:
    """Sweep variability levels and locate the 16-node adequacy frontier."""
    rows = []
    for cv in cvs:
        rule_nodes = min(
            max(NEW_RULES.min_nodes, int(0.1 * fleet + 0.999999)), fleet
        )
        rows.append(
            ExascaleRow(
                cv=cv,
                required_nodes=recommend_sample_size(
                    fleet, cv, TARGET_LAMBDA, CONFIDENCE
                ).n,
                sixteen_node_accuracy=achieved_accuracy(
                    NEW_RULES.min_nodes, fleet, cv, CONFIDENCE, method="z"
                ),
                rule_nodes=rule_nodes,
                rule_accuracy=achieved_accuracy(
                    rule_nodes, fleet, cv, CONFIDENCE, method="z"
                ),
            )
        )

    def sixteen_gap(cv: float) -> float:
        return (
            achieved_accuracy(NEW_RULES.min_nodes, fleet, cv, CONFIDENCE,
                              method="z")
            - TARGET_LAMBDA
        )

    frontier = float(brentq(sixteen_gap, 0.005, 0.5, xtol=1e-5))
    return ExascaleResult(rows=rows, frontier_cv=frontier)
