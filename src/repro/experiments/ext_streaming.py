"""Extension X-STR — streaming estimators vs batch ground truth.

The :mod:`repro.stream` subsystem claims that a site can run the
paper's methodology *online*: single-pass estimators that agree with
batch statistics, mergeable per-node state, and a sequential stopping
rule that reproduces the Table 5 sample sizes without ever seeing the
full fleet up front.  This experiment audits each claim:

* **moments** — streaming mean/σ over a full L-CSC HPL replay must
  match the batch computation to float round-off (the Welford/Chan
  recurrences are exact, not approximate).
* **merge** — splitting the fleet in two, streaming each half
  separately and merging the estimator state must equal the single
  stream (Chan's merge is algebraically exact).
* **P² quantiles** — within 1% of the exact sample quantiles on a
  stationary stream (the estimator's design regime).  On the
  non-stationary HPL ramp the estimator drifts; the experiment records
  that honestly with a wider tolerance rather than hiding it.
* **sequential Table 5** — :class:`~repro.stream.stopping.\
SequentialStopper` with the paper's z-quantile and a known σ/μ must
  stop at exactly the published node counts, cell for cell: the
  sequential boundary is algebraically Eq. 5.
* **live compliance** — replaying the full core phase must be judged
  full-core compliant with adequate sampling cadence by the monitor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.cluster.registry import get_trace_setup
from repro.experiments.base import Comparison, ExperimentResult
from repro.experiments.table5 import ACCURACIES, CVS, PAPER_TABLE5
from repro.stream.estimators import P2Quantile, RunningMoments
from repro.stream.session import stream_session
from repro.stream.stopping import SequentialStopper
from repro.traces.synth import simulate_run
from repro.units import SECONDS_PER_HOUR
from repro.workloads.base import ConstantWorkload

__all__ = ["StreamingResult", "run"]

#: Quantiles audited against exact batch values.
_QUANTILES = (0.5, 0.95)

#: Table 5's population size.
_TABLE5_N = 10_000


@dataclass
class StreamingResult(ExperimentResult):
    """Streaming-vs-batch agreement record."""

    #: label → (streamed, batch) pairs for the moment checks.
    moment_pairs: dict[str, tuple[float, float]]
    #: q → (streamed, exact) on the stationary control stream.
    stationary_quantiles: dict[float, tuple[float, float]]
    #: q → (streamed, exact) on the non-stationary HPL stream.
    hpl_quantiles: dict[float, tuple[float, float]]
    #: Worst relative error of the two-way merged moments vs one pass.
    merge_rel_err: float
    #: Relative error of the merged P² median vs the exact median.
    merge_p2_rel_err: float
    #: Sequential stopping counts on the Table 5 grid (rows λ, cols σ/μ).
    sequential_grid: np.ndarray
    #: Live monitor verdicts from the HPL session.
    full_core_compliant: bool
    interval_ok: bool
    #: Session bookkeeping (reported, not judged).
    samples_ingested: int
    queue_stalls: int
    stopped_at_nodes: int | None

    experiment_id = "X-STR"
    artifact = "streaming vs batch estimators + sequential Table 5 (extension)"

    def comparisons(self) -> list[Comparison]:
        out = []
        for label, (streamed, batch) in self.moment_pairs.items():
            out.append(
                Comparison(
                    label=f"streaming {label} == batch",
                    paper=batch,
                    measured=streamed,
                    rel_tol=1e-9,
                )
            )
        out.append(
            Comparison(
                label="two-way merged moments == single pass",
                paper=1e-9,
                measured=self.merge_rel_err,
                mode="at_most",
            )
        )
        for q, (streamed, exact) in self.stationary_quantiles.items():
            out.append(
                Comparison(
                    label=f"P² p{int(round(q * 100))} (stationary stream)",
                    paper=exact,
                    measured=streamed,
                    rel_tol=0.01,
                )
            )
        # P² assumes near-stationary input; the HPL tail-off ramp is a
        # deliberately hostile stream, so the tolerance is wider (the
        # drift is the finding, not a defect to hide).
        for q, (streamed, exact) in self.hpl_quantiles.items():
            out.append(
                Comparison(
                    label=f"P² p{int(round(q * 100))} (non-stationary HPL)",
                    paper=exact,
                    measured=streamed,
                    rel_tol=0.03,
                )
            )
        out.append(
            Comparison(
                label="merged P² median within 1% of exact",
                paper=0.01,
                measured=self.merge_p2_rel_err,
                mode="at_most",
            )
        )
        for i, lam in enumerate(ACCURACIES):
            for j, cv in enumerate(CVS):
                out.append(
                    Comparison(
                        label=(
                            f"sequential stop n(lambda={lam:g}, cv={cv:g})"
                        ),
                        paper=float(PAPER_TABLE5[i, j]),
                        measured=float(self.sequential_grid[i, j]),
                        rel_tol=0.0,
                        abs_tol=0.0,
                    )
                )
        out.append(
            Comparison(
                label="live monitor: full-core compliant",
                paper=1.0,
                measured=float(self.full_core_compliant),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="live monitor: sampling interval adequate",
                paper=1.0,
                measured=float(self.interval_ok),
                abs_tol=0.0,
            )
        )
        return out

    def report(self) -> str:
        lines = [
            "X-STR — single-pass streaming vs batch ground truth",
            "",
            f"HPL replay: {self.samples_ingested} samples ingested, "
            f"{self.queue_stalls} backpressure stalls, stop signal at "
            f"n={self.stopped_at_nodes} nodes",
            "",
        ]
        table = Table(
            ["quantity", "streamed", "batch", "rel diff"],
            title="moment agreement (full L-CSC HPL core phase)",
        )
        for label, (streamed, batch) in self.moment_pairs.items():
            rel = abs(streamed - batch) / abs(batch) if batch else 0.0
            table.add_row(
                [label, f"{streamed:.6f}", f"{batch:.6f}", f"{rel:.2e}"]
            )
        lines.append(table.render())
        lines.append("")
        qt = Table(
            ["quantile", "stream", "streamed", "exact", "rel diff"],
            title="P² quantile agreement",
        )
        for q, (streamed, exact) in self.stationary_quantiles.items():
            qt.add_row(
                [f"p{int(round(q * 100))}", "stationary",
                 f"{streamed:.2f}", f"{exact:.2f}",
                 f"{abs(streamed - exact) / exact:.3%}"]
            )
        for q, (streamed, exact) in self.hpl_quantiles.items():
            qt.add_row(
                [f"p{int(round(q * 100))}", "HPL ramp",
                 f"{streamed:.2f}", f"{exact:.2f}",
                 f"{abs(streamed - exact) / exact:.3%}"]
            )
        lines.append(qt.render())
        lines.append("")
        lines.append(
            f"two-way merge: moments rel err {self.merge_rel_err:.2e}, "
            f"P² median rel err {self.merge_p2_rel_err:.3%}"
        )
        lines.append("")
        st = Table(
            ["lambda \\ sigma/mu", *[f"{cv:g}" for cv in CVS]],
            title=(
                f"sequential stopping counts "
                f"(N={_TABLE5_N}, z-quantile, known sigma/mu)"
            ),
        )
        for i, lam in enumerate(ACCURACIES):
            st.add_row([f"{lam:.1%}", *self.sequential_grid[i].tolist()])
        lines.append(st.render())
        exact_match = bool(np.array_equal(self.sequential_grid, PAPER_TABLE5))
        lines.append(f"exact match with Table 5: {exact_match}")
        lines.append("")
        lines.append(
            "live compliance: full-core="
            f"{'yes' if self.full_core_compliant else 'NO'}, "
            f"interval={'ok' if self.interval_ok else 'VIOLATION'}"
        )
        return "\n".join(lines)


def _sequential_table5(*, confidence: float) -> np.ndarray:
    """Stopping node counts over the Table 5 grid via the sequential rule.

    With ``method="z"`` and a known σ/μ the boundary is a deterministic
    function of ``n``, so the fed node means are irrelevant — constant
    powers keep the scan honest about *when* the rule fires.
    """
    grid = np.zeros((len(ACCURACIES), len(CVS)), dtype=np.int64)
    for i, lam in enumerate(ACCURACIES):
        for j, cv in enumerate(CVS):
            stopper = SequentialStopper(
                accuracy=lam,
                population=_TABLE5_N,
                confidence=confidence,
                method="z",
                cv_override=cv,
                min_nodes=2,
            )
            feed = np.full(_TABLE5_N, 100.0)
            grid[i, j] = stopper.scan(feed)
    return grid


def run(
    *,
    system_name: str = "l-csc",
    dt_s: float = 2.0,
    seed: int = 3405,
    accuracy: float = 0.02,
    confidence: float = 0.95,
    control_core_s: float = SECONDS_PER_HOUR,
) -> StreamingResult:
    """Audit the streaming subsystem against batch ground truth.

    Parameters
    ----------
    system_name:
        Trace-registry system replayed (L-CSC: 56 nodes, tractable).
    dt_s:
        Sample spacing of the HPL replay.
    seed:
        Run seed (both the HPL replay and the stationary control).
    accuracy / confidence:
        Sequential stopping target used in the live session.
    control_core_s:
        Core duration of the stationary control workload.
    """
    system, workload = get_trace_setup(system_name)

    # --- non-stationary HPL replay through the full pipeline ---------
    run_hpl = simulate_run(system, workload, dt=dt_s, seed=seed)
    session = stream_session(
        run_hpl,
        quantiles=_QUANTILES,
        accuracy=accuracy,
        confidence=confidence,
        report_every_s=900.0,
    )
    t0_s, t1_s = run_hpl.core_window
    _, watts = run_hpl.node_power_matrix(t0_s, t1_s)
    flat = watts.ravel()
    moment_pairs = {
        "mean (W)": (
            float(np.asarray(session.fleet_moments.mean)),
            float(flat.mean()),
        ),
        "std (W)": (
            float(np.asarray(session.fleet_moments.std())),
            float(flat.std(ddof=1)),
        ),
        "min (W)": (
            float(np.asarray(session.fleet_moments.minimum)),
            float(flat.min()),
        ),
        "max (W)": (
            float(np.asarray(session.fleet_moments.maximum)),
            float(flat.max()),
        ),
    }
    hpl_quantiles = {
        q: (session.quantiles_w[q], float(np.quantile(flat, q)))
        for q in _QUANTILES
    }

    # --- exact merge: two half-fleet streams vs one pass -------------
    half = watts.shape[1] // 2
    left, right = RunningMoments(), RunningMoments()
    left.push_batch(watts[:, :half].ravel())
    right.push_batch(watts[:, half:].ravel())
    merged = left.merge(right)
    whole = RunningMoments()
    whole.push_batch(flat)
    merge_rel_err = max(
        abs(float(np.asarray(merged.mean)) - float(np.asarray(whole.mean)))
        / abs(float(np.asarray(whole.mean))),
        abs(
            float(np.asarray(merged.variance()))
            - float(np.asarray(whole.variance()))
        )
        / abs(float(np.asarray(whole.variance()))),
    )

    # --- stationary control for the P² design regime -----------------
    control = ConstantWorkload(
        utilisation=workload.utilisation(0.5), core_s=control_core_s
    )
    run_flat = simulate_run(system, control, dt=1.0, seed=seed)
    c0_s, c1_s = run_flat.core_window
    _, cwatts = run_flat.node_power_matrix(c0_s, c1_s)
    cflat = cwatts.ravel()
    stationary_quantiles = {}
    for q in _QUANTILES:
        est = P2Quantile(q)
        est.push_batch(cflat)
        stationary_quantiles[q] = (est.value, float(np.quantile(cflat, q)))

    # Merged P² on the stationary stream: two half-streams combined.
    p2_left, p2_right = P2Quantile(0.5), P2Quantile(0.5)
    p2_left.push_batch(cwatts[:, :half].ravel())
    p2_right.push_batch(cwatts[:, half:].ravel())
    p2_merged = p2_left.merge(p2_right)
    exact_median = float(np.quantile(cflat, 0.5))
    merge_p2_rel_err = abs(p2_merged.value - exact_median) / exact_median

    sequential_grid = _sequential_table5(confidence=confidence)

    report = session.monitor_report
    return StreamingResult(
        moment_pairs=moment_pairs,
        stationary_quantiles=stationary_quantiles,
        hpl_quantiles=hpl_quantiles,
        merge_rel_err=float(merge_rel_err),
        merge_p2_rel_err=float(merge_p2_rel_err),
        sequential_grid=sequential_grid,
        full_core_compliant=report.full_core_compliant,
        interval_ok=report.interval_ok,
        samples_ingested=session.samples_ingested,
        queue_stalls=session.queue_stalls,
        stopped_at_nodes=session.stopped_at_nodes,
    )
