"""Experiment F4 — paper Figure 4: L-CSC efficiency vs. GPU VID.

Single-node Linpack power efficiency on an L-CSC-style node (4× AMD
FirePro-class GPUs), for a population of nodes whose four GPUs share a
VID, under three configurations:

* **fixed** — 774 MHz at a fixed 1.018 V for every ASIC (the tuned
  Green500 operating point), fans pinned low;
* **default** — 900 MHz with each ASIC at its VID-programmed voltage,
  fans pinned faster (required thermally at the higher power);
* **default, fan-corrected** — the default dataset minus the measured
  fan-power difference (the paper's third curve).

Asserted findings (paper's bullet list):

1. the fixed configuration's efficiency spread is ~1.2% — smaller than
   every Table 4 system;
2. at fixed voltage, efficiency is *unrelated* to VID;
3. at default settings, higher-VID nodes are measurably less efficient
   (clear negative trend);
4. the fan-speed power difference (>100 W) dwarfs the GPU-to-GPU
   variability;
5. the corrected curve has the same slope as the uncorrected one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.cluster.components import CpuModel, DramModel, FanModel, GpuModel
from repro.cluster.dvfs import OperatingPoint
from repro.cluster.node import NodeConfig
from repro.cluster.variability import ManufacturingVariation, VidBinning
from repro.experiments.base import Comparison, ExperimentResult
from repro.rng import stream

__all__ = ["Figure4Result", "Figure4NodeRow", "run"]

#: The tuned operating point the L-CSC team found by exhaustive search.
FIXED_POINT = OperatingPoint(freq_mhz=774.0, volts=1.018)
DEFAULT_MHZ = 900.0

#: Normalised fan speeds: the lowest thermally adequate speed for the
#: tuned point, and the faster setting the 900 MHz runs required.
FAN_SPEED_FIXED = 0.45
FAN_SPEED_DEFAULT = 0.85


def _lcsc_config() -> NodeConfig:
    """An L-CSC node: 2 CPUs + 4 FirePro-class GPUs + big fans."""
    return NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=120.0, nominal_mhz=2300.0),
        n_cpus=2,
        gpu=GpuModel(
            idle_watts=18.0, peak_watts=230.0, nominal_mhz=DEFAULT_MHZ,
            nominal_volts=1.1425,  # mid-grid VID voltage
            static_fraction=0.25,
        ),
        n_gpus=4,
        dram=DramModel.for_capacity(256.0),
        fan=FanModel(max_watts=250.0, min_speed=0.3),
        other_watts=40.0,
    )


@dataclass(frozen=True)
class Figure4NodeRow:
    """One node's three efficiency measurements (GFLOPS/W)."""

    node_id: int
    vid: int
    eff_fixed: float
    eff_default: float
    eff_default_fan_corrected: float


@dataclass
class Figure4Result(ExperimentResult):
    """The regenerated Figure 4 dataset with the paper's conclusions."""

    rows: list
    fan_power_delta_w: float
    gpu_power_spread_w: float

    experiment_id = "F4"
    artifact = "Figure 4"

    # ------------------------------------------------------------------
    def _arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        vids = np.array([r.vid for r in self.rows], dtype=float)
        fixed = np.array([r.eff_fixed for r in self.rows])
        default = np.array([r.eff_default for r in self.rows])
        corrected = np.array([r.eff_default_fan_corrected for r in self.rows])
        return vids, fixed, default, corrected

    @staticmethod
    def _slope(x: np.ndarray, y: np.ndarray) -> float:
        return float(np.polyfit(x, y, 1)[0])

    def comparisons(self) -> list[Comparison]:
        vids, fixed, default, corrected = self._arrays()
        out = [
            Comparison(
                label="fixed-config efficiency CV (paper: 1.2%)",
                paper=0.012,
                measured=float(fixed.std(ddof=1) / fixed.mean()),
                rel_tol=0.5,
            ),
            Comparison(
                label="|corr(eff_fixed, VID)| (paper: unrelated)",
                paper=0.3,
                measured=abs(float(np.corrcoef(fixed, vids)[0, 1])),
                mode="at_most",
            ),
            Comparison(
                label="corr(eff_default, VID) (paper: clear negative trend)",
                paper=-0.5,
                measured=float(np.corrcoef(default, vids)[0, 1]),
                mode="at_most",
            ),
            Comparison(
                label="fan power delta (W) (paper: >100 W)",
                paper=100.0,
                measured=self.fan_power_delta_w,
                mode="at_least",
            ),
            Comparison(
                label="fan delta / GPU-variability sigma (paper: 'many times')",
                paper=3.0,
                measured=self.fan_power_delta_w / self.gpu_power_spread_w,
                mode="at_least",
            ),
            # "Since the offset due to fan speed is constant, both
            # curves have the same slope" — the offset is constant in
            # *power*, so the efficiency-space slopes agree to first
            # order; both must be negative and of comparable magnitude.
            Comparison(
                label="slope(fan-corrected) matches slope(default)",
                paper=self._slope(vids, default),
                measured=self._slope(vids, corrected),
                rel_tol=0.6,
            ),
        ]
        return out

    def report(self) -> str:
        vids, fixed, default, corrected = self._arrays()
        table = Table(
            ["VID", "nodes", "eff fixed (GF/W)", "eff default (GF/W)",
             "eff default, fan-corrected (GF/W)"],
            title="Figure 4 — single-node Linpack power efficiency vs VID "
                  "(L-CSC model)",
        )
        for vid in sorted(set(int(v) for v in vids)):
            mask = vids == vid
            table.add_row(
                [
                    vid,
                    int(mask.sum()),
                    float(fixed[mask].mean()),
                    float(default[mask].mean()),
                    float(corrected[mask].mean()),
                ]
            )
        lines = [table.render(), ""]
        lines.append(
            f"fan power delta between settings: {self.fan_power_delta_w:.0f} W; "
            f"GPU-variability power spread: {self.gpu_power_spread_w:.0f} W"
        )
        lines.append("")
        lines += self.summary_lines()
        return "\n".join(lines)


def run(
    *,
    n_nodes: int = 32,
    seed: int = 0,
    gpu_sigma: float = 0.037,
    measurement_noise_cv: float = 0.004,
    target_fixed_efficiency: float = 5.4,
) -> Figure4Result:
    """Regenerate the Figure 4 dataset.

    Parameters
    ----------
    n_nodes:
        Number of nodes measured ("a necessarily small sample size").
    gpu_sigma:
        Leakage spread of the GPU population (tuned so the fixed
        configuration's efficiency CV lands near the paper's 1.2%).
    measurement_noise_cv:
        Per-measurement noise of the single-node Linpack runs.
    target_fixed_efficiency:
        GFLOPS/W scale anchor for the fixed configuration's mean (the
        absolute scale is calibration; every conclusion is relative).
    """
    if n_nodes < 4:
        raise ValueError("need at least four nodes")
    config = _lcsc_config()
    binning = VidBinning()
    variation = ManufacturingVariation(sigma=gpu_sigma)
    rng = stream(seed, "figure4")

    # Node-level VIDs ("we ensure that all four GPUs in a node have the
    # same VID"), bell-shaped across the grid, independent of leakage.
    vids = binning.quality_to_vid(rng.beta(2.0, 2.0, size=n_nodes))
    # Per-node aggregate GPU multiplier (mean over 4 GPUs).
    gpu_mult = variation.sample_multipliers(n_nodes * config.n_gpus, rng)
    gpu_mult = gpu_mult.reshape(n_nodes, config.n_gpus).mean(axis=1)

    util = 0.95
    gpu = config.gpu
    base_watts = (
        config.n_cpus * config.cpu.power(util)
        + config.dram.power(util)
        + config.nic.power(util)
        + config.other_watts
    )
    fan_fixed = config.fan.power(FAN_SPEED_FIXED)
    fan_default = config.fan.power(FAN_SPEED_DEFAULT)
    fan_delta = fan_default - fan_fixed

    def node_power(volts: np.ndarray | float, freq: float, fan_w: float) -> np.ndarray:
        per_gpu = gpu.power_at(util, freq, volts)
        return base_watts + config.n_gpus * per_gpu * gpu_mult + fan_w

    volts_default = np.asarray(binning.voltage_for_vid(vids), dtype=float)
    p_fixed = node_power(FIXED_POINT.volts, FIXED_POINT.freq_mhz, fan_fixed)
    p_default = node_power(volts_default, DEFAULT_MHZ, fan_default)

    # Single-node Linpack GFLOPS scales with GPU clock.
    noise = lambda: 1.0 + measurement_noise_cv * rng.standard_normal(n_nodes)
    perf_fixed = FIXED_POINT.freq_mhz
    perf_default = DEFAULT_MHZ
    eff_fixed_raw = perf_fixed / (p_fixed * noise())
    eff_default_raw = perf_default / (p_default * noise())
    eff_corrected_raw = perf_default / (p_default - fan_delta)

    scale = target_fixed_efficiency / eff_fixed_raw.mean()
    rows = [
        Figure4NodeRow(
            node_id=i,
            vid=int(vids[i]),
            eff_fixed=float(eff_fixed_raw[i] * scale),
            eff_default=float(eff_default_raw[i] * scale),
            eff_default_fan_corrected=float(eff_corrected_raw[i] * scale),
        )
        for i in range(n_nodes)
    ]
    gpu_spread = float(p_fixed.std(ddof=1))
    return Figure4Result(
        rows=rows,
        fan_power_delta_w=float(fan_delta),
        gpu_power_spread_w=gpu_spread,
    )
