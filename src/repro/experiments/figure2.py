"""Experiment F2 — paper Figure 2: per-node power histograms.

Regenerates the six per-system histograms and verifies the properties
the paper reads off them: the distributions are "roughly unimodal with
few outliers", near-normal enough for the Section 4 machinery, and the
outliers that do exist are "of a larger magnitude than we would
typically see arising in truly normal data".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.descriptive import histogram
from repro.analysis.normality import NormalityReport, normality_report
from repro.analysis.report import Table
from repro.cluster.registry import (
    NODE_VARIABILITY_SYSTEMS,
    get_system,
    workload_utilisation,
)
from repro.experiments.base import Comparison, ExperimentResult

__all__ = ["Figure2Result", "Figure2Panel", "run"]


def _modality_count(counts: np.ndarray, *, min_prominence: float = 0.2) -> int:
    """Count prominent modes in a histogram via topographic prominence.

    A local maximum counts as a mode if its prominence — its height
    above the highest saddle separating it from any taller bin — is at
    least ``min_prominence`` of the global peak.  Sampling wiggle on the
    flanks of a single bell therefore does not register.
    """
    smooth = counts.astype(float)
    if smooth.size >= 5:
        kernel = np.array([0.25, 0.5, 0.25])
        smooth = np.convolve(smooth, kernel, mode="same")
    peak = smooth.max()
    if peak == 0:
        return 0
    modes = 0
    for j in range(smooth.size):
        h = smooth[j]
        left_ok = j == 0 or h >= smooth[j - 1]
        right_ok = j == smooth.size - 1 or h > smooth[j + 1]
        if not (left_ok and right_ok):
            continue
        # Saddle toward taller ground on each side; if no taller bin
        # exists on a side, that side imposes no saddle.
        saddle = -np.inf
        for sl in (slice(j - 1, None, -1), slice(j + 1, None)):
            running_min = h
            for v in smooth[sl]:
                running_min = min(running_min, v)
                if v > h:
                    saddle = max(saddle, running_min)
                    break
        prominence = h - (saddle if np.isfinite(saddle) else smooth.min())
        if prominence >= min_prominence * peak:
            modes += 1
    return max(modes, 1)


@dataclass(frozen=True)
class Figure2Panel:
    """One histogram panel of Figure 2."""

    system: str
    counts: np.ndarray
    edges: np.ndarray
    normality: NormalityReport
    n_modes: int


@dataclass
class Figure2Result(ExperimentResult):
    """Regenerated Figure 2 with distribution-shape assertions."""

    panels: list

    experiment_id = "F2"
    artifact = "Figure 2"

    def comparisons(self) -> list[Comparison]:
        out = []
        for p in self.panels:
            out.append(
                Comparison(
                    label=f"{p.system} histogram unimodal (modes)",
                    paper=1,
                    measured=p.n_modes,
                    rel_tol=0.0,
                    abs_tol=0.0,
                )
            )
            out.append(
                Comparison(
                    label=f"{p.system} outlier fraction ('few outliers')",
                    paper=0.02,
                    measured=p.normality.outlier_fraction,
                    mode="at_most",
                )
            )
            out.append(
                Comparison(
                    label=f"{p.system} QQ correlation (near-normal)",
                    paper=0.95,
                    measured=p.normality.qq_r,
                    mode="at_least",
                )
            )
        # "outliers ... of a larger magnitude than we would typically
        # see arising in truly normal data" — at least one system shows
        # robust-z outliers beyond 3.5σ.
        out.append(
            Comparison(
                label="systems with super-normal outliers",
                paper=1,
                measured=sum(
                    1 for p in self.panels if p.normality.n_outliers > 0
                ),
                mode="at_least",
            )
        )
        return out

    def report(self) -> str:
        from repro.analysis.ascii_plot import histogram_sparkline

        table = Table(
            ["system", "N", "modes", "skew", "excess kurtosis", "QQ r",
             "outliers"],
            title="Figure 2 — per-node power distribution shape",
        )
        for p in self.panels:
            r = p.normality
            table.add_row(
                [
                    p.system,
                    r.n,
                    p.n_modes,
                    r.skewness,
                    r.excess_kurtosis,
                    r.qq_r,
                    r.n_outliers,
                ]
            )
        lines = [table.render(), ""]
        lines.append("histograms (power left→right, ±4 robust sigmas):")
        for p in self.panels:
            spark = histogram_sparkline(p.counts, width=48)
            lo, hi = p.edges[0], p.edges[-1]
            lines.append(
                f"  {p.system:>14s} [{lo:7.1f} W] {spark} [{hi:7.1f} W]"
            )
        lines.append("")
        lines += self.summary_lines()
        return "\n".join(lines)


def run(*, bins: int = 40) -> Figure2Result:
    """Regenerate the Figure 2 panels."""
    panels = []
    for name in NODE_VARIABILITY_SYSTEMS:
        system = get_system(name)
        sample = system.node_sample(workload_utilisation(name))
        counts, edges = histogram(sample.watts, bins=bins)
        # Modality is judged on a coarser histogram whose per-bin counts
        # are large relative to sampling noise (~n/16 per bin).
        coarse_bins = int(np.clip(len(sample) // 30, 8, 24))
        coarse_counts, _ = histogram(
            sample.watts, bins=coarse_bins, range_sigmas=4.0
        )
        panels.append(
            Figure2Panel(
                system=name,
                counts=counts,
                edges=edges,
                normality=normality_report(sample.watts),
                n_modes=_modality_count(coarse_counts),
            )
        )
    return Figure2Result(panels=panels)
