"""Experiment V1 — the abstract's headline numbers.

"This characterization shows that the current requirement ... is
insufficient, allowing variations of up to 20% due to measurement
timing and a further 10-15% due to insufficient sample sizes."

Monte-Carlo over honest Level 1 campaigns on the GPU trace systems,
decomposed into the two error sources:

* **timing** — all nodes measured with a perfect meter; only the legal
  window placement varies.  Spread (max − min)/truth across placements.
* **sampling** — full-core window with a perfect integrating meter;
  only the node subset (at the minimum legal size) and its meter's
  calibration vary.  Spread across draws.
* **combined** — the full Level 1 procedure with everything varying.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.gaming import optimal_window_gain
from repro.analysis.report import Table
from repro.cluster.registry import get_trace_setup
from repro.core.methodology import Level, machine_fraction_nodes
from repro.core.windows import full_core_window
from repro.experiments.base import Comparison, ExperimentResult
from repro.metering.campaign import MeasurementCampaign
from repro.metering.meter import MeterSpec
from repro.metering.subset import random_subset
from repro.rng import stream
from repro.traces.synth import simulate_run

__all__ = ["Level1VarianceResult", "SystemVariance", "run"]


@dataclass(frozen=True)
class SystemVariance:
    """Level 1 error decomposition for one system."""

    system: str
    n_nodes: int
    subset_size: int
    timing_spread: float
    sampling_spread: float
    combined_spread: float
    combined_errors: np.ndarray


@dataclass
class Level1VarianceResult(ExperimentResult):
    """The abstract's variance decomposition."""

    rows: list

    experiment_id = "V1"
    artifact = "Abstract / Section 1 claims"

    def comparisons(self) -> list[Comparison]:
        worst_timing = max(r.timing_spread for r in self.rows)
        worst_sampling = max(r.sampling_spread for r in self.rows)
        return [
            Comparison(
                label="max timing-induced spread ('up to 20%')",
                paper=0.20,
                measured=worst_timing,
                rel_tol=0.25,
            ),
            Comparison(
                label="max sampling-induced spread ('a further 10-15%')",
                paper=0.10,
                measured=worst_sampling,
                rel_tol=0.5,
            ),
            Comparison(
                label="combined spread at least the timing spread",
                paper=worst_timing * 0.9,
                measured=max(r.combined_spread for r in self.rows),
                mode="at_least",
            ),
        ]

    def report(self) -> str:
        table = Table(
            ["system", "N", "subset", "timing spread", "sampling spread",
             "combined spread"],
            title="Level 1 measurement variation decomposition "
                  "(honest submissions, legal choices only)",
        )
        for r in self.rows:
            table.add_row(
                [
                    r.system,
                    r.n_nodes,
                    r.subset_size,
                    f"{r.timing_spread:.1%}",
                    f"{r.sampling_spread:.1%}",
                    f"{r.combined_spread:.1%}",
                ]
            )
        lines = [table.render(), ""]
        lines += self.summary_lines()
        return "\n".join(lines)


def _sampling_spread(
    run_sim, n: int, n_trials: int, rng: np.random.Generator,
    meter_gain_cv: float,
) -> float:
    """Spread of full-core subset extrapolations across subset draws.

    Evaluated directly on per-node core averages (equivalent to a
    perfect integrating meter per node), with a per-trial meter
    calibration factor on top.
    """
    node_watts = run_sim.node_average_powers()
    total = node_watts.sum()
    n_nodes = node_watts.size
    estimates = np.empty(n_trials)
    for t in range(n_trials):
        idx = random_subset(n_nodes, n, rng)
        gain = 1.0 + meter_gain_cv * rng.standard_normal()
        estimates[t] = node_watts[idx].mean() * n_nodes * gain
    return float((estimates.max() - estimates.min()) / total)


def run(
    *,
    systems: tuple = ("piz-daint", "l-csc"),
    n_trials: int = 400,
    meter_gain_cv: float = 0.015,
    seed: int = 0,
) -> Level1VarianceResult:
    """Run the decomposition.

    ``meter_gain_cv`` is the per-instrument calibration spread ("the
    standard variance of power measurement equipment of 1-1.5%").
    """
    if n_trials < 10:
        raise ValueError("n_trials must be >= 10")
    rows = []
    for name in systems:
        system, workload = get_trace_setup(name)
        sim = simulate_run(system, workload, dt=1.0)
        core = sim.core_trace()

        timing = optimal_window_gain(core).spread

        rng = stream(seed, f"level1-variance-{name}")
        n_min = machine_fraction_nodes(
            Level.L1, system.n_nodes,
            system.system_power(0.9) / system.n_nodes,
        )
        sampling = _sampling_spread(
            sim, n_min, n_trials, rng, meter_gain_cv
        )

        campaign = MeasurementCampaign(
            sim, meter_spec=MeterSpec(gain_error_cv=meter_gain_cv)
        )
        errors = np.empty(n_trials)
        crng = stream(seed, f"level1-combined-{name}")
        for t in range(n_trials):
            errors[t] = campaign.level1(rng=crng).relative_error
        combined = float(errors.max() - errors.min())

        rows.append(
            SystemVariance(
                system=name,
                n_nodes=system.n_nodes,
                subset_size=n_min,
                timing_spread=timing,
                sampling_spread=sampling,
                combined_spread=combined,
                combined_errors=errors,
            )
        )
    return Level1VarianceResult(rows=rows)
