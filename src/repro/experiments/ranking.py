"""Experiment R1 — Section 1's ranking ramifications.

"This variability has significant ramifications for Green500 rankings.
For instance, the advantage of the current 1st ranked system over the
current 3rd ranked system is less than 20%."  And on the list's
provenance mix: "Of the 267 submitted measurements on the November 2014
Green500 list, 233 submissions used power estimates based on derived
numbers rather than measurement, 28 used Level 1, and only 6 used a
higher measurement level."

We rebuild a Nov-2014-flavoured list, verify the mix and the top-3 gap,
then perturb measured powers within Level 1's legal variation and count
rank churn — including the what-if where the podium itself is measured
at (old) Level 1 quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ranking_impact import RankImpactResult, rank_impact_study
from repro.analysis.report import Table
from repro.core.methodology import Level
from repro.experiments.base import Comparison, ExperimentResult
from repro.lists.green500 import Green500List, synthetic_green500
from repro.rng import stream

__all__ = ["RankingResult", "run"]


@dataclass
class RankingResult(ExperimentResult):
    """List structure plus rank-churn statistics."""

    ranked_list: Green500List
    impact_default: RankImpactResult
    impact_all_l1: RankImpactResult

    experiment_id = "R1"
    artifact = "Section 1 ranking discussion"

    def comparisons(self) -> list[Comparison]:
        mix = self.ranked_list.level_mix()
        gap = self.ranked_list.efficiency_gap(1, 3)
        return [
            Comparison(
                label="derived submissions", paper=233,
                measured=mix["derived"], rel_tol=0.0,
            ),
            Comparison(
                label="Level 1 submissions", paper=28,
                measured=mix["L1"], rel_tol=0.0,
            ),
            Comparison(
                label="Level 2+ submissions", paper=6,
                measured=mix["L2"] + mix["L3"], rel_tol=0.0,
            ),
            Comparison(
                label="#1 vs #3 efficiency gap (< 20%)",
                paper=0.20, measured=gap, mode="at_most",
            ),
            Comparison(
                label="top-3 churn under old-L1 error (all measured at L1)",
                paper=0.20,
                measured=self.impact_all_l1.top3_set_change_probability,
                mode="at_least",
            ),
            Comparison(
                label="#1 at risk under old-L1 error (all measured at L1)",
                paper=0.05,
                measured=self.impact_all_l1.top1_change_probability,
                mode="at_least",
            ),
        ]

    def report(self) -> str:
        mix = self.ranked_list.level_mix()
        table = Table(
            ["quantity", "value"],
            title="Synthetic Nov-2014 Green500 and measurement-error "
                  "rank churn",
        )
        table.add_row(["list size", len(self.ranked_list)])
        table.add_row(["derived / L1 / L2+", f"{mix['derived']} / {mix['L1']} / "
                                             f"{mix['L2'] + mix['L3']}"])
        table.add_row(
            ["#1 vs #3 gap", f"{self.ranked_list.efficiency_gap(1, 3):.1%}"]
        )
        table.add_row(
            ["churn (published mix)", self.impact_default.summary()]
        )
        table.add_row(
            ["churn (podium at old L1)", self.impact_all_l1.summary()]
        )
        lines = [table.render(), ""]
        lines += self.summary_lines()
        return "\n".join(lines)


def run(*, n_trials: int = 500, seed: int = 0) -> RankingResult:
    """Build the list and run both churn studies."""
    ranked = synthetic_green500(stream(seed, "green500"))
    impact_default = rank_impact_study(
        ranked, stream(seed, "rank-impact-default"), n_trials=n_trials
    )
    # What-if: every measured system (including the podium's L2 entries)
    # only has old-Level-1 measurement quality.
    impact_all_l1 = rank_impact_study(
        ranked,
        stream(seed, "rank-impact-l1"),
        n_trials=n_trials,
        level_spread={Level.L2: 0.10, Level.L3: 0.10},
    )
    return RankingResult(
        ranked_list=ranked,
        impact_default=impact_default,
        impact_all_l1=impact_all_l1,
    )
