"""Run every experiment and assemble the EXPERIMENTS.md record.

``python -m repro.experiments.runner`` executes all of DESIGN.md §4's
experiments with paper-scale parameters and prints (or writes) the
paper-vs-measured record.  ``--jobs N`` fans the sweep out over a
process pool and ``--cache`` replays unchanged experiments from the
content-addressed result cache (see :mod:`repro.parallel`); every
layout — serial, parallel, cached — produces byte-identical records,
which the golden regression test enforces.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    ext_derived,
    ext_dvfs_gaming,
    ext_exascale,
    ext_faults,
    ext_imbalance,
    ext_meter_quality,
    ext_pathology,
    ext_streaming,
    ext_subsystems,
    ext_wire,
    figure1,
    figure2,
    figure3,
    figure4,
    gaming_case_studies,
    level1_variance,
    ranking,
    sample_size_example,
    t_vs_z,
    table2,
    table4,
    table5,
)
from repro.experiments.base import ExperimentResult

__all__ = [
    "ALL_EXPERIMENTS",
    "add_run_arguments",
    "experiments_markdown",
    "run_all",
    "main",
]

#: Experiment id → zero-argument runner (paper-scale defaults).
ALL_EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "T2": table2.run,
    "F1": figure1.run,
    "F2": figure2.run,
    "T4": table4.run,
    "T5": table5.run,
    "F3": figure3.run,
    "F4": figure4.run,
    "G1": gaming_case_studies.run,
    "S1": sample_size_example.run,
    "V1": level1_variance.run,
    "Z1": t_vs_z.run,
    "R1": ranking.run,
    # Extensions: the paper's caveats and future-work items, run forward.
    "X1": ext_imbalance.run,
    "X2": ext_dvfs_gaming.run,
    "X3": ext_exascale.run,
    "X4": ext_meter_quality.run,
    "X5": ext_derived.run,
    "X6": ext_subsystems.run,
    "X-STR": ext_streaming.run,
    "X-FAULT": ext_faults.run,
    "X-WIRE": ext_wire.run,
    "X-PATH": ext_pathology.run,
}


def _validate_ids(selected: list[str]) -> None:
    """Reject unknown and duplicate experiment ids before any work."""
    unknown = [i for i in selected if i not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown experiment ids: {unknown} "
            f"(known: {list(ALL_EXPERIMENTS)})"
        )
    seen: set[str] = set()
    duplicates: list[str] = []
    for exp_id in selected:
        if exp_id in seen:
            duplicates.append(exp_id)
        seen.add(exp_id)
    if duplicates:
        raise ValueError(
            f"duplicate experiment ids: {sorted(set(duplicates))}"
        )


def run_all(
    *,
    ids: list[str] | None = None,
    verbose: bool = True,
    jobs: int | None = None,
    cache=None,
    refresh: bool = False,
) -> dict[str, ExperimentResult]:
    """Execute the selected experiments (default: all) and return their
    results keyed by experiment id.

    Parameters
    ----------
    jobs:
        Worker processes for the sweep.  ``None`` keeps the classic
        serial loop (exceptions propagate); any integer routes through
        the :mod:`repro.parallel` scheduler, where a raising experiment
        becomes a :class:`~repro.experiments.base.FailedResult` instead
        of aborting the sweep.
    cache:
        A :class:`repro.parallel.ResultCache` (or a path-like to create
        one at) for content-addressed replay of unchanged experiments.
    refresh:
        With a cache, re-run everything and overwrite the entries.

    Results are keyed in the requested id order regardless of execution
    layout, so rendered records are byte-identical across layouts.
    """
    selected = ids or list(ALL_EXPERIMENTS)
    _validate_ids(selected)

    if jobs is None and cache is None:
        results: dict[str, ExperimentResult] = {}
        for exp_id in selected:
            t0 = time.perf_counter()
            result = ALL_EXPERIMENTS[exp_id]()
            elapsed = time.perf_counter() - t0
            results[exp_id] = result
            if verbose:
                _print_result(exp_id, result, elapsed)
        return results

    from repro.parallel.cache import ResultCache
    from repro.parallel.scheduler import run_experiments

    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    records = run_experiments(
        ALL_EXPERIMENTS, selected, jobs=jobs, cache=cache, refresh=refresh
    )
    if verbose:
        for exp_id, record in records.items():
            _print_result(
                exp_id,
                record.result,
                record.duration_s,
                from_cache=record.from_cache,
            )
    return {exp_id: r.result for exp_id, r in records.items()}


def _print_result(
    exp_id: str,
    result: ExperimentResult,
    elapsed_s: float,
    *,
    from_cache: bool = False,
) -> None:
    status = "PASS" if result.all_ok() else "FAIL"
    timing = "cached" if from_cache else f"{elapsed_s:.1f}s"
    print(f"== {exp_id} ({result.artifact}) — {status} "
          f"[{timing}] " + "=" * 20)
    print(result.report())
    print()


def experiments_markdown(results: dict[str, ExperimentResult]) -> str:
    """Render the results as the EXPERIMENTS.md body."""
    lines = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Generated by `python -m repro.experiments.runner --markdown`.",
        "Each line records a published value (or claim) and what this",
        "reproduction measures for it; `ok` means within the stated",
        "tolerance (see each experiment module for tolerances and for",
        "what was calibrated vs. predicted).",
        "",
    ]
    for exp_id, result in results.items():
        status = "PASS" if result.all_ok() else "FAIL"
        lines.append(f"## {exp_id} — {result.artifact} [{status}]")
        lines.append("")
        lines.append("```")
        lines.append(result.report())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def add_run_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared sweep options (used here and by ``repro run``)."""
    parser.add_argument(
        "ids", nargs="*", help="experiment ids to run (default: all)"
    )
    parser.add_argument(
        "--markdown", metavar="PATH",
        help="write the EXPERIMENTS.md body to PATH",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-experiment output"
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=None, metavar="N",
        help="run the sweep on N worker processes (longest experiments "
             "first; results are identical to a serial run)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="replay unchanged experiments from the content-addressed "
             "result cache and store fresh results into it",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="PATH",
        help="cache location (default: %(default)s)",
    )
    parser.add_argument(
        "--refresh", action="store_true",
        help="with --cache: re-run everything and overwrite the entries",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Run the paper-reproduction experiments."
    )
    add_run_arguments(parser)
    args = parser.parse_args(argv)

    cache = None
    if args.cache:
        from repro.parallel.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    try:
        results = run_all(
            ids=args.ids or None,
            verbose=not args.quiet,
            jobs=args.jobs,
            cache=cache,
            refresh=args.refresh,
        )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(experiments_markdown(results))
        print(f"wrote {args.markdown}")
    failed = [i for i, r in results.items() if not r.all_ok()]
    if failed:
        print(f"FAILED experiments: {failed}", file=sys.stderr)
        return 1
    print(f"all {len(results)} experiments within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
