"""Extension X6 — subsystem coverage: why Level 1 overstates efficiency.

Section 2.2 cites Scogland et al. [19]: "the Level 1 and Level 2
methodologies can significantly overstate a system's energy
efficiency", and notes the levels differ in more ways than subset size.
One of those ways is Table 1's aspect 3: Level 1 measures compute nodes
*only*, while the machine cannot run without its interconnect and
infrastructure.  With the simulator, the subsystem effect isolates
cleanly: identical machine, identical (full-core) window, identical
subset — only the subsystem rule differs per level.

Asserted structure:

1. Level 1's reported power misses the shared draw entirely →
   efficiency overstated by ≈ the shared fraction.
2. Level 2's estimated shared power narrows the gap to the estimate's
   systematic error.
3. Level 3, metering upstream of everything, is unbiased.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.cluster.components import CpuModel, DramModel, FanModel, GpuModel
from repro.cluster.node import NodeConfig
from repro.cluster.shared import SharedInfrastructure
from repro.cluster.system import SystemModel
from repro.core.methodology import Level
from repro.core.windows import full_core_window
from repro.experiments.base import Comparison, ExperimentResult
from repro.metering.campaign import MeasurementCampaign
from repro.metering.meter import MeterSpec
from repro.traces.synth import simulate_run
from repro.workloads.hpl import HplWorkload

__all__ = ["SubsystemsResult", "run"]


@dataclass
class SubsystemsResult(ExperimentResult):
    """Per-level efficiency overstatement from subsystem coverage."""

    shared_fraction: float
    estimation_error: float
    overstatement: dict  # level name -> relative efficiency overstatement

    experiment_id = "X6"
    artifact = "Section 2.2 level-overstatement finding (extension)"

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                label="L1 efficiency overstatement ~ shared fraction",
                paper=self.shared_fraction / (1.0 - self.shared_fraction),
                measured=self.overstatement["L1"],
                rel_tol=0.15,
            ),
            Comparison(
                label="L2 overstatement ~ |estimation error| x share",
                paper=abs(self.estimation_error) * self.shared_fraction,
                measured=abs(self.overstatement["L2"]),
                rel_tol=0.6,
            ),
            Comparison(
                label="L3 unbiased",
                paper=0.0,
                measured=abs(self.overstatement["L3"]),
                abs_tol=0.01,
            ),
            Comparison(
                label="overstatement strictly decreases with level",
                paper=1.0,
                measured=float(
                    self.overstatement["L1"]
                    > abs(self.overstatement["L2"])
                    > abs(self.overstatement["L3"]) - 1e-12
                ),
                rel_tol=0.0,
            ),
        ]

    def report(self) -> str:
        table = Table(
            ["level", "efficiency overstatement vs truth"],
            title=f"X6 — subsystem coverage by level "
                  f"(shared = {self.shared_fraction:.0%} of machine power, "
                  f"L2 estimate error {self.estimation_error:+.0%})",
        )
        for name, v in self.overstatement.items():
            table.add_row([name, f"{v:+.2%}"])
        lines = [table.render(), ""]
        lines.append(
            "same machine, same full-core window, same nodes — the gap "
            "is purely Table 1's aspect-3 subsystem rule."
        )
        lines.append("")
        lines += self.summary_lines()
        return "\n".join(lines)


def run(
    *,
    shared_fraction: float = 0.12,
    estimation_error: float = -0.25,
    n_nodes: int = 128,
    core_s: float = 1800.0,
) -> SubsystemsResult:
    """Run the per-level subsystem study.

    Parameters
    ----------
    shared_fraction:
        Shared (interconnect + infrastructure) share of total machine
        power at load.
    estimation_error:
        The Level 2 site's systematic error estimating the shared
        draw (negative: switches' datasheets understate).
    """
    if not (0.0 < shared_fraction < 0.5):
        raise ValueError("shared_fraction must be in (0, 0.5)")
    config = NodeConfig(
        cpu=CpuModel(idle_watts=18.0, peak_watts=115.0),
        n_cpus=1,
        gpu=GpuModel(idle_watts=20.0, peak_watts=180.0),
        n_gpus=1,
        dram=DramModel.for_capacity(32.0),
        fan=FanModel(max_watts=0.0),
        other_watts=20.0,
    )
    # Size the shared draw to the requested fraction of total power at
    # a representative load point.
    probe = SystemModel("probe", n_nodes, config, seed=61)
    compute_w = probe.system_power(0.9)
    shared_w = compute_w * shared_fraction / (1.0 - shared_fraction)
    shared = SharedInfrastructure(
        interconnect_watts=0.8 * shared_w,
        infrastructure_watts=0.2 * shared_w,
        estimation_error=estimation_error,
    )
    system = SystemModel("subsys-study", n_nodes, config, shared=shared,
                         seed=61)
    workload = HplWorkload.gpu_in_core(core_s, setup_s=60.0, teardown_s=30.0)
    run_sim = simulate_run(system, workload, dt=1.0, noise_cv=0.0)
    truth = run_sim.true_core_average()

    campaign = MeasurementCampaign(run_sim, meter_spec=MeterSpec.ideal())
    window = full_core_window()
    indices = np.arange(n_nodes)
    results = {
        "L1": campaign.level1(window=window, node_indices=indices),
        "L2": campaign.level2(node_indices=indices),
        "L3": campaign.level3(),
    }
    # Efficiency ∝ 1/power: overstatement = truth/reported − 1.
    overstatement = {
        name: truth / r.reported_watts - 1.0 for name, r in results.items()
    }
    return SubsystemsResult(
        shared_fraction=shared_fraction,
        estimation_error=estimation_error,
        overstatement=overstatement,
    )
