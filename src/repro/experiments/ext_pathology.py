"""Extension X-PATH — correlated meter pathologies, audited end to end.

X-FAULT certified the recovery pipeline against *independent* faults;
this experiment runs the correlated pathologies the related literature
says real fleets actually have — duty-cycled aliasing meters,
input-entropy-dependent power, per-accelerator efficiency spread
(:mod:`repro.faults.pathology`) — and audits four claims per
pathology × intensity cell:

* **honest labels** — the injector's ledger reconciles exactly (bias
  included, to float summation order) and both degraded estimates sit
  inside the *correlation-widened* QualityReport bounds, while the
  pre-pathology independence-assuming bounds are demonstrably violated.
* **detection** — the stream-level correlated-excursion detectors
  (:mod:`repro.faults.detectors`) flag exactly the pathology present
  and stay quiet on the clean run.
* **gaming** — what the paper's Level 1–3 reporting rules let a
  strategic submitter shave off the reported per-node power, as a
  *delta* against the same adversary on the clean stream: how much
  extra shaving the meter pathology itself donates.
* **sampling cost** — the Eq. 1–5 / Table 5 required-sample multiplier
  at the delivered node CV, and whether extra sampling can restore the
  λ = 1% verdict at all (a correlated bias above λ cannot be sampled
  away).

Plus the identity contract (an all-off pathology is bit-identical to
the clean path), a *stacked* run (all three pathologies + dropout +
spikes in one plan, still exactly reconciled), and bit-identical
replay, which is what admits X-PATH to the golden contract and the
parallel runner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.cluster.registry import get_trace_setup
from repro.experiments.base import Comparison, ExperimentResult
from repro.faults.models import FaultPlan, inject_run
from repro.faults.pathology import (
    AliasingMeter,
    DeviceSpreadModel,
    EntropyPowerModel,
    PathologyOutcome,
    PathologyScenario,
    run_pathology,
    standard_scenarios,
)
from repro.traces.synth import simulate_run
from repro.workloads.hpl import HplWorkload

__all__ = ["PathologyResult", "run"]

#: Pathology kinds in the grid, each run at both intensities.
_KINDS = ("aliasing", "entropy", "spread")

#: Which detector verdict is expected to fire for each pathology kind.
_EXPECTED_DETECTOR = {
    "aliasing": "aliasing",
    "entropy": "entropy",
    "spread": "offset",
}


def _detector_flag(outcome: PathologyOutcome, which: str) -> bool:
    verdict = outcome.detection
    if verdict is None:
        return False
    return bool(getattr(verdict, which).suspected)


@dataclass
class PathologyResult(ExperimentResult):
    """Grid of correlated-pathology audits plus the clean baseline."""

    #: cell name (``kind-intensity``) → outcome, in grid order.
    cells: dict[str, PathologyOutcome]
    #: Pathology-free baseline (gaming/cost reference, detector control).
    clean: PathologyOutcome
    #: All three pathologies + dropout + spikes in one stacked plan.
    stacked: PathologyOutcome
    #: All-off pathology scenario replays the clean path bit-for-bit.
    identity_matches_clean: bool
    #: Whether two full grid-cell executions agreed bit-for-bit.
    deterministic: bool

    experiment_id = "X-PATH"
    artifact = "correlated meter-pathology audit (extension)"

    def gaming_delta_w(self, name: str, level: int) -> float:
        """Extra watts/node shaved at ``level`` vs the clean adversary."""
        cell = self.cells[name]
        if cell.gaming is None or self.clean.gaming is None:
            return float("nan")
        return cell.gaming.shave_w(level) - self.clean.gaming.shave_w(level)

    def comparisons(self) -> list[Comparison]:
        out = []
        for name, cell in self.cells.items():
            kind = name.split("-")[0]
            out.append(
                Comparison(
                    label=f"[{name}] ledger reconciliation exact",
                    paper=1.0,
                    measured=float(cell.reconciled),
                    abs_tol=0.0,
                )
            )
            out.append(
                Comparison(
                    label=f"[{name}] fleet-mean error within widened bound",
                    paper=cell.report.error_bound_fleet_mean(),
                    measured=cell.rel_err_fleet_mean,
                    mode="at_most",
                    abs_tol=1e-9,
                )
            )
            out.append(
                Comparison(
                    label=f"[{name}] sigma/mu error within widened bound",
                    paper=cell.report.error_bound_node_cv(),
                    measured=cell.rel_err_node_cv,
                    mode="at_most",
                    abs_tol=1e-9,
                )
            )
            out.append(
                Comparison(
                    label=f"[{name}] independence-only bound violated",
                    paper=1.0,
                    measured=float(cell.independent_bound_mean_violated),
                    abs_tol=0.0,
                )
            )
            out.append(
                Comparison(
                    label=f"[{name}] matching detector fires",
                    paper=1.0,
                    measured=float(
                        _detector_flag(cell, _EXPECTED_DETECTOR[kind])
                    ),
                    abs_tol=0.0,
                )
            )
            out.append(
                Comparison(
                    label=f"[{name}] gaming delta emitted (finite)",
                    paper=1.0,
                    measured=float(
                        all(
                            np.isfinite(self.gaming_delta_w(name, level))
                            for level in (1, 2, 3)
                        )
                    ),
                    abs_tol=0.0,
                )
            )
            out.append(
                Comparison(
                    label=f"[{name}] required-sample multiplier >= 1",
                    paper=1.0,
                    measured=(
                        float("nan")
                        if cell.cost is None
                        else cell.cost.multiplier
                    ),
                    mode="at_least",
                )
            )
        out.append(
            Comparison(
                label="clean: detectors stay quiet",
                paper=1.0,
                measured=float(
                    self.clean.detection is not None
                    and not self.clean.detection.any_suspected
                ),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="clean: report still carries independence note",
                paper=1.0,
                measured=float(
                    self.clean.report.INDEPENDENCE_NOTE
                    in self.clean.report.stated_notes
                ),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="clean: L1 gaming shave >= L2 >= L3",
                paper=1.0,
                measured=float(
                    self.clean.gaming is not None
                    and self.clean.gaming.shave_w(1)
                    >= self.clean.gaming.shave_w(2)
                    >= self.clean.gaming.shave_w(3)
                ),
                abs_tol=0.0,
            )
        )
        spread_high = self.cells["spread-high"]
        out.append(
            Comparison(
                label="spread-high: bias not restorable by extra sampling",
                paper=0.0,
                measured=float(
                    spread_high.cost is not None
                    and spread_high.cost.restorable
                ),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="spread-high: sample multiplier exceeds 2x Table 5",
                paper=2.0,
                measured=(
                    0.0
                    if spread_high.cost is None
                    else spread_high.cost.multiplier
                ),
                mode="at_least",
            )
        )
        out.append(
            Comparison(
                label="stacked: pathology + dropout + spikes reconcile",
                paper=1.0,
                measured=float(self.stacked.reconciled),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="stacked: errors within widened bounds",
                paper=1.0,
                measured=float(
                    self.stacked.mean_within_bound
                    and self.stacked.cv_within_bound
                ),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="identity: all-off pathology is bit-identical",
                paper=1.0,
                measured=float(self.identity_matches_clean),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="replayed pathology grid is bit-identical",
                paper=1.0,
                measured=float(self.deterministic),
                abs_tol=0.0,
            )
        )
        return out

    def report(self) -> str:
        lines = [
            "X-PATH — correlated meter pathologies: detection, gaming, "
            "sampling cost",
            "",
        ]
        table = Table(
            [
                "cell",
                "mean err",
                "widened bound",
                "indep. bound",
                "detector",
                "dL1 W",
                "dL2 W",
                "dL3 W",
                "n mult",
                "restorable",
            ],
            title="pathology grid (errors vs clean truth; gaming deltas "
            "vs clean adversary, W/node)",
        )
        for name, cell in self.cells.items():
            kind = name.split("-")[0]
            fired = _detector_flag(cell, _EXPECTED_DETECTOR[kind])
            table.add_row(
                [
                    name,
                    f"{cell.rel_err_fleet_mean:.3%}",
                    f"{cell.report.error_bound_fleet_mean():.3%}",
                    "violated"
                    if cell.independent_bound_mean_violated
                    else "held",
                    _EXPECTED_DETECTOR[kind] if fired else "MISSED",
                    f"{self.gaming_delta_w(name, 1):+.2f}",
                    f"{self.gaming_delta_w(name, 2):+.2f}",
                    f"{self.gaming_delta_w(name, 3):+.2f}",
                    "-"
                    if cell.cost is None
                    else f"x{cell.cost.multiplier:.2f}",
                    "-"
                    if cell.cost is None
                    else ("yes" if cell.cost.restorable else "NO"),
                ]
            )
        lines.append(table.render())
        lines.append("")
        if self.clean.gaming is not None:
            gm = self.clean.gaming
            lines.append(
                "clean adversary baseline: "
                + ", ".join(
                    f"L{level} shave {gm.shave_w(level):+.2f} W/node "
                    f"({gm.subset_nodes[level]} nodes)"
                    for level in sorted(gm.reported_w)
                )
            )
        lines.append(
            "stacked (spread+entropy+aliasing+dropout+spikes): "
            f"reconciled={self.stacked.reconciled}, "
            f"mean err {self.stacked.rel_err_fleet_mean:.3%} <= "
            f"bound {self.stacked.report.error_bound_fleet_mean():.3%}"
        )
        lines.append(
            f"identity (all-off == clean): {self.identity_matches_clean}"
        )
        lines.append(f"bit-identical replay: {self.deterministic}")
        lines.append("")
        lines.extend(self.cells["aliasing-high"].lines())
        return "\n".join(lines)


def run(
    *,
    system_name: str = "l-csc",
    dt_s: float = 2.0,
    core_s: float = 900.0,
    seed: int = 2025,
    n_nodes: int = 24,
) -> PathologyResult:
    """Audit the correlated-pathology subsystem end to end.

    Parameters
    ----------
    system_name:
        Trace-registry system whose node model is degraded.
    dt_s / core_s:
        Sample spacing and core-phase length of the simulated GPU HPL
        run (in-core ρ, pronounced tail-off — a trending trace, so the
        duty-cycled meter produces real beat bias).
    seed:
        Root seed for the run, every pathology plan and the detectors.
    n_nodes:
        Fleet slice size (keeps the 6-cell grid tractable).
    """
    system, _ = get_trace_setup(system_name)
    workload = HplWorkload.gpu_in_core(core_s=core_s)
    sim = simulate_run(system, workload, dt=dt_s, seed=seed)
    nodes = np.arange(n_nodes)

    def one(scenario: PathologyScenario) -> PathologyOutcome:
        return run_pathology(sim, scenario, seed=seed, node_indices=nodes)

    cells: dict[str, PathologyOutcome] = {}
    for intensity in ("low", "high"):
        for scenario in standard_scenarios(_KINDS, intensity=intensity):
            cells[scenario.name] = one(scenario)

    clean = one(PathologyScenario(name="clean"))

    # Identity contract: the *models themselves* at their identity
    # settings (duty 1.0, zero amplitude, zero spread) must pass the
    # matrix through bit-for-bit — not merely be skipped by the
    # scenario builder.
    t0_s, t1_s = sim.core_window
    times, watts = sim.node_power_matrix(t0_s, t1_s, nodes)
    identity_plan = FaultPlan.canonical(
        [
            AliasingMeter(period_ticks=10, duty_frac=1.0),
            EntropyPowerModel(amplitude_w=0.0),
            DeviceSpreadModel(spread_frac=0.0),
        ],
        seed,
    )
    identity = inject_run(sim, identity_plan, node_indices=nodes)
    identity_matches_clean = bool(
        np.array_equal(identity.watts, watts)
        and np.array_equal(identity.times, times)
        and not np.abs(identity.bias_w).any()
        and not identity.ledger.any_correlated
    )

    stacked = one(
        PathologyScenario(
            name="stacked",
            aliasing_period_ticks=10,
            aliasing_duty_frac=0.6,
            entropy_amplitude_w=20.0,
            entropy_segment_ticks=30,
            spread_frac=0.02,
            dropout_rate=0.02,
            spike_rate=0.005,
        )
    )

    replay = one(standard_scenarios(("aliasing",), intensity="high")[0])
    deterministic = replay.to_dict() == cells["aliasing-high"].to_dict()

    return PathologyResult(
        cells=cells,
        clean=clean,
        stacked=stacked,
        identity_matches_clean=identity_matches_clean,
        deterministic=deterministic,
    )
