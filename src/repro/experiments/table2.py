"""Experiment T2 — paper Table 2: segment averages of four HPL runs.

Regenerates, for Colosse, Sequoia, Piz Daint and L-CSC: the HPL
runtime, the core-phase average power, and the first-20% / last-20%
segment averages, from the calibrated cluster + workload simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.cluster.registry import PAPER_TABLE2, TRACE_SYSTEMS, get_trace_setup
from repro.experiments.base import Comparison, ExperimentResult
from repro.traces.ops import segment_average
from repro.traces.synth import simulate_run
from repro.units import seconds_to_hours, watts_to_kilowatts

__all__ = ["Table2Result", "Table2Row", "run"]


@dataclass(frozen=True)
class Table2Row:
    """One regenerated Table 2 row (power in kW, runtime in seconds)."""

    system: str
    runtime_s: float
    core_kw: float
    first20_kw: float
    last20_kw: float

    @property
    def first_vs_last_spread(self) -> float:
        """(first20 − last20)/core — the timing-variation headline."""
        return (self.first20_kw - self.last20_kw) / self.core_kw


@dataclass
class Table2Result(ExperimentResult):
    """Regenerated Table 2 with paper comparisons."""

    rows: list

    experiment_id = "T2"
    artifact = "Table 2"

    def comparisons(self) -> list[Comparison]:
        out = []
        for row in self.rows:
            paper = PAPER_TABLE2[row.system]
            for field_name, paper_val, measured in (
                ("core", paper.core_kw, row.core_kw),
                ("first20", paper.first20_kw, row.first20_kw),
                ("last20", paper.last20_kw, row.last20_kw),
            ):
                out.append(
                    Comparison(
                        label=f"{row.system} {field_name} power (kW)",
                        paper=paper_val,
                        measured=measured,
                        rel_tol=0.01,
                    )
                )
        return out

    def report(self) -> str:
        table = Table(
            ["system", "HPL runtime (h)", "core phase (kW)",
             "first 20% (kW)", "last 20% (kW)", "first-last spread"],
            title="Table 2 — runtime and average power per segment "
                  "(measured on simulated runs)",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.system,
                    seconds_to_hours(row.runtime_s),
                    row.core_kw,
                    row.first20_kw,
                    row.last20_kw,
                    f"{row.first_vs_last_spread:+.2%}",
                ]
            )
        lines = [table.render(), ""]
        lines += self.summary_lines()
        return "\n".join(lines)


def run(*, dt: float | None = None, seed: int | None = None) -> Table2Result:
    """Regenerate Table 2.

    Parameters
    ----------
    dt:
        Trace sample spacing; defaults to 1 s for runs up to two hours
        and proportionally coarser for the long CPU runs (the table's
        segment averages are insensitive to spacing below ~0.1% of the
        runtime).
    seed:
        Run-noise seed override (defaults to each system's fixed seed).
    """
    rows = []
    for name in TRACE_SYSTEMS:
        system, workload = get_trace_setup(name)
        run_dt = dt if dt is not None else max(1.0, workload.phases.total_s / 7200)
        sim = simulate_run(system, workload, dt=run_dt, seed=seed)
        core = sim.core_trace()
        rows.append(
            Table2Row(
                system=name,
                runtime_s=workload.core_runtime_s,
                core_kw=watts_to_kilowatts(core.mean_power()),
                first20_kw=watts_to_kilowatts(segment_average(core, 0.0, 0.2)),
                last20_kw=watts_to_kilowatts(segment_average(core, 0.8, 1.0)),
            )
        )
    return Table2Result(rows=rows)
