"""Experiment Z1 — Section 4.2's t-vs-z approximation error.

"In producing recommended sample sizes, we propose to approximate the
t-quantile with the normal quantile.  This approximation causes slight
under-coverage at small values of n.  For example, for samples of size
n = 15, approximating the t quantile with a normal quantile will
produce 95% confidence intervals which are roughly 9% too narrow."

Two checks: the analytic width ratio (1 − z/t at 14 dof ≈ 8.6%), and
the simulated coverage consequence (z-intervals at n = 15 cover ~93%
instead of 95%, while t-intervals stay calibrated).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.cluster.registry import get_system, workload_utilisation
from repro.core.confidence import t_quantile, z_quantile
from repro.core.coverage import coverage_study
from repro.experiments.base import Comparison, ExperimentResult
from repro.rng import stream

__all__ = ["TvsZResult", "run"]


@dataclass
class TvsZResult(ExperimentResult):
    """Width-ratio and coverage comparison of z vs t intervals."""

    n: int
    confidence: float
    width_deficit: float  # 1 − z/t
    coverage_t: float
    coverage_z: float
    deficit_by_n: dict

    experiment_id = "Z1"
    artifact = "Section 4.2 t-vs-z discussion"

    def comparisons(self) -> list[Comparison]:
        return [
            Comparison(
                label=f"z-interval width deficit at n={self.n} "
                      "(paper: roughly 9%)",
                paper=0.09,
                measured=self.width_deficit,
                rel_tol=0.10,
            ),
            Comparison(
                label=f"t-interval coverage at n={self.n}",
                paper=self.confidence,
                measured=self.coverage_t,
                abs_tol=0.01,
                rel_tol=0.0,
            ),
            Comparison(
                label=f"z-interval under-coverage at n={self.n}",
                paper=self.confidence - 0.01,
                measured=self.coverage_z,
                mode="at_most",
            ),
        ]

    def report(self) -> str:
        table = Table(
            ["n", "1 - z/t (width deficit)"],
            title=f"t vs z quantile approximation at {self.confidence:.0%} "
                  "confidence",
        )
        for n, d in sorted(self.deficit_by_n.items()):
            table.add_row([n, f"{d:.2%}"])
        lines = [table.render(), ""]
        lines.append(
            f"simulated coverage at n={self.n}: t={self.coverage_t:.4f}, "
            f"z={self.coverage_z:.4f} (nominal {self.confidence})"
        )
        lines.append("")
        lines += self.summary_lines()
        return "\n".join(lines)


def run(
    *,
    n: int = 15,
    confidence: float = 0.95,
    n_sims: int = 100_000,
    system: str = "lrz",
    seed: int = 0,
) -> TvsZResult:
    """Quantify the z-for-t approximation at small n."""
    deficit_by_n = {
        k: 1.0 - z_quantile(confidence) / t_quantile(confidence, k - 1)
        for k in (3, 5, 10, 15, 20, 30, 50)
    }

    model = get_system(system)
    sample = model.node_sample(workload_utilisation(system))
    rng = stream(seed, "t-vs-z-pilot")
    pilot = sample.random_subset(min(516, len(sample)), rng)

    cov_t = coverage_study(
        pilot.watts, population=model.n_nodes, sample_sizes=(n,),
        confidences=(confidence,), n_sims=n_sims, method="t",
        rng=stream(seed, "t-vs-z-t"), system=system,
    ).coverage[0, 0]
    cov_z = coverage_study(
        pilot.watts, population=model.n_nodes, sample_sizes=(n,),
        confidences=(confidence,), n_sims=n_sims, method="z",
        rng=stream(seed, "t-vs-z-z"), system=system,
    ).coverage[0, 0]

    return TvsZResult(
        n=n,
        confidence=confidence,
        width_deficit=deficit_by_n[n],
        coverage_t=float(cov_t),
        coverage_z=float(cov_z),
        deficit_by_n=deficit_by_n,
    )
