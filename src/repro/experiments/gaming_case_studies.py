"""Experiment G1 — Section 3's window-gaming case studies.

Two published incidents of (legal) measurement-window selection under
the pre-2015 Level 1 timing rule:

* **TSUBAME-KFC** reduced its reported power by **10.9%** for the
  Nov 2013 Green500 "by selecting an 'optimal' time interval";
* **L-CSC** could have submitted a **23.9%** better power efficiency in
  Nov 2014 "by tweaking the time interval".

The L-CSC number is checked against the Table 2-calibrated L-CSC trace
with *no further tuning* — it is a genuine out-of-sample prediction of
the trace model.  TSUBAME-KFC's trace is not otherwise constrained by
the paper, so its tail parameter is fitted to the published 10.9%
(recorded as a substitution in DESIGN.md); the experiment then verifies
the full gaming pipeline recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.optimize import brentq

from repro.analysis.gaming import WindowGamingResult, optimal_window_gain
from repro.analysis.report import Table
from repro.cluster.components import CpuModel, DramModel, FanModel, GpuModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.registry import get_trace_setup
from repro.experiments.base import Comparison, ExperimentResult
from repro.traces.synth import simulate_run
from repro.workloads.hpl import HplWorkload

__all__ = ["GamingResult", "GamingCase", "run"]

#: Published numbers: reported-power reduction for TSUBAME-KFC and
#: efficiency improvement for L-CSC.
TSUBAME_POWER_REDUCTION = 0.109
LCSC_EFFICIENCY_GAIN = 0.239


@dataclass(frozen=True)
class GamingCase:
    """One case study's gaming outcome."""

    system: str
    result: WindowGamingResult
    paper_value: float
    metric: str  # "power_reduction" or "efficiency_gain"

    @property
    def measured_value(self) -> float:
        """The measured analogue of the paper's number."""
        if self.metric == "power_reduction":
            return -self.result.gaming_gain
        return self.result.efficiency_inflation


@dataclass
class GamingResult(ExperimentResult):
    """Both case studies plus the overall timing-spread claim."""

    cases: list

    experiment_id = "G1"
    artifact = "Section 3 gaming numbers"

    def comparisons(self) -> list[Comparison]:
        out = []
        for case in self.cases:
            # The TSUBAME trace was fitted to its target (tight check);
            # L-CSC is out-of-sample (looser).
            tol = 0.05 if case.system == "tsubame-kfc" else 0.15
            out.append(
                Comparison(
                    label=f"{case.system} {case.metric.replace('_', ' ')}",
                    paper=case.paper_value,
                    measured=case.measured_value,
                    rel_tol=tol,
                )
            )
        return out

    def report(self) -> str:
        table = Table(
            ["system", "metric", "paper", "measured", "best window",
             "window spread"],
            title="Section 3 — optimal-interval gaming under the pre-2015 "
                  "Level 1 timing rule",
        )
        for case in self.cases:
            table.add_row(
                [
                    case.system,
                    case.metric.replace("_", " "),
                    f"{case.paper_value:.1%}",
                    f"{case.measured_value:.1%}",
                    str(case.result.best_window),
                    f"{case.result.spread:.1%}",
                ]
            )
        lines = [table.render(), ""]
        lines += self.summary_lines()
        return "\n".join(lines)


def _tsubame_system() -> SystemModel:
    """A TSUBAME-KFC-flavoured system: 40 nodes, 4 K20x per node,
    oil-immersion cooled (no fans in the IT power)."""
    config = NodeConfig(
        cpu=CpuModel(idle_watts=15.0, peak_watts=95.0, nominal_mhz=2100.0),
        n_cpus=2,
        gpu=GpuModel(idle_watts=16.0, peak_watts=170.0, nominal_mhz=732.0),
        n_gpus=4,
        dram=DramModel.for_capacity(64.0),
        fan=FanModel(max_watts=0.0),
        other_watts=25.0,
    )
    return SystemModel("tsubame-kfc", 40, config, seed=2013)


def _fit_tsubame_rho(target_reduction: float, core_s: float) -> float:
    """Fit the HPL tail parameter to the published 10.9% reduction."""

    def err(rho: float) -> float:
        wl = HplWorkload(core_s, rho=rho, u_min=0.05, name="HPL@tsubame")
        sim = simulate_run(_tsubame_system(), wl, dt=1.0, noise_cv=0.0)
        res = optimal_window_gain(sim.core_trace())
        return (-res.gaming_gain) - target_reduction

    return float(brentq(err, 0.02, 2.0, xtol=1e-4))


def run(*, core_s_tsubame: float = 3000.0) -> GamingResult:
    """Run both gaming case studies.

    ``core_s_tsubame``: TSUBAME-KFC's HPL core-phase length (its runs
    were short; the paper notes "some runs have been as short as five
    minutes").
    """
    cases = []

    rho = _fit_tsubame_rho(TSUBAME_POWER_REDUCTION, core_s_tsubame)
    wl = HplWorkload(core_s_tsubame, rho=rho, u_min=0.05, name="HPL@tsubame")
    sim = simulate_run(_tsubame_system(), wl, dt=1.0, noise_cv=0.0)
    cases.append(
        GamingCase(
            system="tsubame-kfc",
            result=optimal_window_gain(sim.core_trace()),
            paper_value=TSUBAME_POWER_REDUCTION,
            metric="power_reduction",
        )
    )

    lcsc_system, lcsc_wl = get_trace_setup("l-csc")
    lcsc_sim = simulate_run(lcsc_system, lcsc_wl, dt=1.0)
    # The published 23.9% exploited a 20%-of-core window placed in the
    # run's deep tail — the "20% of the core phase" reading of the rule
    # without the middle-80% guard (which the pre-2015 rules did not
    # enforce in practice; both case-study systems placed end windows).
    cases.append(
        GamingCase(
            system="l-csc",
            result=optimal_window_gain(
                lcsc_sim.core_trace(),
                window_fraction=0.20,
                within=(0.0, 1.0),
            ),
            paper_value=LCSC_EFFICIENCY_GAIN,
            metric="efficiency_gain",
        )
    )
    return GamingResult(cases=cases)
