"""Extension X4 — instrument quality sensitivity (Table 1 aspects 1a/4).

The methodology regulates sampling granularity and metering point but
says little about instrument calibration.  This experiment sweeps meter
quality on a Level-3-style full-machine, full-core measurement — where
*all* methodological error is gone — to show the error floor the
instrument alone sets, and compares it with the datasheet-reconstruction
bias a downstream metering point introduces at Level 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.cluster.registry import get_trace_setup
from repro.core.windows import full_core_window
from repro.experiments.base import Comparison, ExperimentResult
from repro.metering.campaign import MeasurementCampaign
from repro.metering.hierarchy import TYPICAL_DELIVERY
from repro.metering.meter import MeterSpec
from repro.traces.synth import simulate_run

__all__ = ["MeterQualityResult", "MeterQualityRow", "run"]


@dataclass(frozen=True)
class MeterQualityRow:
    """Error statistics for one instrument class."""

    label: str
    gain_cv: float
    abs_error_p95: float


@dataclass
class MeterQualityResult(ExperimentResult):
    """Instrument sweep plus the metering-point bias."""

    rows: list
    datasheet_bias: float

    experiment_id = "X4"
    artifact = "Table 1 aspects 1a/4 sensitivity (extension)"

    def comparisons(self) -> list[Comparison]:
        by_label = {r.label: r for r in self.rows}
        return [
            Comparison(
                label="ideal meter: Level 3 is exact",
                paper=1e-6,
                measured=by_label["ideal"].abs_error_p95,
                mode="at_most",
            ),
            Comparison(
                label="1.5% meter: error ~ calibration spread",
                # p95 of |N(0, σ)| is 1.96σ; with few meters the sample
                # quantile approaches the sample max, so bound at 3.2σ.
                paper=3.2 * 0.015,
                measured=by_label["commodity (1.5%)"].abs_error_p95,
                mode="at_most",
            ),
            Comparison(
                label="datasheet reconstruction bias ~3% (optimistic PSU)",
                paper=0.032,
                measured=abs(self.datasheet_bias),
                rel_tol=0.4,
            ),
        ]

    def report(self) -> str:
        table = Table(
            ["instrument", "gain cv", "p95 |error| (Level 3)"],
            title="X4 — instrument quality vs measurement error "
                  "(full machine, full core phase)",
        )
        for r in self.rows:
            table.add_row(
                [r.label, f"{r.gain_cv:.2%}", f"{r.abs_error_p95:.3%}"]
            )
        lines = [table.render(), ""]
        lines.append(
            f"Level 1 datasheet reconstruction at the node PSU: "
            f"{self.datasheet_bias:+.2%} systematic bias "
            "(optimistic 80 PLUS numbers)"
        )
        lines.append("")
        lines += self.summary_lines()
        return "\n".join(lines)


def run(*, n_meters: int = 40, system: str = "l-csc") -> MeterQualityResult:
    """Sweep instrument classes on a Level 3 measurement."""
    model, workload = get_trace_setup(system)
    run_sim = simulate_run(model, workload, dt=1.0)

    classes = [
        ("ideal", MeterSpec.ideal()),
        ("vetted (0.2%)", MeterSpec.level3_grade()),
        ("typical (1.0%)", MeterSpec(gain_error_cv=0.01, integrating=True)),
        ("commodity (1.5%)", MeterSpec(gain_error_cv=0.015, integrating=True)),
    ]
    rows = []
    for label, spec in classes:
        errors = []
        for seed in range(n_meters):
            campaign = MeasurementCampaign(run_sim, meter_spec=spec,
                                           seed=1000 + seed)
            errors.append(abs(campaign.level3().relative_error))
        rows.append(
            MeterQualityRow(
                label=label,
                gain_cv=spec.gain_error_cv,
                abs_error_p95=float(np.quantile(errors, 0.95)),
            )
        )

    # Metering-point bias: an ideal meter at the node PSU, reconstructed
    # with datasheet efficiencies (Level 1's aspect-4 allowance).
    campaign = MeasurementCampaign(
        run_sim,
        meter_spec=MeterSpec.ideal(),
        delivery=TYPICAL_DELIVERY,
        meter_depth=len(TYPICAL_DELIVERY.stages),
    )
    res = campaign.level1(
        node_indices=np.arange(model.n_nodes), window=full_core_window()
    )
    # The trace is IT-side power; the honest upstream value divides by
    # the true chain efficiency, the reported one by the claimed.
    honest = res.reading.average_watts * (
        TYPICAL_DELIVERY.efficiency_through(claimed=True)
        / TYPICAL_DELIVERY.efficiency_through()
    )
    bias = res.reading.average_watts / honest - 1.0
    return MeterQualityResult(rows=rows, datasheet_bias=float(bias))
