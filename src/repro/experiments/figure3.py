"""Experiment F3 — paper Figure 3: confidence-interval coverage.

Runs the bootstrap calibration study on a 516-node pilot drawn from the
(simulated) LRZ fleet — matching the paper's "pilot sample of 516 nodes
of the LRZ supercomputer" — with 80/95/99% intervals, a range of sample
sizes, and (by default) 100 000 replicates per point.

The paper's findings, asserted here:

* the procedure is well calibrated "even as low as n = 5";
* "for any sample of size n ≥ 3, violations of the normality assumption
  don't cause miscalibration of 80%, 95%, or 99% confidence intervals".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.cluster.registry import get_system, workload_utilisation
from repro.core.coverage import CoverageResult, coverage_study
from repro.experiments.base import Comparison, ExperimentResult
from repro.rng import stream

__all__ = ["Figure3Result", "run", "run_all_systems", "PILOT_SIZE"]

#: Figure 3's caption: a pilot of 516 LRZ nodes.
PILOT_SIZE = 516


@dataclass
class Figure3Result(ExperimentResult):
    """Coverage curves for one system's pilot."""

    coverage: CoverageResult
    pilot_size: int

    experiment_id = "F3"
    artifact = "Figure 3"

    #: Calibration tolerance: empirical coverage within ±1.5 points of
    #: nominal at every (level, n) — generous vs the Monte-Carlo SE but
    #: strict vs real miscalibration (z at n=5 misses 95% by ~5 points).
    TOLERANCE = 0.015

    def comparisons(self) -> list[Comparison]:
        out = []
        for i, conf in enumerate(self.coverage.confidences):
            for j, n in enumerate(self.coverage.sample_sizes):
                out.append(
                    Comparison(
                        label=f"coverage of {conf:.0%} CI at n={n}",
                        paper=conf,
                        measured=float(self.coverage.coverage[i, j]),
                        rel_tol=0.0,
                        abs_tol=self.TOLERANCE,
                    )
                )
        out.append(
            Comparison(
                label="max |empirical - nominal| across all points",
                paper=self.TOLERANCE,
                measured=self.coverage.max_miscalibration(),
                mode="at_most",
            )
        )
        return out

    def report(self) -> str:
        table = Table(
            ["n", *[f"{c:.0%} CI" for c in self.coverage.confidences]],
            title=(
                f"Figure 3 — CI coverage, {self.coverage.system} pilot of "
                f"{self.pilot_size} nodes, N={self.coverage.population}, "
                f"{self.coverage.n_sims} sims/point ({self.coverage.method}-"
                "intervals)"
            ),
        )
        for j, n in enumerate(self.coverage.sample_sizes):
            table.add_row(
                [n, *[f"{self.coverage.coverage[i, j]:.4f}"
                      for i in range(len(self.coverage.confidences))]]
            )
        lines = [table.render(), ""]
        from repro.analysis.ascii_plot import multi_line_plot
        import numpy as np

        ns = np.asarray(self.coverage.sample_sizes, dtype=float)
        curves = {
            f"{c:.0%} empirical": self.coverage.coverage[i]
            for i, c in enumerate(self.coverage.confidences)
        }
        lines.append(
            multi_line_plot(
                ns, curves, height=12,
                title="empirical coverage vs sample size n "
                      "(targets: the nominal levels)",
            )
        )
        lines.append("")
        lines += self.summary_lines()
        return "\n".join(lines)


def run_all_systems(
    *,
    n_sims: int = 40_000,
    sample_sizes=(5, 10, 20),
    seed: int = 0,
) -> dict:
    """The paper's closing Section 4.2 claim, across every fleet:
    "Simulation studies on the other systems reveal that the normality
    assumption is appropriate for all systems we have tested, with good
    calibration as low as n = 5 on all systems."

    Returns ``{system: CoverageResult}`` for all six node-variability
    fleets; callers assert
    :meth:`~repro.core.coverage.CoverageResult.max_miscalibration`.
    """
    from repro.cluster.registry import NODE_VARIABILITY_SYSTEMS

    out = {}
    for name in NODE_VARIABILITY_SYSTEMS:
        model = get_system(name)
        sample = model.node_sample(workload_utilisation(name))
        rng = stream(seed, f"figure3-all-{name}")
        pilot = sample.random_subset(
            min(PILOT_SIZE, len(sample)), rng
        )
        out[name] = coverage_study(
            pilot.watts,
            population=model.n_nodes,
            sample_sizes=sample_sizes,
            n_sims=n_sims,
            rng=rng,
            system=name,
        )
    return out


def run(
    *,
    system: str = "lrz",
    n_sims: int = 100_000,
    sample_sizes=(3, 5, 10, 15, 20, 30),
    pilot_size: int = PILOT_SIZE,
    method: str = "t",
    seed: int = 0,
    jobs: int | None = None,
) -> Figure3Result:
    """Run the Figure 3 study.

    Parameters
    ----------
    system:
        Which paper system's fleet to draw the pilot from.
    n_sims:
        Replicates per (n, level) point; the paper uses 100 000.
    pilot_size:
        Pilot sample size (516 per the figure caption).
    method:
        ``"t"`` (Eq. 1, the paper's procedure) or ``"z"``.
    jobs:
        Worker processes for the bootstrap replicate blocks; any value
        (including ``None``, serial) produces bit-identical coverage —
        see :mod:`repro.core.coverage`.
    """
    model = get_system(system)
    sample = model.node_sample(workload_utilisation(system))
    rng = stream(seed, f"figure3-{system}")
    pilot = sample.random_subset(min(pilot_size, len(sample)), rng)
    result = coverage_study(
        pilot.watts,
        population=model.n_nodes,
        sample_sizes=sample_sizes,
        n_sims=n_sims,
        method=method,
        rng=rng,
        system=system,
        jobs=jobs,
    )
    return Figure3Result(coverage=result, pilot_size=len(pilot))
