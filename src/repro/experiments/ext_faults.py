"""Extension X-FAULT — recovery under injected faults, audited.

The :mod:`repro.faults` package claims that the pipeline can absorb
realistic meter pathology — dropout, stuck readings, spikes, node
loss, flaky delivery — and still produce statistics that are (a)
*labelled*: every injected fault is accounted for in the emitted
:class:`~repro.faults.quality.QualityReport`, exactly, against the
injector's ledger; and (b) *bounded*: the degraded Table-3-style
fleet mean and node σ/μ sit within the error bounds the report itself
states.  This experiment is the trial:

* **acceptance scenario** (5% sample dropout + one node lost mid-run,
  the ISSUE's acceptance criterion) under all three gap policies —
  exact reconciliation, quarantine identifies exactly the lost node,
  and both estimates stay inside their stated bounds.
* **escalating dropout** — as the fault rate rises, effective coverage
  falls monotonically and the circuit breaker downgrades the
  compliance level monotonically (L3 → … → L1) instead of failing.
* **flaky delivery** — transient source failures are absorbed by
  bounded retry; abandoned batches show up in
  ``samples_never_arrived``, still reconciled exactly.
* **determinism** — the whole degraded pipeline is a pure function of
  ``(run, scenario, seed)``: two executions agree bit-for-bit, which
  is what lets the runner cache and parallelise X-FAULT like any
  other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.cluster.registry import get_trace_setup
from repro.experiments.base import Comparison, ExperimentResult
from repro.faults.chaos import ChaosOutcome, ChaosScenario, run_chaos
from repro.faults.recovery import GAP_POLICIES, RetryPolicy
from repro.traces.synth import simulate_run
from repro.workloads.base import ConstantWorkload

__all__ = ["FaultsResult", "run"]

#: Dropout rates for the escalating-fault sweep.
_SWEEP_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)


@dataclass
class FaultsResult(ExperimentResult):
    """Chaos-harness verdicts for the fault/recovery subsystem."""

    #: gap policy → acceptance-scenario outcome.
    acceptance: dict[str, ChaosOutcome]
    #: The lost node ids the injector planned (acceptance scenario).
    nodes_lost: tuple[int, ...]
    #: dropout rate → outcome for the escalating sweep.
    sweep: dict[float, ChaosOutcome]
    #: Flaky-delivery outcome (retry + abandonment path).
    flaky: ChaosOutcome
    #: Whether two full executions agreed bit-for-bit.
    deterministic: bool

    experiment_id = "X-FAULT"
    artifact = "fault injection + self-healing recovery audit (extension)"

    def comparisons(self) -> list[Comparison]:
        out = []
        for policy, outcome in self.acceptance.items():
            rep = outcome.report
            out.append(
                Comparison(
                    label=f"[{policy}] ledger reconciliation exact",
                    paper=1.0,
                    measured=float(outcome.reconciled),
                    abs_tol=0.0,
                )
            )
            out.append(
                Comparison(
                    label=f"[{policy}] quarantined == lost nodes",
                    paper=1.0,
                    measured=float(
                        tuple(rep.nodes_quarantined) == self.nodes_lost
                    ),
                    abs_tol=0.0,
                )
            )
            out.append(
                Comparison(
                    label=f"[{policy}] fleet-mean error within stated bound",
                    paper=rep.error_bound_fleet_mean(),
                    measured=outcome.rel_err_fleet_mean,
                    mode="at_most",
                )
            )
            out.append(
                Comparison(
                    label=f"[{policy}] sigma/mu error within stated bound",
                    paper=rep.error_bound_node_cv(),
                    measured=outcome.rel_err_node_cv,
                    mode="at_most",
                )
            )
        coverages = [
            self.sweep[r].report.effective_coverage for r in _SWEEP_RATES
        ]
        levels = [
            self.sweep[r].report.effective_level for r in _SWEEP_RATES
        ]
        out.append(
            Comparison(
                label="sweep: coverage falls monotonically with dropout",
                paper=1.0,
                measured=float(
                    all(a >= b for a, b in zip(coverages, coverages[1:]))
                ),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="sweep: breaker downgrades monotonically",
                paper=1.0,
                measured=float(
                    all(a >= b for a, b in zip(levels, levels[1:]))
                ),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="sweep: clean run keeps its original level",
                paper=float(self.sweep[0.0].report.original_level),
                measured=float(self.sweep[0.0].report.effective_level),
                rel_tol=0.0,
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="sweep: heavy dropout is downgraded, not failed",
                paper=1.0,
                measured=float(
                    self.sweep[_SWEEP_RATES[-1]].report.downgraded()
                ),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="sweep: every rate reconciles exactly",
                paper=1.0,
                measured=float(
                    all(self.sweep[r].reconciled for r in _SWEEP_RATES)
                ),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="flaky delivery: retries absorbed the failures",
                paper=1.0,
                measured=float(self.flaky.retries >= 1),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="flaky delivery: reconciliation exact incl. abandonment",
                paper=1.0,
                measured=float(self.flaky.reconciled),
                abs_tol=0.0,
            )
        )
        out.append(
            Comparison(
                label="replayed pipeline is bit-identical",
                paper=1.0,
                measured=float(self.deterministic),
                abs_tol=0.0,
            )
        )
        return out

    def report(self) -> str:
        lines = [
            "X-FAULT — fault injection, self-healing recovery, honest labels",
            "",
        ]
        table = Table(
            [
                "policy",
                "coverage",
                "mean err",
                "mean bound",
                "cv err",
                "cv bound",
                "level",
                "reconciled",
            ],
            title="acceptance scenario: 5% dropout + 1 node lost mid-run",
        )
        for policy, outcome in self.acceptance.items():
            rep = outcome.report
            table.add_row(
                [
                    policy,
                    f"{rep.effective_coverage:.1%}",
                    f"{outcome.rel_err_fleet_mean:.3%}",
                    f"{rep.error_bound_fleet_mean():.3%}",
                    f"{outcome.rel_err_node_cv:.3%}",
                    f"{rep.error_bound_node_cv():.3%}",
                    f"L{rep.original_level}->L{rep.effective_level}",
                    outcome.reconciled,
                ]
            )
        lines.append(table.render())
        lines.append("")
        sweep = Table(
            ["dropout", "coverage", "level", "missing", "reconciled"],
            title="escalating dropout (hold policy, circuit breaker)",
        )
        for rate in _SWEEP_RATES:
            outcome = self.sweep[rate]
            rep = outcome.report
            sweep.add_row(
                [
                    f"{rate:.0%}",
                    f"{rep.effective_coverage:.1%}",
                    f"L{rep.original_level}->L{rep.effective_level}",
                    rep.samples_missing,
                    outcome.reconciled,
                ]
            )
        lines.append(sweep.render())
        lines.append("")
        lines.append(
            "flaky delivery: "
            f"{self.flaky.retries} retries, "
            f"{self.flaky.batches_abandoned} batches abandoned, "
            f"{self.flaky.report.samples_never_arrived} samples never "
            f"arrived, reconciled={self.flaky.reconciled}"
        )
        lines.append(f"bit-identical replay: {self.deterministic}")
        lines.append("")
        lines.extend(self.acceptance["exclude"].report.lines())
        return "\n".join(lines)


def run(
    *,
    system_name: str = "l-csc",
    dt_s: float = 2.0,
    core_s: float = 1800.0,
    seed: int = 3415,
    dropout_rate: float = 0.05,
    node_loss: int = 1,
) -> FaultsResult:
    """Audit the fault/recovery subsystem end to end.

    Parameters
    ----------
    system_name:
        Trace-registry system to degrade (L-CSC: 56 nodes, tractable).
    dt_s / core_s:
        Sample spacing and core-phase length of the simulated run.
    seed:
        Root seed for the run, the fault plans and the retry jitter.
    dropout_rate / node_loss:
        The acceptance scenario's fault intensities (ISSUE criterion:
        5% sample dropout plus one node lost mid-run).
    """
    system, _ = get_trace_setup(system_name)
    workload = ConstantWorkload(utilisation=0.95, core_s=core_s)
    sim = simulate_run(system, workload, dt=dt_s, seed=seed)

    accept = ChaosScenario(
        name="acceptance",
        dropout_rate=dropout_rate,
        node_loss=node_loss,
    )
    acceptance = {
        policy: run_chaos(sim, accept, gap_policy=policy, seed=seed)
        for policy in GAP_POLICIES
    }
    nodes_lost = acceptance["hold"].ledger.nodes_lost

    sweep = {
        rate: run_chaos(
            sim,
            ChaosScenario(name=f"dropout-{rate:g}", dropout_rate=rate),
            gap_policy="hold",
            seed=seed,
            original_level=3,
        )
        for rate in _SWEEP_RATES
    }

    flaky = run_chaos(
        sim,
        ChaosScenario(
            name="flaky-delivery",
            dropout_rate=dropout_rate,
            delivery_failure_rate=0.55,
        ),
        gap_policy="exclude",
        seed=seed,
        retry_policy=RetryPolicy(max_retries=2),
    )

    replay = run_chaos(
        sim, accept, gap_policy="exclude", seed=seed
    )
    deterministic = replay.to_dict() == acceptance["exclude"].to_dict()

    return FaultsResult(
        acceptance=acceptance,
        nodes_lost=nodes_lost,
        sweep=sweep,
        flaky=flaky,
        deterministic=deterministic,
    )
