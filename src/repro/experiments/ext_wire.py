"""Extension X-WIRE — the telemetry wire's bandwidth-vs-accuracy frontier.

The :mod:`repro.wire` package claims that per-node power telemetry can
cross a lossy, bandwidth-starved collection network and still support
the paper's statistics — *provided* the loss is detected, repaired and
labelled.  This experiment is the trial: a simulated fleet is replayed
through every codec at several frame-drop/corruption rates, and each
cell of the sweep is audited the same way X-FAULT audits the matrix
fault path:

* **reconciliation** — the reader's CRC/sequence counters and the
  emitted :class:`~repro.faults.quality.QualityReport` must explain the
  injected :class:`~repro.faults.wire.WireLedger` exactly;
* **bounds** — the degraded fleet mean and node σ/μ must sit inside
  the report's stated bounds, which include the codec's declared
  per-sample error;
* **frontier** — the committed bandwidth-vs-accuracy table: bytes per
  node per second against drift in fleet mean, node CV, the Table 5
  required-n recomputation, and compliance verdict flips;
* **determinism** — two full executions agree bit-for-bit, so the
  runner can cache and parallelise X-WIRE like any other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.cluster.registry import get_trace_setup
from repro.experiments.base import Comparison, ExperimentResult
from repro.traces.synth import simulate_run
from repro.units import watts_to_milliwatts
from repro.wire.frontier import FrontierCell, wire_frontier
from repro.workloads.base import ConstantWorkload

__all__ = ["WireResult", "run"]

#: Codec sweep order (lossless first, then lossy by coarseness).
_CODECS = (
    "raw64",
    "delta-varint",
    "zlib(delta-varint)",
    "quant12",
    "quant8",
)

#: (drop_rate, corrupt_rate) grid.
_RATES = ((0.0, 0.0), (0.1, 0.0), (0.0, 0.1), (0.1, 0.1))


@dataclass
class WireResult(ExperimentResult):
    """Frontier cells plus the audit verdicts for the wire subsystem."""

    #: Sweep cells, in codec-major order over ``_CODECS`` × ``_RATES``.
    cells: list[FrontierCell]
    #: Whether two full sweeps agreed bit-for-bit.
    deterministic: bool

    experiment_id = "X-WIRE"
    artifact = "wire codec bandwidth-vs-accuracy frontier (extension)"

    def _cell(self, codec: str, drop: float, corrupt: float) -> FrontierCell:
        for cell in self.cells:
            if (
                cell.codec == codec
                and cell.drop_rate == drop
                and cell.corrupt_rate == corrupt
            ):
                return cell
        raise KeyError(f"no cell for {codec}@{drop}/{corrupt}")

    def comparisons(self) -> list[Comparison]:
        out = [
            Comparison(
                label="every cell reconciles exactly against the ledger",
                paper=1.0,
                measured=float(all(c.reconciled for c in self.cells)),
                abs_tol=0.0,
            ),
            Comparison(
                label="every cell sits inside its stated error bounds",
                paper=1.0,
                measured=float(all(c.within_bounds for c in self.cells)),
                abs_tol=0.0,
            ),
            Comparison(
                label="raw64 on a clean wire is bit-exact (zero drift)",
                paper=0.0,
                measured=self._cell("raw64", 0.0, 0.0).rel_err_fleet_mean,
                abs_tol=1e-15,
            ),
            Comparison(
                label="delta-varint clean drift within half-milliwatt grid",
                paper=float(
                    self._cell(
                        "delta-varint", 0.0, 0.0
                    ).codec_error_bound_w
                ),
                measured=self._cell(
                    "delta-varint", 0.0, 0.0
                ).rel_err_fleet_mean,
                mode="at_most",
            ),
            Comparison(
                label="delta-varint resolution is the declared 1 mW grid",
                paper=0.5,
                measured=watts_to_milliwatts(
                    self._cell(
                        "delta-varint", 0.0, 0.0
                    ).codec_error_bound_w
                ),
                rel_tol=0.0,
                # The advertised bound carries a few ulps of padding at
                # the peak magnitude (see codecs._grid_bound_w); a
                # nanowatt of tolerance absorbs it at any fleet scale.
                abs_tol=1e-6,
            ),
            Comparison(
                label="delta-varint compresses at least 2x vs raw64 framing",
                paper=2.0,
                measured=self._cell(
                    "raw64", 0.0, 0.0
                ).bytes_per_sample
                / self._cell("delta-varint", 0.0, 0.0).bytes_per_sample,
                mode="at_least",
            ),
            Comparison(
                label="quant8 is the cheapest codec on the wire",
                paper=1.0,
                measured=float(
                    self._cell("quant8", 0.0, 0.0).bytes_per_sample
                    == min(
                        self._cell(c, 0.0, 0.0).bytes_per_sample
                        for c in _CODECS
                    )
                ),
                abs_tol=0.0,
            ),
            Comparison(
                label="lossy CV drift grows with codec coarseness",
                paper=1.0,
                measured=float(
                    self._cell("quant8", 0.0, 0.0).rel_err_node_cv
                    >= self._cell("quant12", 0.0, 0.0).rel_err_node_cv
                ),
                abs_tol=0.0,
            ),
            Comparison(
                label="no compliance verdict flips on a clean wire",
                paper=0.0,
                measured=float(
                    sum(
                        self._cell(c, 0.0, 0.0).verdict_flipped
                        for c in _CODECS
                    )
                ),
                abs_tol=0.0,
            ),
            Comparison(
                label="actual frame loss always flips the verdict",
                paper=1.0,
                measured=float(
                    all(
                        c.verdict_flipped == (c.frames_lost > 0)
                        for c in self.cells
                    )
                ),
                abs_tol=0.0,
            ),
            Comparison(
                label="the sweep exercises real frame loss",
                paper=1.0,
                measured=float(
                    sum(c.frames_lost for c in self.cells)
                ),
                mode="at_least",
            ),
            Comparison(
                label="Table 5 required-n stable across the whole sweep",
                paper=0.0,
                measured=float(
                    max(abs(c.required_n_drift) for c in self.cells)
                ),
                abs_tol=0.0,
            ),
            Comparison(
                label="replayed sweep is bit-identical",
                paper=1.0,
                measured=float(self.deterministic),
                abs_tol=0.0,
            ),
        ]
        return out

    def report(self) -> str:
        lines = [
            "X-WIRE — framed telemetry: bandwidth vs accuracy, audited",
            "",
        ]
        table = Table(
            [
                "codec",
                "drop",
                "corrupt",
                "lost",
                "B/node/s",
                "ratio",
                "mean err",
                "cv err",
                "req-n",
                "flip",
                "ok",
            ],
            title="bandwidth-vs-accuracy frontier (committed contract)",
        )
        for c in self.cells:
            table.add_row(
                [
                    c.codec,
                    f"{c.drop_rate:.0%}",
                    f"{c.corrupt_rate:.0%}",
                    f"{c.frames_lost}/{c.frames_sent}",
                    f"{c.node_bps:.2f}",
                    f"x{c.compression_ratio:.2f}",
                    f"{c.rel_err_fleet_mean:.2e}",
                    f"{c.rel_err_node_cv:.2e}",
                    f"{c.required_n_clean}->{c.required_n_degraded}",
                    c.verdict_flipped,
                    c.reconciled and c.within_bounds,
                ]
            )
        lines.append(table.render())
        lines.append("")
        lines.append(
            "every cell: ledger reconciliation exact, drift within the "
            "stated bounds (codec term included)"
        )
        lines.append(f"bit-identical replay: {self.deterministic}")
        return "\n".join(lines)


def run(
    *,
    system_name: str = "l-csc",
    dt_s: float = 2.0,
    core_s: float = 1200.0,
    seed: int = 3415,
    n_nodes: int = 12,
    ticks_per_batch: int = 10,
) -> WireResult:
    """Audit the wire subsystem end to end.

    Parameters
    ----------
    system_name:
        Trace-registry system to stream (L-CSC: GPU fleet, tractable).
    dt_s / core_s:
        Sample spacing and core-phase length of the simulated run.
    seed:
        Root seed for the run and every fault plan in the sweep.
    n_nodes:
        Leading node subset framed onto the wire.
    ticks_per_batch:
        Ticks per frame — small enough that every 10% loss cell hits a
        meaningful number of the 60 frames at this horizon.
    """
    import numpy as np

    system, _ = get_trace_setup(system_name)
    workload = ConstantWorkload(utilisation=0.95, core_s=core_s)
    sim = simulate_run(system, workload, dt=dt_s, seed=seed)
    node_indices = np.arange(n_nodes)

    cells = wire_frontier(
        sim,
        codecs=_CODECS,
        rates=_RATES,
        seed=seed,
        node_indices=node_indices,
        ticks_per_batch=ticks_per_batch,
    )
    replay = wire_frontier(
        sim,
        codecs=_CODECS,
        rates=_RATES,
        seed=seed,
        node_indices=node_indices,
        ticks_per_batch=ticks_per_batch,
    )
    deterministic = [c.to_dict() for c in cells] == [
        c.to_dict() for c in replay
    ]
    return WireResult(cells=cells, deterministic=deterministic)
