"""Experiment S1 — Section 4's worked example of the 1/64 rule's
scale-dependent accuracy.

"For a hypothetical supercomputer with 210 nodes and a true value of
σ/μ = 2%, the Green500 methodology would require at least 4 nodes to be
measured.  Based on 4 nodes, we would be able to say with 95% certainty
that our estimate of the total power usage is within 3.2% of the true
total.  In contrast, for a supercomputer with 18,688 nodes ... at least
292 nodes ... within 0.2% of the true total."

Both the required node counts (from the 1/64 rule) and the achieved
accuracies (t-interval with finite-population correction) are checked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import Table
from repro.core.methodology import Level, machine_fraction_nodes
from repro.core.sampling import achieved_accuracy
from repro.experiments.base import Comparison, ExperimentResult

__all__ = ["SampleSizeExampleResult", "ExampleCase", "run"]

#: The example's assumed coefficient of variation.
CV = 0.02


@dataclass(frozen=True)
class ExampleCase:
    """One of the two hypothetical systems."""

    n_nodes: int
    node_power_watts: float  # only used for the 2 kW floor
    paper_required_nodes: int
    paper_accuracy: float
    required_nodes: int = 0
    accuracy: float = 0.0


@dataclass
class SampleSizeExampleResult(ExperimentResult):
    """The regenerated worked example."""

    cases: list

    experiment_id = "S1"
    artifact = "Section 4 worked example"

    def comparisons(self) -> list[Comparison]:
        out = []
        for case in self.cases:
            out.append(
                Comparison(
                    label=f"{case.n_nodes}-node system: required nodes (1/64)",
                    paper=case.paper_required_nodes,
                    measured=case.required_nodes,
                    rel_tol=0.0,
                )
            )
            out.append(
                Comparison(
                    label=f"{case.n_nodes}-node system: 95% accuracy",
                    paper=case.paper_accuracy,
                    measured=case.accuracy,
                    rel_tol=0.15,  # paper rounds to one decimal (3.2%, 0.2%)
                )
            )
        # The paper's point: same rule, order-of-magnitude accuracy gap.
        small, large = self.cases
        out.append(
            Comparison(
                label="accuracy ratio small/large system",
                paper=10.0,
                measured=small.accuracy / large.accuracy,
                mode="at_least",
            )
        )
        return out

    def report(self) -> str:
        table = Table(
            ["N", "required nodes", "paper", "95% accuracy", "paper acc."],
            title="Section 4 — the 1/64 rule's accuracy depends on system "
                  f"scale (sigma/mu = {CV:.0%})",
        )
        for case in self.cases:
            table.add_row(
                [
                    case.n_nodes,
                    case.required_nodes,
                    case.paper_required_nodes,
                    f"±{case.accuracy:.2%}",
                    f"±{case.paper_accuracy:.1%}",
                ]
            )
        lines = [table.render(), ""]
        lines += self.summary_lines()
        return "\n".join(lines)


def run() -> SampleSizeExampleResult:
    """Regenerate the worked example."""
    specs = [
        ExampleCase(
            n_nodes=210, node_power_watts=500.0,
            paper_required_nodes=4, paper_accuracy=0.032,
        ),
        ExampleCase(
            n_nodes=18_688, node_power_watts=500.0,
            paper_required_nodes=292, paper_accuracy=0.002,
        ),
    ]
    cases = []
    for spec in specs:
        # Per the example, the count comes from the fractional arm of
        # the rule (the paper quotes ceil(N/64) for both systems).
        n = machine_fraction_nodes(
            Level.L1, spec.n_nodes, spec.node_power_watts
        )
        acc = achieved_accuracy(n, spec.n_nodes, CV, confidence=0.95)
        cases.append(
            ExampleCase(
                n_nodes=spec.n_nodes,
                node_power_watts=spec.node_power_watts,
                paper_required_nodes=spec.paper_required_nodes,
                paper_accuracy=spec.paper_accuracy,
                required_nodes=n,
                accuracy=acc,
            )
        )
    return SampleSizeExampleResult(cases=cases)
