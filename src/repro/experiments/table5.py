"""Experiment T5 — paper Table 5: recommended sample sizes.

Pure statistics (Eq. 5), so the reproduction is exact: for
N = 10 000, α = 0.05, the (λ × σ/μ) grid must match the published
integers cell for cell.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.core.sampling import sample_size_table
from repro.experiments.base import Comparison, ExperimentResult

__all__ = ["Table5Result", "run", "PAPER_TABLE5", "ACCURACIES", "CVS"]

ACCURACIES = (0.005, 0.01, 0.015, 0.02)
CVS = (0.02, 0.03, 0.05)

#: Table 5 as published (rows: λ; columns: σ/μ).
PAPER_TABLE5 = np.array(
    [
        [62, 137, 370],
        [16, 35, 96],
        [7, 16, 43],
        [4, 9, 24],
    ],
    dtype=np.int64,
)


@dataclass
class Table5Result(ExperimentResult):
    """Regenerated Table 5."""

    grid: np.ndarray
    n_nodes: int
    confidence: float

    experiment_id = "T5"
    artifact = "Table 5"

    def comparisons(self) -> list[Comparison]:
        out = []
        for i, lam in enumerate(ACCURACIES):
            for j, cv in enumerate(CVS):
                out.append(
                    Comparison(
                        label=f"n(lambda={lam:g}, cv={cv:g})",
                        paper=float(PAPER_TABLE5[i, j]),
                        measured=float(self.grid[i, j]),
                        rel_tol=0.0,
                        abs_tol=0.0,
                    )
                )
        return out

    def report(self) -> str:
        table = Table(
            ["lambda \\ sigma/mu", *[f"{cv:g}" for cv in CVS]],
            title=(
                f"Table 5 — recommended sample sizes "
                f"(N={self.n_nodes}, {self.confidence:.0%} confidence)"
            ),
        )
        for i, lam in enumerate(ACCURACIES):
            table.add_row([f"{lam:.1%}", *self.grid[i].tolist()])
        lines = [table.render(), ""]
        exact = bool(np.array_equal(self.grid, PAPER_TABLE5))
        lines.append(f"exact match with paper: {exact}")
        return "\n".join(lines)


def run(*, n_nodes: int = 10_000, confidence: float = 0.95) -> Table5Result:
    """Regenerate Table 5 via Eq. 5."""
    grid = sample_size_table(
        ACCURACIES, CVS, n_nodes=n_nodes, confidence=confidence
    )
    return Table5Result(grid=grid, n_nodes=n_nodes, confidence=confidence)
