"""Experiment F1 — paper Figure 1: system power over time for Linpack.

Regenerates the four power-vs-time series (Colosse, Sequoia, Piz Daint,
L-CSC).  The figure's qualitative content — which the reproduction
checks quantitatively — is:

* CPU out-of-core runs (Colosse, Sequoia) are *flat*: the power curve's
  coefficient of variation over the core phase is well under 2%, and
  any visible tail-off occupies a negligible fraction of the run.
* GPU in-core runs (Piz Daint, L-CSC) are *sloped and jagged*: power
  declines by >15% from its plateau and the decline spans a large
  fraction of the (much shorter) run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.report import Table
from repro.cluster.registry import TRACE_SYSTEMS, get_trace_setup
from repro.experiments.base import Comparison, ExperimentResult
from repro.traces.ops import resample
from repro.traces.synth import simulate_run
from repro.units import watts_to_kilowatts

__all__ = ["Figure1Result", "Figure1Series", "run"]


@dataclass(frozen=True)
class Figure1Series:
    """One curve of Figure 1, downsampled for plotting/inspection.

    ``times`` are normalised to core-phase run fraction; ``kilowatts``
    is the full-system power.
    """

    system: str
    times: np.ndarray
    kilowatts: np.ndarray
    core_cv: float  # relative std of power across the core phase
    plateau_to_end_drop: float  # (plateau − final 5% avg) / plateau

    @property
    def is_flat(self) -> bool:
        """The 'traditional CPU system' shape."""
        return self.core_cv < 0.02 and self.plateau_to_end_drop < 0.10


@dataclass
class Figure1Result(ExperimentResult):
    """Regenerated Figure 1 series with shape assertions."""

    series: list

    experiment_id = "F1"
    artifact = "Figure 1"

    #: Paper-derived shape expectations: (is CPU-class flat, minimum
    #: plateau→end drop for the GPU systems).
    _FLAT = {"colosse": True, "sequoia": True, "piz-daint": False, "l-csc": False}

    def comparisons(self) -> list[Comparison]:
        out = []
        for s in self.series:
            if self._FLAT[s.system]:
                # Flat: core CV below 2% (Colosse ~0.1%, Sequoia ~1.5%).
                out.append(
                    Comparison(
                        label=f"{s.system} core-phase power CV (flat CPU run)",
                        paper=0.02,
                        measured=s.core_cv,
                        mode="at_most",
                    )
                )
            else:
                # Sloped: power drops >= 15% from plateau into the tail.
                out.append(
                    Comparison(
                        label=f"{s.system} plateau-to-end power drop (GPU run)",
                        paper=0.15,
                        measured=s.plateau_to_end_drop,
                        mode="at_least",
                    )
                )
        return out

    def report(self) -> str:
        table = Table(
            ["system", "points", "mean (kW)", "core CV", "plateau→end drop",
             "shape"],
            title="Figure 1 — system power over time for Linpack "
                  "(series statistics)",
        )
        for s in self.series:
            table.add_row(
                [
                    s.system,
                    len(s.times),
                    float(s.kilowatts.mean()),
                    f"{s.core_cv:.2%}",
                    f"{s.plateau_to_end_drop:.1%}",
                    "flat (CPU)" if s.is_flat else "sloped (GPU)",
                ]
            )
        lines = [table.render(), ""]
        # The figure itself: power relative to each run's core average,
        # so the four machines share one axis despite a 200x kW range.
        from repro.analysis.ascii_plot import multi_line_plot

        grid = np.linspace(0.0, 1.0, 160)
        curves = {
            s.system: np.interp(
                grid, s.times, s.kilowatts / s.kilowatts.mean()
            )
            for s in self.series
        }
        lines.append(
            multi_line_plot(
                grid, curves,
                title="relative power vs core-phase run fraction",
            )
        )
        lines.append("")
        lines += self.summary_lines()
        return "\n".join(lines)


def run(*, n_points: int = 400, seed: int | None = None) -> Figure1Result:
    """Regenerate the Figure 1 series.

    ``n_points`` controls the downsampled series resolution returned for
    plotting; statistics are computed on the full-resolution trace.
    """
    if n_points < 10:
        raise ValueError("n_points must be >= 10")
    series = []
    for name in TRACE_SYSTEMS:
        system, workload = get_trace_setup(name)
        dt = max(1.0, workload.phases.total_s / 7200)
        sim = simulate_run(system, workload, dt=dt, seed=seed)
        core = sim.core_trace()

        watts = core.watts
        cv = float(watts.std() / watts.mean())
        # Plateau level: average of the first 30% (past any warm-up dip).
        plateau = core.fraction_window(0.05, 0.30).mean_power()
        final = core.fraction_window(0.95, 1.0).mean_power()
        drop = (plateau - final) / plateau

        plot = resample(core, core.duration / (n_points - 1))
        frac = (plot.times - core.start) / core.duration
        series.append(
            Figure1Series(
                system=name,
                times=frac,
                kilowatts=watts_to_kilowatts(plot.watts),
                core_cv=cv,
                plateau_to_end_drop=float(drop),
            )
        )
    return Figure1Result(series=series)
