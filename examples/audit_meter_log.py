#!/usr/bin/env python
"""Audit a raw meter log, end to end.

A list operator receives a power trace as a CSV meter log and a claimed
Level 1 submission.  This example:

1. exports a simulated Piz-Daint-class run as a meter-log CSV (the
   format a rack PDU produces),
2. reads it back cold, with no knowledge of the run structure,
3. detects the core phase from the power signal alone,
4. checks the submission's claimed measurement window against the
   detected phase and the timing rules, and
5. estimates how much the claimed window flattered the result.

Run:  python examples/audit_meter_log.py
"""

import tempfile
from pathlib import Path

from repro.analysis.gaming import optimal_window_gain
from repro.analysis.phases import detect_core_phase
from repro.cluster import get_trace_setup
from repro.core.windows import MeasurementWindow, is_legal_level1_window
from repro.traces.io import read_trace_csv, write_trace_csv
from repro.traces.synth import simulate_run


def main() -> None:
    # --- the site's side: run HPL, export the meter log --------------
    system, workload = get_trace_setup("piz-daint")
    run = simulate_run(system, workload, dt=1.0)
    log_path = Path(tempfile.mkdtemp()) / "pdu-log.csv"
    write_trace_csv(run.trace, log_path)
    print(f"meter log written: {log_path} "
          f"({len(run.trace)} samples at 1 Hz)")

    # The submitter claims this (legal but tail-hugging) window:
    claimed = MeasurementWindow(0.74, 0.90)

    # --- the auditor's side: cold read -------------------------------
    trace = read_trace_csv(log_path)
    phase = detect_core_phase(trace, threshold_fraction=0.35)
    print(f"detected core phase: [{phase.start_s:.0f}, {phase.end_s:.0f}] s "
          f"({phase.duration_s / 3600:.2f} h)")
    t0, t1 = run.core_window
    print(f"(simulation ground truth: [{t0:.0f}, {t1:.0f}] s; overlap "
          f"{phase.overlap_fraction(t0, t1):.1%})")
    print()

    core = trace.window(phase.start_s, phase.end_s)
    legal = is_legal_level1_window(claimed, core.duration)
    a = phase.start_s + claimed.start * core.duration
    b = phase.start_s + claimed.end * core.duration
    claimed_avg = trace.window(a, b).mean_power()
    full_avg = core.mean_power()
    print(f"claimed window {claimed}: "
          f"{'legal' if legal else 'ILLEGAL'} under pre-2015 Level 1")
    print(f"claimed-window average: {claimed_avg / 1e3:.1f} kW")
    print(f"full-core average:      {full_avg / 1e3:.1f} kW")
    print(f"understatement:         "
          f"{(claimed_avg - full_avg) / full_avg:+.1%}")
    print()

    worst = optimal_window_gain(core)
    print("window-placement exposure on this trace "
          f"(any legal choice): {worst.spread:.1%} spread, best case "
          f"{worst.gaming_gain:+.1%}")
    print("verdict: request a full-core-phase measurement "
          "(post-2015 rule) before accepting.")


if __name__ == "__main__":
    main()
