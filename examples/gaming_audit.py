#!/usr/bin/env python
"""Audit a submission for measurement gaming.

Reproduces the paper's two adversarial vectors on an L-CSC-class run —
optimal-window placement (Section 3) and VID screening (Section 5) —
and shows how the paper's countermeasures (full-core window, larger
random subsets, mid-VID screening) neutralise them.

Run:  python examples/gaming_audit.py
"""

import numpy as np

from repro.analysis.gaming import optimal_window_gain
from repro.cluster import get_trace_setup
from repro.core.windows import full_core_window
from repro.metering import (
    MeasurementCampaign,
    MeterSpec,
    random_subset,
    vid_screened_subset,
)
from repro.traces.synth import simulate_run


def main() -> None:
    system, workload = get_trace_setup("l-csc")
    run = simulate_run(system, workload, dt=1.0)
    core = run.core_trace()
    truth = run.true_core_average()
    print(f"{system.name}: true core-phase power {truth / 1e3:.2f} kW\n")

    # --- Vector 1: window placement -------------------------------
    print("== window gaming (pre-2015 timing rule) ==")
    res = optimal_window_gain(core)
    print(f"best legal window:  {res.best_window}")
    print(f"reported power there: {res.best_average / 1e3:.2f} kW "
          f"({res.gaming_gain:+.1%})")
    print(f"efficiency inflation: {res.efficiency_inflation:+.1%}")
    print(f"window-to-window spread: {res.spread:.1%}")
    unconstrained = optimal_window_gain(
        core, window_fraction=0.20, within=(0.0, 1.0)
    )
    print(f"with an end-of-run window (the L-CSC/TSUBAME trick): "
          f"{unconstrained.efficiency_inflation:+.1%} efficiency")
    print("countermeasure: the new rule requires the full core phase — "
          "one window, zero spread.\n")

    # --- Vector 2: VID screening ----------------------------------
    print("== VID screening (Section 5) ==")
    campaign = MeasurementCampaign(run, meter_spec=MeterSpec.ideal())
    window = full_core_window()
    rng = np.random.default_rng(0)
    n = 8

    honest = campaign.level1(
        node_indices=random_subset(system.n_nodes, n, rng), window=window
    )
    screened = campaign.level1(
        node_indices=vid_screened_subset(system, n, prefer="low"),
        window=window,
    )
    mid = campaign.level1(
        node_indices=vid_screened_subset(system, n, prefer="mid"),
        window=window,
    )
    print(f"random subset:      {honest.reported_watts / 1e3:.2f} kW "
          f"({honest.relative_error:+.2%})")
    print(f"low-VID screened:   {screened.reported_watts / 1e3:.2f} kW "
          f"({screened.relative_error:+.2%})  <- favourably biased")
    print(f"mid-VID (paper's suggestion): {mid.reported_watts / 1e3:.2f} kW "
          f"({mid.relative_error:+.2%})")


if __name__ == "__main__":
    main()
