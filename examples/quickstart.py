#!/usr/bin/env python
"""Quickstart: plan, take and assess a node-subset power measurement.

Walks the paper's core workflow on the (simulated) LRZ system:

1. look up the system and its per-node power distribution,
2. plan a subset size with Eq. 5 from the σ/μ band,
3. "measure" that many nodes and extrapolate to the full system,
4. attach the accuracy assessment the paper wants every submission to
   carry.

Run:  python examples/quickstart.py
"""

from repro.cluster import get_system, workload_utilisation
from repro.core import (
    assess_accuracy,
    extrapolate_full_system,
    recommend_sample_size,
)
from repro.rng import default_rng


def main() -> None:
    rng = default_rng(2015)

    # 1. The fleet: LRZ's 9216 thin nodes under MPrime (Table 3/4).
    lrz = get_system("lrz")
    fleet = lrz.node_sample(workload_utilisation("lrz"))
    print(f"system: {lrz.name}, N = {len(fleet)} nodes")
    print(f"fleet mean node power: {fleet.mean():.2f} W")
    print(f"fleet sigma/mu:        {fleet.coefficient_of_variation():.2%}")
    print()

    # 2. Plan: ±1% at 95% confidence, assuming the paper's conservative
    #    sigma/mu = 3% (we pretend we have not measured everything).
    plan = recommend_sample_size(len(fleet), cv=0.03, accuracy=0.01)
    print(f"plan (Eq. 5): {plan}")
    print()

    # 3. Measure the planned subset and extrapolate linearly.
    subset = fleet.random_subset(plan.n, rng)
    estimate = extrapolate_full_system(subset.watts, len(fleet))
    truth = fleet.total()
    print(f"extrapolated full-system power: {estimate}")
    print(f"true full-system power:         {truth / 1e3:.1f} kW")
    print(f"error: {(estimate.total_watts - truth) / truth:+.3%}")
    print()

    # 4. The accuracy statement the paper recommends submitting.
    assessment = assess_accuracy(
        subset.watts, len(fleet), target_lambda=0.015
    )
    print("accuracy assessment:", assessment.summary())


if __name__ == "__main__":
    main()
