#!/usr/bin/env python
"""Reproduce the L-CSC efficiency-tuning campaign (Section 5).

Sweeps the GPU frequency/voltage space for the most efficient Linpack
operating point (the real team found 774 MHz / 1.018 V), then shows the
two node-variability mitigations the paper derives from the case study:
fixing the voltage (instead of per-ASIC VIDs) and pinning the fans.

Run:  python examples/tune_gpu_efficiency.py
"""

import numpy as np

from repro.cluster.components import GpuModel
from repro.cluster.dvfs import (
    OperatingPoint,
    VoltageFrequencyCurve,
    efficiency_search,
)
from repro.experiments import figure4


def main() -> None:
    gpu = GpuModel(
        idle_watts=18.0, peak_watts=230.0,
        nominal_mhz=900.0, nominal_volts=1.1425,
    )
    curve = VoltageFrequencyCurve(
        f0_mhz=774.0, v0=1.018, slope_v_per_mhz=0.0006
    )

    print("== frequency/voltage sweep ==")
    grid = np.arange(500.0, 1001.0, 2.0)
    best, eff = efficiency_search(gpu, curve, grid)
    print(f"most efficient point: {best.freq_mhz:.0f} MHz "
          f"@ {best.volts:.3f} V (paper: 774 MHz @ 1.018 V)")
    default = OperatingPoint(900.0, float(curve.min_stable_volts(900.0)))
    p_best = gpu.power_at(0.95, best.freq_mhz, best.volts)
    p_def = gpu.power_at(0.95, default.freq_mhz, default.volts)
    eff_gain = (best.freq_mhz / p_best) / (default.freq_mhz / p_def) - 1.0
    print(f"efficiency gain vs default 900 MHz: {eff_gain:+.1%} "
          "(paper reports ~22% from DVFS)\n")

    print("== node-variability mitigations (Figure 4 experiment) ==")
    result = figure4.run()
    vids = np.array([r.vid for r in result.rows], dtype=float)
    fixed = np.array([r.eff_fixed for r in result.rows])
    default_eff = np.array([r.eff_default for r in result.rows])
    print(f"fixed 774 MHz/1.018 V: efficiency CV "
          f"{fixed.std(ddof=1) / fixed.mean():.2%} "
          "(paper: 1.2%), no VID trend "
          f"(corr {np.corrcoef(fixed, vids)[0, 1]:+.2f})")
    print(f"default VID voltages:  clear VID trend "
          f"(corr {np.corrcoef(default_eff, vids)[0, 1]:+.2f})")
    print(f"fan-speed power delta: {result.fan_power_delta_w:.0f} W — "
          f"{result.fan_power_delta_w / result.gpu_power_spread_w:.0f}x "
          "the GPU silicon spread")


if __name__ == "__main__":
    main()
