#!/usr/bin/env python
"""Total-cost-of-ownership extrapolation from a test partition.

The paper's Section 1 use case: "Our guidelines also serve as
instructions for extrapolating Total Cost of Ownership from smaller
test systems during procurement ... the observed variations of 20% in
power consumption lead directly to a possible 20% increase in
electricity costs."

A site has a 64-node test partition of a planned 4096-node machine.
This example measures the partition, extrapolates annual energy cost
with honest confidence bounds, and contrasts that with what a sloppy
(partial-window, tiny-subset) measurement would have projected.

Run:  python examples/tco_extrapolation.py
"""

from repro.cluster.components import CpuModel, DramModel, FanModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.thermal import FanController
from repro.cluster.variability import ManufacturingVariation
from repro.core import extrapolate_full_system, recommend_sample_size
from repro.rng import default_rng
from repro.units import JOULES_PER_KWH, SECONDS_PER_HOUR

EUR_PER_KWH = 0.25
HOURS_PER_YEAR = 8766.0
PLANNED_NODES = 4096


def main() -> None:
    rng = default_rng(7)
    config = NodeConfig(
        cpu=CpuModel(idle_watts=22.0, peak_watts=140.0),
        n_cpus=2,
        dram=DramModel.for_capacity(64.0),
        fan=FanModel(max_watts=45.0),
        other_watts=25.0,
    )
    partition = SystemModel(
        "test-partition",
        64,
        config,
        variation=ManufacturingVariation(sigma=0.025, outlier_rate=0.01),
        fan_controller=FanController(fan_model=config.fan,
                                     reference_watts=400.0),
        seed=21,
    )

    fleet = partition.node_sample(0.85)  # production mix, not HPL
    cv = fleet.coefficient_of_variation()
    print(f"test partition: {len(fleet)} nodes, "
          f"mean {fleet.mean():.0f} W, sigma/mu {cv:.2%}")

    plan = recommend_sample_size(PLANNED_NODES, cv, accuracy=0.01)
    n_measured = min(plan.n, len(fleet))
    subset = fleet.random_subset(n_measured, rng)
    print(f"Eq. 5 plan for the {PLANNED_NODES}-node machine: "
          f"{plan.n} nodes (we have {len(fleet)}; measuring "
          f"{n_measured})\n")

    est = extrapolate_full_system(subset.watts, PLANNED_NODES)

    def annual_cost(watts: float) -> float:
        joules = watts * HOURS_PER_YEAR * SECONDS_PER_HOUR
        return joules / JOULES_PER_KWH * EUR_PER_KWH

    mid = annual_cost(est.total_watts)
    lo = annual_cost(est.interval.lower)
    hi = annual_cost(est.interval.upper)
    print(f"projected machine power: {est}")
    print(f"projected annual electricity cost: "
          f"EUR {mid:,.0f}  (95% CI EUR {lo:,.0f} - {hi:,.0f})\n")

    # What a 20%-low measurement (the gaming / bad-window regime the
    # paper documents) does to the projection:
    sloppy = annual_cost(est.total_watts * 0.8)
    print("if the power number were 20% low (pre-2015 worst case):")
    print(f"  projected cost EUR {sloppy:,.0f} — an "
          f"EUR {mid - sloppy:,.0f}/year surprise at acceptance.")


if __name__ == "__main__":
    main()
