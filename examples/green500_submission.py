#!/usr/bin/env python
"""A site prepares a Green500 submission — at every quality level.

Simulates a full HPL run on an L-CSC-class GPU machine, executes the
EE HPC WG Level 1, 2 and 3 measurement procedures on it, validates each
against the Table 1 rules *and* the paper's new requirements, and shows
what each level would have reported vs the truth.

Run:  python examples/green500_submission.py
"""

from repro.cluster import get_trace_setup
from repro.core.methodology import Level
from repro.lists.submission import PowerSource, Submission
from repro.lists.validation import validate_submission
from repro.metering import MeasurementCampaign, MeterSpec
from repro.traces.synth import simulate_run
from repro.units import gflops_per_watt


def main() -> None:
    # The machine and its calibrated HPL workload (paper Table 2 row).
    system, workload = get_trace_setup("l-csc")
    print(f"machine: {system.name}, {system.n_nodes} nodes, "
          f"4 GPUs per node")
    print(f"HPL core phase: {workload.core_runtime_s / 3600:.1f} h")

    run = simulate_run(system, workload, dt=1.0)
    truth = run.true_core_average()
    rmax_gflops = 316_000.0  # L-CSC's Nov 2014 Rmax
    print(f"true core-phase average power: {truth / 1e3:.2f} kW")
    print(f"true efficiency: {gflops_per_watt(rmax_gflops, truth):.3f} "
          "GFLOPS/W")
    print()

    campaign = MeasurementCampaign(
        run, meter_spec=MeterSpec(gain_error_cv=0.01)
    )
    results = {
        Level.L1: campaign.level1(),
        Level.L2: campaign.level2(),
        Level.L3: campaign.level3(),
    }

    for level, result in results.items():
        sub = Submission(
            system_name=f"{system.name}-L{int(level)}",
            rmax_gflops=rmax_gflops,
            power_watts=result.reported_watts,
            source=PowerSource.MEASURED,
            level=level,
            description=result.description,
            true_power_watts=truth,
        )
        report = validate_submission(sub)
        print(f"--- Level {int(level)} ---")
        print(f"  reported: {result.reported_watts / 1e3:.2f} kW "
              f"({result.relative_error:+.2%} vs truth)")
        print(f"  efficiency: {sub.efficiency_gflops_per_watt:.3f} GFLOPS/W")
        print(f"  window: {result.window}, "
              f"nodes: {len(result.node_indices)}/{system.n_nodes}")
        print(f"  Table 1 compliant: {report.complies_with_level}")
        print(f"  new (post-2015) rules: "
              f"{'pass' if report.complies_with_new_rules else 'FAIL'}")
        for failure in report.new_rule_failures:
            print(f"    - {failure}")
        print()


if __name__ == "__main__":
    main()
