#!/usr/bin/env python
"""Plan a measurement campaign under real instrumentation constraints.

A site with two rack PDUs (24 channels each, 1% calibration class)
wants a ±2% power characterisation of a 4096-node machine.  This
example builds the full error budget, shows how each choice moves it —
better meters, more meters, full-core vs partial windows — and then
*verifies the budget empirically* by running the planned campaign on a
simulated fleet and checking the realised error sits inside it.

Run:  python examples/plan_site_campaign.py
"""

import numpy as np

from repro.cluster.components import CpuModel, DramModel, FanModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.variability import ManufacturingVariation
from repro.core.planning import InstrumentationConstraints, plan_measurement
from repro.metering.aggregate import MeterBank
from repro.metering.meter import MeterSpec
from repro.metering.subset import random_subset
from repro.rng import default_rng
from repro.traces.synth import simulate_run
from repro.workloads.base import ConstantWorkload

N_NODES = 4096
CV = 0.025
TARGET = 0.02


def main() -> None:
    print("== the plan ==")
    base = InstrumentationConstraints(
        n_meters=2, channels_per_meter=24,
        meter_spec=MeterSpec(gain_error_cv=0.01),
    )
    plan = plan_measurement(N_NODES, CV, TARGET, base)
    print(plan.summary())
    print()

    print("== what-ifs ==")
    for label, constraints in [
        ("vetted 0.2% meters",
         InstrumentationConstraints(
             n_meters=2, channels_per_meter=24,
             meter_spec=MeterSpec(gain_error_cv=0.002))),
        ("four 1% meters",
         InstrumentationConstraints(
             n_meters=4, channels_per_meter=24,
             meter_spec=MeterSpec(gain_error_cv=0.01))),
        ("pre-2015 partial window (GPU machine)",
         InstrumentationConstraints(
             n_meters=2, channels_per_meter=24,
             meter_spec=MeterSpec(gain_error_cv=0.01),
             full_core_window=False, machine_class="gpu")),
    ]:
        p = plan_measurement(N_NODES, CV, TARGET, constraints)
        print(f"{label:40s} -> RSS ±{p.budget.rss:.2%} "
              f"({'ok' if p.feasible else 'NOT FEASIBLE'}, "
              f"dominant: {p.budget.dominant_term()})")
    print()

    print("== empirical check of the base plan ==")
    config = NodeConfig(
        cpu=CpuModel(idle_watts=22.0, peak_watts=140.0), n_cpus=2,
        dram=DramModel.for_capacity(64.0),
        fan=FanModel(max_watts=45.0), other_watts=25.0,
    )
    system = SystemModel(
        "planned-fleet", N_NODES, config,
        variation=ManufacturingVariation(sigma=CV), seed=33,
    )
    run = simulate_run(
        system, ConstantWorkload(utilisation=0.9, core_s=900.0),
        dt=1.0, noise_cv=0.0,
    )
    truth = run.true_core_average()

    rng = default_rng(5)
    errors = []
    for trial in range(60):
        idx = random_subset(N_NODES, plan.n_nodes_to_measure, rng)
        bank = MeterBank(
            base.meter_spec, plan.n_meters_used,
            np.random.default_rng(500 + trial),
        )
        t0, t1 = run.core_window
        reading = bank.measure_subset(run, idx, t0, t1)
        reported = reading.average_watts * N_NODES / idx.size
        errors.append((reported - truth) / truth)
    errors = np.abs(errors)
    within = float(np.mean(errors <= plan.budget.rss))
    print(f"60 realised campaigns: p95 |error| = "
          f"{np.quantile(errors, 0.95):.2%} "
          f"(budget RSS ±{plan.budget.rss:.2%})")
    print(f"fraction within the RSS budget: {within:.0%} "
          "(budget is a ~95% bound, so ~95% expected)")


if __name__ == "__main__":
    main()
