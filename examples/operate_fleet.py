#!/usr/bin/env python
"""Operate a production fleet with the characterisation toolkit.

The paper's Section 1 lists operational use cases beyond rankings:
"system modeling ..., procurement, operational improvements and power
capping."  This example runs a production (non-benchmark) day on a
fleet and uses the library's operational layer:

1. the fleet runs an *imbalanced* production mix — the normality screen
   flags it, so simple random sampling is off the table;
2. stratified sampling (by known job placement) still delivers a
   calibrated power estimate at a 16-node budget;
3. that characterisation sizes a rack-level power cap with a stated
   exceedance probability, and shows the aggregation effect: the same
   headroom policy gets safer with scale.

Run:  python examples/operate_fleet.py
"""

import numpy as np

from repro.analysis.normality import normality_report
from repro.cluster.components import CpuModel, DramModel, FanModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.variability import ManufacturingVariation
from repro.core.capping import assess_cap, required_cap
from repro.core.stratified import stratified_sample
from repro.rng import default_rng
from repro.workloads.schedule import imbalanced

N_NODES = 1024
RACK = 32


def main() -> None:
    config = NodeConfig(
        cpu=CpuModel(idle_watts=22.0, peak_watts=145.0), n_cpus=2,
        dram=DramModel.for_capacity(128.0),
        fan=FanModel(max_watts=50.0), other_watts=28.0,
    )
    system = SystemModel(
        "prod-fleet", N_NODES, config,
        variation=ManufacturingVariation(sigma=0.02, outlier_rate=0.005),
        seed=67,
    )
    rng = default_rng(99)
    schedule = imbalanced(
        N_NODES, rng, spread=0.12, straggler_rate=0.06,
        straggler_level=0.45,
    )
    fleet = system.node_sample(0.92, schedule=schedule)
    truth = fleet.mean()

    print("== 1. screen the distribution ==")
    diag = normality_report(fleet.watts)
    print(f"skew {diag.skewness:+.2f}, outliers "
          f"{diag.outlier_fraction:.1%}, QQ r {diag.qq_r:.3f}")
    verdict = diag.is_approximately_normal()
    print(f"normality screen: {'pass' if verdict else 'FLAGGED'} -> "
          f"{'Eq. 5 SRS is fine' if verdict else 'use stratified sampling'}")
    print()

    print("== 2. stratified 16-node characterisation ==")
    labels = (schedule.multipliers < 0.7).astype(int)
    est = stratified_sample(fleet.watts, labels, 16, rng, method="neyman")
    ci = est.interval(0.95)
    print(f"estimate: {est.mean:.1f} W/node "
          f"(95% CI ±{ci.half_width:.1f} W); truth {truth:.1f} W")
    assert ci.contains(truth)
    print()

    print("== 3. cap sizing from the characterisation ==")
    for n in (RACK, 8 * RACK, N_NODES):
        cap = required_cap(fleet.watts, n, exceedance_target=0.01)
        a = assess_cap(fleet.watts, cap, n)
        print(f"  {n:5d} nodes: " + a.summary())
    print()
    naive = fleet.watts.mean() * RACK
    a_naive = assess_cap(fleet.watts, naive, RACK)
    print("a cap at the expected rack draw (no headroom) would trip "
          f"{a_naive.exceedance:.0%} of the time.")


if __name__ == "__main__":
    main()
