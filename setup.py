"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` works on offline environments whose setuptools
cannot PEP 517-build editable wheels (no ``wheel`` package).
"""

from setuptools import setup

setup()
