"""Tests for repro.traces.nodeset."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces.nodeset import NodePowerSample, NodeSample


class TestNodePowerSample:
    def test_basic(self):
        s = NodePowerSample(node_id=3, watts=250.0, metadata={"vid": 42})
        assert s.node_id == 3
        assert s.metadata["vid"] == 42

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            NodePowerSample(node_id=0, watts=-1.0)


class TestNodeSampleConstruction:
    def test_basic(self):
        ns = NodeSample([100.0, 200.0, 300.0], system="lrz")
        assert len(ns) == 3
        assert ns.system == "lrz"

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            NodeSample([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            NodeSample([1.0, -2.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            NodeSample([1.0, float("nan")])

    def test_default_node_ids(self):
        ns = NodeSample([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(ns.node_ids, [0, 1, 2])

    def test_explicit_node_ids(self):
        ns = NodeSample([1.0, 2.0], node_ids=[5, 9])
        np.testing.assert_array_equal(ns.node_ids, [5, 9])

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            NodeSample([1.0, 2.0], node_ids=[4, 4])

    def test_node_ids_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            NodeSample([1.0, 2.0], node_ids=[1])

    def test_immutable_watts(self):
        ns = NodeSample([1.0, 2.0])
        with pytest.raises(ValueError):
            ns.watts[0] = 7.0


class TestStatistics:
    def test_mean_std(self):
        ns = NodeSample([100.0, 200.0, 300.0])
        assert ns.mean() == pytest.approx(200.0)
        assert ns.std() == pytest.approx(100.0)

    def test_cv(self):
        ns = NodeSample([100.0, 200.0, 300.0])
        assert ns.coefficient_of_variation() == pytest.approx(0.5)

    def test_cv_zero_mean_rejected(self):
        ns = NodeSample([0.0, 0.0])
        with pytest.raises(ValueError, match="undefined"):
            ns.coefficient_of_variation()

    def test_total(self):
        assert NodeSample([100.0, 200.0]).total() == 300.0

    def test_single_node_std_zero(self):
        assert NodeSample([50.0]).std() == 0.0

    @given(st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=2,
                    max_size=80))
    def test_total_equals_mean_times_n(self, watts):
        ns = NodeSample(watts)
        assert ns.total() == pytest.approx(ns.mean() * len(ns), rel=1e-9)


class TestSubsetting:
    def test_take(self):
        ns = NodeSample([10.0, 20.0, 30.0], system="x")
        sub = ns.take([0, 2])
        np.testing.assert_array_equal(sub.watts, [10.0, 30.0])
        np.testing.assert_array_equal(sub.node_ids, [0, 2])
        assert sub.system == "x"

    def test_take_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            NodeSample([1.0, 2.0]).take([5])

    def test_take_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            NodeSample([1.0]).take([])

    def test_random_subset_size(self, rng):
        ns = NodeSample(np.arange(1.0, 101.0))
        sub = ns.random_subset(10, rng)
        assert len(sub) == 10
        # No duplicates: sampling without replacement.
        assert len(set(sub.node_ids.tolist())) == 10

    def test_random_subset_bounds(self, rng):
        ns = NodeSample([1.0, 2.0])
        with pytest.raises(ValueError):
            ns.random_subset(0, rng)
        with pytest.raises(ValueError):
            ns.random_subset(3, rng)

    def test_random_subset_deterministic(self):
        ns = NodeSample(np.arange(1.0, 51.0))
        a = ns.random_subset(5, np.random.default_rng(1)).node_ids
        b = ns.random_subset(5, np.random.default_rng(1)).node_ids
        np.testing.assert_array_equal(a, b)

    def test_subset_values_are_members(self, rng):
        ns = NodeSample(np.arange(1.0, 31.0))
        sub = ns.random_subset(7, rng)
        assert set(sub.watts.tolist()) <= set(ns.watts.tolist())


class TestResamplePopulation:
    def test_size(self, rng):
        ns = NodeSample([10.0, 20.0, 30.0])
        pop = ns.resample_population(100, rng)
        assert len(pop) == 100

    def test_values_from_source(self, rng):
        ns = NodeSample([10.0, 20.0, 30.0])
        pop = ns.resample_population(50, rng)
        assert set(pop.watts.tolist()) <= {10.0, 20.0, 30.0}

    def test_mean_converges_to_source(self, rng):
        ns = NodeSample(np.arange(1.0, 101.0))
        pop = ns.resample_population(200_000, rng)
        assert pop.mean() == pytest.approx(ns.mean(), rel=0.01)

    def test_bad_size(self, rng):
        with pytest.raises(ValueError):
            NodeSample([1.0]).resample_population(0, rng)


class TestSorting:
    def test_sorted_by_power(self):
        ns = NodeSample([30.0, 10.0, 20.0])
        s = ns.sorted_by_power()
        np.testing.assert_array_equal(s.watts, [10.0, 20.0, 30.0])
        np.testing.assert_array_equal(s.node_ids, [1, 2, 0])

    def test_repr(self):
        assert "NodeSample" in repr(NodeSample([1.0, 2.0], system="lrz"))
