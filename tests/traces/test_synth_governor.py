"""Tests for DVFS-governed trace synthesis and scheduled sampling."""

import numpy as np
import pytest

from repro.cluster.dvfs import DvfsGovernor
from repro.traces.synth import simulate_run
from repro.workloads.base import ConstantWorkload
from repro.workloads.schedule import balanced, imbalanced


@pytest.fixture()
def flat_wl():
    return ConstantWorkload(utilisation=0.9, core_s=600.0, setup_s=30.0,
                            teardown_s=15.0)


class TestGovernedRuns:
    def test_performance_governor_matches_ungoverned(self, small_system,
                                                     flat_wl):
        plain = simulate_run(small_system, flat_wl, dt=1.0, noise_cv=0.0)
        governed = simulate_run(
            small_system, flat_wl, dt=1.0, noise_cv=0.0,
            governor=DvfsGovernor.performance(),
        )
        np.testing.assert_allclose(
            governed.trace.watts, plain.trace.watts, rtol=1e-9
        )

    def test_downclock_reduces_power_in_period(self, small_system, flat_wl):
        gov = DvfsGovernor.stepped([0.5], [1.0, 0.8])
        run = simulate_run(small_system, flat_wl, dt=1.0, noise_cv=0.0,
                           governor=gov)
        core = run.core_trace()
        first_half = core.fraction_window(0.05, 0.45).mean_power()
        second_half = core.fraction_window(0.55, 0.95).mean_power()
        assert second_half < first_half * 0.95

    def test_setup_teardown_at_nominal(self, small_system, flat_wl):
        gov = DvfsGovernor.stepped([0.01], [0.7, 0.7])  # whole core slow
        run = simulate_run(small_system, flat_wl, dt=1.0, noise_cv=0.0,
                           governor=gov)
        plain = simulate_run(small_system, flat_wl, dt=1.0, noise_cv=0.0)
        # Setup power unchanged by the governor.
        t0, _ = run.core_window
        setup = run.trace.window(0.0, t0 - 1.0).mean_power()
        setup_plain = plain.trace.window(0.0, t0 - 1.0).mean_power()
        assert setup == pytest.approx(setup_plain, rel=1e-9)

    def test_subset_traces_respect_governor(self, small_system, flat_wl):
        gov = DvfsGovernor.stepped([0.5], [1.0, 0.75])
        run = simulate_run(small_system, flat_wl, dt=1.0, noise_cv=0.0,
                           governor=gov)
        sub = run.subset_trace(np.arange(8))
        core_t0, core_t1 = run.core_window
        mid = (core_t0 + core_t1) / 2
        early = sub.window(core_t0, mid).mean_power()
        late = sub.window(mid, core_t1).mean_power()
        assert late < early

    def test_continuous_governor_rejected(self, small_system, flat_wl):
        gov = DvfsGovernor(name="cont", profile=lambda x: 1.0 - 0.3 * x)
        with pytest.raises(ValueError, match="stepped"):
            simulate_run(small_system, flat_wl, dt=1.0, governor=gov)


class TestScheduledSampling:
    def test_balanced_schedule_matches_default(self, small_system):
        default = small_system.node_sample(0.9)
        scheduled = small_system.node_sample(
            0.9, schedule=balanced(small_system.n_nodes)
        )
        np.testing.assert_allclose(scheduled.watts, default.watts)

    def test_imbalance_widens_distribution(self, small_system, rng):
        sch = imbalanced(small_system.n_nodes, rng, spread=0.3)
        bal = small_system.node_sample(0.9)
        imb = small_system.node_sample(0.9, schedule=sch)
        assert (
            imb.coefficient_of_variation()
            > 3 * bal.coefficient_of_variation()
        )

    def test_wrong_size_schedule_rejected(self, small_system, rng):
        sch = imbalanced(small_system.n_nodes + 1, rng)
        with pytest.raises(ValueError, match="schedule covers"):
            small_system.node_sample(0.9, schedule=sch)

    def test_lighter_load_less_power(self, small_system):
        from repro.workloads.schedule import LoadSchedule

        half = LoadSchedule(np.full(small_system.n_nodes, 0.5))
        full = small_system.node_sample(0.9)
        reduced = small_system.node_sample(0.9, schedule=half)
        assert reduced.mean() < full.mean()
