"""Tests for repro.traces.powertrace."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces.powertrace import PowerTrace


def make_trace(watts, interval_s=1.0):
    return PowerTrace.from_uniform(watts, interval_s=interval_s)


class TestConstruction:
    def test_basic(self):
        tr = PowerTrace([0.0, 1.0, 2.0], [10.0, 20.0, 30.0])
        assert len(tr) == 3
        assert tr.start == 0.0
        assert tr.end == 2.0
        assert tr.duration == 2.0

    def test_single_sample(self):
        tr = PowerTrace([5.0], [42.0])
        assert len(tr) == 1
        assert tr.duration == 0.0
        assert tr.mean_power() == 42.0
        assert tr.energy() == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            PowerTrace([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            PowerTrace([0.0, 1.0], [1.0])

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PowerTrace([0.0, 1.0, 1.0], [1.0, 2.0, 3.0])

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PowerTrace([0.0, 1.0], [1.0, -0.5])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            PowerTrace([0.0, 1.0], [1.0, float("nan")])

    def test_inf_time_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            PowerTrace([0.0, float("inf")], [1.0, 1.0])

    def test_arrays_are_immutable(self):
        tr = make_trace([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            tr.watts[0] = 99.0
        with pytest.raises(ValueError):
            tr.times[0] = -1.0

    def test_source_mutation_does_not_leak(self):
        w = np.array([1.0, 2.0, 3.0])
        tr = PowerTrace([0.0, 1.0, 2.0], w)
        w[0] = 500.0
        assert tr.watts[0] == 1.0


class TestConstructors:
    def test_from_uniform_default_interval(self):
        tr = PowerTrace.from_uniform([5.0, 5.0, 5.0])
        np.testing.assert_allclose(tr.times, [0.0, 1.0, 2.0])

    def test_from_uniform_custom_start(self):
        tr = PowerTrace.from_uniform([1.0, 2.0], interval_s=0.5, start=10.0)
        np.testing.assert_allclose(tr.times, [10.0, 10.5])

    def test_from_uniform_bad_interval(self):
        with pytest.raises(ValueError, match="positive"):
            PowerTrace.from_uniform([1.0], interval_s=0.0)

    def test_constant(self):
        tr = PowerTrace.constant(50.0, 100.0)
        assert tr.mean_power() == pytest.approx(50.0)
        assert tr.duration == pytest.approx(100.0)

    def test_sum_traces(self):
        a = make_trace([1.0, 2.0, 3.0])
        b = make_trace([10.0, 20.0, 30.0])
        s = PowerTrace.sum_traces([a, b])
        np.testing.assert_allclose(s.watts, [11.0, 22.0, 33.0])

    def test_sum_traces_misaligned_rejected(self):
        a = make_trace([1.0, 2.0])
        b = PowerTrace([0.0, 2.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="timestamps differ"):
            PowerTrace.sum_traces([a, b])

    def test_sum_traces_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PowerTrace.sum_traces([])


class TestStatistics:
    def test_mean_power_flat(self, flat_trace):
        assert flat_trace.mean_power() == pytest.approx(100.0)

    def test_mean_power_ramp(self, ramp_trace):
        # Linear 0..100 over 100 s: trapezoidal mean is exactly 50.
        assert ramp_trace.mean_power() == pytest.approx(50.0)

    def test_energy_flat(self, flat_trace):
        assert flat_trace.energy() == pytest.approx(100.0 * 1000.0)

    def test_energy_ramp(self, ramp_trace):
        assert ramp_trace.energy() == pytest.approx(0.5 * 100.0 * 100.0)

    def test_max_min(self, ramp_trace):
        assert ramp_trace.max_power() == 100.0
        assert ramp_trace.min_power() == 0.0

    def test_sample_interval(self):
        tr = make_trace([1.0] * 10, interval_s=2.0)
        assert tr.sample_interval() == 2.0

    def test_sample_interval_single_sample_raises(self):
        with pytest.raises(ValueError, match="single-sample"):
            PowerTrace([0.0], [1.0]).sample_interval()

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2,
                 max_size=50)
    )
    def test_mean_between_min_and_max(self, watts):
        tr = make_trace(watts)
        assert tr.min_power() - 1e-9 <= tr.mean_power() <= tr.max_power() + 1e-9

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2,
                 max_size=50),
        st.floats(min_value=0.01, max_value=100.0),
    )
    def test_energy_equals_mean_times_duration(self, watts, interval):
        tr = make_trace(watts, interval_s=interval)
        assert tr.energy() == pytest.approx(
            tr.mean_power() * tr.duration, rel=1e-9, abs=1e-6
        )


class TestWindow:
    def test_window_full_span(self, flat_trace):
        w = flat_trace.window(flat_trace.start, flat_trace.end)
        assert w.mean_power() == pytest.approx(100.0)

    def test_window_interpolates_edges(self, ramp_trace):
        w = ramp_trace.window(10.5, 20.5)
        # Mean over [10.5, 20.5] of f(t)=t is 15.5.
        assert w.mean_power() == pytest.approx(15.5)

    def test_window_exact_sample_boundaries(self, ramp_trace):
        w = ramp_trace.window(10.0, 20.0)
        assert w.start == 10.0
        assert w.end == 20.0
        assert w.mean_power() == pytest.approx(15.0)

    def test_window_outside_span_rejected(self, flat_trace):
        with pytest.raises(ValueError, match="outside"):
            flat_trace.window(-10.0, 50.0)

    def test_window_bad_order_rejected(self, flat_trace):
        with pytest.raises(ValueError, match="t0 < t1"):
            flat_trace.window(50.0, 50.0)

    def test_window_mean_matches_parent_integral(self, ramp_trace):
        # Windowed mean must equal the trapezoidal average of the parent
        # over the window, for arbitrary fractional boundaries.
        w = ramp_trace.window(33.25, 77.75)
        expected = (77.75 + 33.25) / 2.0
        assert w.mean_power() == pytest.approx(expected)

    def test_fraction_window_middle_80(self, ramp_trace):
        w = ramp_trace.fraction_window(0.1, 0.9)
        assert w.start == pytest.approx(10.0)
        assert w.end == pytest.approx(90.0)

    def test_fraction_window_bad_bounds(self, ramp_trace):
        with pytest.raises(ValueError, match="f0 < f1"):
            ramp_trace.fraction_window(0.9, 0.1)

    def test_fraction_window_zero_duration_rejected(self):
        tr = PowerTrace([1.0], [5.0])
        with pytest.raises(ValueError, match="zero-duration"):
            tr.fraction_window(0.0, 1.0)

    @given(st.floats(min_value=0.0, max_value=0.79))
    def test_window_segments_partition_energy(self, split):
        tr = PowerTrace.from_uniform(
            np.abs(np.sin(np.arange(200) / 7.0)) * 100.0
        )
        mid = tr.start + (split + 0.2) * tr.duration
        left = tr.window(tr.start, mid)
        right = tr.window(mid, tr.end)
        assert left.energy() + right.energy() == pytest.approx(
            tr.energy(), rel=1e-9
        )


class TestTransforms:
    def test_shift(self, flat_trace):
        sh = flat_trace.shift(100.0)
        assert sh.start == flat_trace.start + 100.0
        np.testing.assert_array_equal(sh.watts, flat_trace.watts)

    def test_scale(self, flat_trace):
        sc = flat_trace.scale(64.0)
        assert sc.mean_power() == pytest.approx(6400.0)

    def test_scale_negative_rejected(self, flat_trace):
        with pytest.raises(ValueError, match="non-negative"):
            flat_trace.scale(-1.0)

    def test_add(self):
        a = make_trace([1.0, 2.0])
        b = make_trace([3.0, 4.0])
        np.testing.assert_allclose((a + b).watts, [4.0, 6.0])

    def test_add_misaligned_rejected(self):
        a = make_trace([1.0, 2.0])
        b = PowerTrace([0.5, 1.5], [1.0, 1.0])
        with pytest.raises(ValueError, match="share timestamps"):
            a + b


class TestEquality:
    def test_equal(self):
        assert make_trace([1.0, 2.0]) == make_trace([1.0, 2.0])

    def test_not_equal_watts(self):
        assert make_trace([1.0, 2.0]) != make_trace([1.0, 3.0])

    def test_not_equal_times(self):
        assert make_trace([1.0, 2.0]) != make_trace([1.0, 2.0], interval_s=2.0)

    def test_hash_consistent(self):
        assert hash(make_trace([1.0, 2.0])) == hash(make_trace([1.0, 2.0]))

    def test_repr(self):
        assert "PowerTrace" in repr(make_trace([1.0, 2.0]))
