"""Tests for repro.traces.synth — trace synthesis."""

import numpy as np
import pytest

from repro.traces.synth import simulate_run
from repro.workloads.base import ConstantWorkload


@pytest.fixture()
def run(small_system, gpu_hpl):
    return simulate_run(small_system, gpu_hpl, dt=2.0, seed=1)


class TestSimulateRun:
    def test_trace_spans_full_run(self, run, gpu_hpl):
        assert run.trace.start == 0.0
        assert run.trace.end >= gpu_hpl.phases.total_s - 2.0

    def test_core_window_matches_workload(self, run, gpu_hpl):
        assert run.core_window == gpu_hpl.phases.core_window()

    def test_core_trace_bounds(self, run):
        t0, t1 = run.core_window
        core = run.core_trace()
        assert core.start == pytest.approx(t0)
        assert core.end == pytest.approx(t1)

    def test_setup_power_below_core(self, run):
        t0, _ = run.core_window
        setup = run.trace.window(0.0, t0)
        assert setup.mean_power() < run.true_core_average()

    def test_deterministic_given_seed(self, small_system, gpu_hpl):
        a = simulate_run(small_system, gpu_hpl, dt=2.0, seed=9)
        b = simulate_run(small_system, gpu_hpl, dt=2.0, seed=9)
        np.testing.assert_array_equal(a.trace.watts, b.trace.watts)

    def test_different_seed_differs(self, small_system, gpu_hpl):
        a = simulate_run(small_system, gpu_hpl, dt=2.0, seed=1)
        b = simulate_run(small_system, gpu_hpl, dt=2.0, seed=2)
        assert not np.array_equal(a.trace.watts, b.trace.watts)

    def test_zero_noise_smooth(self, small_system):
        wl = ConstantWorkload(utilisation=0.9, core_s=600.0)
        run = simulate_run(small_system, wl, dt=1.0, noise_cv=0.0)
        core = run.core_trace()
        assert core.watts.std() / core.watts.mean() < 1e-9

    def test_noise_scale(self, small_system):
        wl = ConstantWorkload(utilisation=0.9, core_s=3600.0)
        run = simulate_run(small_system, wl, dt=1.0, noise_cv=0.01)
        core = run.core_trace()
        cv = core.watts.std() / core.watts.mean()
        assert 0.003 < cv < 0.03  # near the requested level

    def test_bad_dt(self, small_system, gpu_hpl):
        with pytest.raises(ValueError, match="dt must be positive"):
            simulate_run(small_system, gpu_hpl, dt=0.0)

    def test_bad_noise(self, small_system, gpu_hpl):
        with pytest.raises(ValueError, match="noise_cv"):
            simulate_run(small_system, gpu_hpl, noise_cv=-0.1)

    def test_gpu_run_tails_off(self, small_system, gpu_hpl):
        run = simulate_run(small_system, gpu_hpl, dt=2.0, noise_cv=0.0)
        core = run.core_trace()
        first = core.fraction_window(0.0, 0.2).mean_power()
        last = core.fraction_window(0.8, 1.0).mean_power()
        assert first > last * 1.05  # visible tail-off


class TestSubsetTrace:
    def test_full_subset_equals_trace(self, run, small_system):
        full = run.subset_trace(np.arange(small_system.n_nodes))
        np.testing.assert_allclose(full.watts, run.trace.watts, rtol=1e-9)

    def test_subset_scales_roughly_linearly(self, run, small_system):
        half = run.subset_trace(np.arange(small_system.n_nodes // 2))
        ratio = half.mean_power() / run.trace.mean_power()
        assert ratio == pytest.approx(0.5, abs=0.05)

    def test_subset_shares_common_mode_noise(self, run):
        a = run.subset_trace(np.array([0, 1, 2]))
        b = run.subset_trace(np.array([10, 11, 12]))
        # The same noise multiplies both subsets, so their per-sample
        # ratio is nearly constant (small drift from the fan model's
        # utilisation non-linearity is allowed) and the signals are
        # almost perfectly correlated.
        ratio = a.watts / b.watts
        assert ratio.std() / ratio.mean() < 0.01
        assert np.corrcoef(a.watts, b.watts)[0, 1] > 0.99

    def test_empty_subset_rejected(self, run):
        with pytest.raises(ValueError, match="non-empty"):
            run.subset_trace(np.array([], dtype=int))

    def test_out_of_range_rejected(self, run, small_system):
        with pytest.raises(ValueError, match="out of range"):
            run.subset_trace(np.array([small_system.n_nodes]))

    def test_duplicate_indices_rejected(self, run):
        with pytest.raises(ValueError, match="unique"):
            run.subset_trace(np.array([1, 1]))

    def test_disjoint_subsets_sum_to_total(self, run, small_system):
        n = small_system.n_nodes
        a = run.subset_trace(np.arange(n // 2))
        b = run.subset_trace(np.arange(n // 2, n))
        np.testing.assert_allclose(
            a.watts + b.watts, run.trace.watts, rtol=1e-9
        )


class TestNodeAveragePowers:
    def test_shape(self, run, small_system):
        watts = run.node_average_powers()
        assert watts.shape == (small_system.n_nodes,)

    def test_sum_matches_core_average(self, run):
        watts = run.node_average_powers()
        assert watts.sum() == pytest.approx(run.true_core_average(), rel=0.01)

    def test_all_positive(self, run):
        assert np.all(run.node_average_powers() > 0)

    def test_node_spread_reflects_variability(self, run):
        watts = run.node_average_powers()
        cv = watts.std() / watts.mean()
        assert 0.002 < cv < 0.10
