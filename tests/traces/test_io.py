"""Tests for repro.traces.io."""

import numpy as np
import pytest

from repro.traces.io import (
    read_node_sample_csv,
    read_trace_csv,
    trace_from_json,
    trace_to_json,
    write_node_sample_csv,
    write_trace_csv,
)
from repro.traces.nodeset import NodeSample
from repro.traces.powertrace import PowerTrace


class TestTraceCsv:
    def test_roundtrip(self, tmp_path, ramp_trace):
        path = tmp_path / "trace.csv"
        write_trace_csv(ramp_trace, path)
        back = read_trace_csv(path)
        np.testing.assert_allclose(back.times, ramp_trace.times, atol=1e-6)
        np.testing.assert_allclose(back.watts, ramp_trace.watts, atol=1e-6)

    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,100\n1,101\n")
        with pytest.raises(ValueError, match="header"):
            read_trace_csv(path)

    def test_malformed_row_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,watts\n0.0,100.0\nxyz,1\n")
        with pytest.raises(ValueError, match=":3"):
            read_trace_csv(path)

    def test_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time_s,watts\n0.0\n")
        with pytest.raises(ValueError, match="two columns"):
            read_trace_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time_s,watts\n")
        with pytest.raises(ValueError, match="no samples"):
            read_trace_csv(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("time_s,watts\n0.0,10.0\n\n1.0,20.0\n")
        assert len(read_trace_csv(path)) == 2

    def test_nan_power_rejected_with_lineno(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("time_s,watts\n0.0,10.0\n1.0,nan\n")
        with pytest.raises(ValueError, match=r"nan\.csv:3: non-finite power"):
            read_trace_csv(path)

    def test_inf_timestamp_rejected_with_lineno(self, tmp_path):
        path = tmp_path / "inf.csv"
        path.write_text("time_s,watts\n0.0,10.0\ninf,11.0\n")
        with pytest.raises(ValueError, match=r"inf\.csv:3: non-finite time"):
            read_trace_csv(path)

    def test_negative_power_rejected_with_lineno(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("time_s,watts\n0.0,10.0\n1.0,-3.5\n")
        with pytest.raises(ValueError, match=r"neg\.csv:3: negative power"):
            read_trace_csv(path)

    def test_non_monotonic_timestamp_rejected(self, tmp_path):
        path = tmp_path / "skew.csv"
        path.write_text("time_s,watts\n0.0,10.0\n2.0,11.0\n1.5,12.0\n")
        with pytest.raises(ValueError, match=r"skew\.csv:4.*does not increase"):
            read_trace_csv(path)

    def test_duplicate_timestamp_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text("time_s,watts\n0.0,10.0\n0.0,11.0\n")
        with pytest.raises(ValueError, match=r"dup\.csv:3.*does not increase"):
            read_trace_csv(path)


class TestNodeSampleCsv:
    def test_roundtrip(self, tmp_path):
        sample = NodeSample([210.5, 208.1, 215.7], system="lrz",
                            node_ids=[3, 7, 12])
        path = tmp_path / "nodes.csv"
        write_node_sample_csv(sample, path)
        back = read_node_sample_csv(path, system="lrz")
        np.testing.assert_allclose(back.watts, sample.watts, atol=1e-6)
        np.testing.assert_array_equal(back.node_ids, sample.node_ids)
        assert back.system == "lrz"

    def test_header_required(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,power\n0,100\n")
        with pytest.raises(ValueError, match="header"):
            read_node_sample_csv(path)

    def test_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("node_id,watts\n")
        with pytest.raises(ValueError, match="no nodes"):
            read_node_sample_csv(path)

    def test_nan_power_rejected_with_lineno(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("node_id,watts\n0,210.0\n1,nan\n")
        with pytest.raises(ValueError, match=r"nan\.csv:3: non-finite power"):
            read_node_sample_csv(path)

    def test_negative_power_rejected_with_lineno(self, tmp_path):
        path = tmp_path / "neg.csv"
        path.write_text("node_id,watts\n0,210.0\n1,-1.0\n")
        with pytest.raises(ValueError, match=r"neg\.csv:3: negative power"):
            read_node_sample_csv(path)


class TestJson:
    def test_roundtrip_with_metadata(self, flat_trace):
        text = trace_to_json(flat_trace, metadata={"system": "lrz",
                                                   "meter": "pdu-7"})
        back, meta = trace_from_json(text)
        assert back == flat_trace
        assert meta == {"system": "lrz", "meter": "pdu-7"}

    def test_format_checked(self):
        with pytest.raises(ValueError, match="unrecognised format"):
            trace_from_json('{"format": "other", "times": [], "watts": []}')

    def test_default_metadata_empty(self, flat_trace):
        _, meta = trace_from_json(trace_to_json(flat_trace))
        assert meta == {}
