"""Tests for repro.traces.ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.ops import (
    align,
    integrate_energy,
    mean_over_fraction,
    resample,
    segment_average,
    sliding_window_averages,
    split_fractions,
)
from repro.traces.powertrace import PowerTrace


@pytest.fixture()
def sine_trace():
    t = np.linspace(0.0, 1000.0, 2001)
    return PowerTrace(t, 100.0 + 20.0 * np.sin(t / 50.0))


class TestSegmentAverage:
    def test_flat_segments_equal(self, flat_trace):
        assert segment_average(flat_trace, 0.0, 0.2) == pytest.approx(100.0)
        assert segment_average(flat_trace, 0.8, 1.0) == pytest.approx(100.0)

    def test_ramp_first_and_last(self, ramp_trace):
        # f(t)=t on [0,100]: first 20% averages 10, last 20% averages 90.
        assert segment_average(ramp_trace, 0.0, 0.2) == pytest.approx(10.0)
        assert segment_average(ramp_trace, 0.8, 1.0) == pytest.approx(90.0)

    def test_full_equals_mean(self, sine_trace):
        assert segment_average(sine_trace, 0.0, 1.0) == pytest.approx(
            sine_trace.mean_power()
        )

    def test_mean_over_fraction(self, ramp_trace):
        assert mean_over_fraction(ramp_trace, 0.4, 0.2) == pytest.approx(50.0)

    @given(st.floats(min_value=0.0, max_value=0.8))
    def test_segment_bounded_by_extremes(self, f0):
        t = np.linspace(0, 100, 301)
        tr = PowerTrace(t, 50 + 30 * np.cos(t / 9.0))
        avg = segment_average(tr, f0, f0 + 0.2)
        assert tr.min_power() - 1e-9 <= avg <= tr.max_power() + 1e-9


class TestSplitFractions:
    def test_split_three_way(self, ramp_trace):
        parts = split_fractions(ramp_trace, [0.1, 0.9])
        assert len(parts) == 3
        assert parts[0].duration == pytest.approx(10.0)
        assert parts[1].duration == pytest.approx(80.0)
        assert parts[2].duration == pytest.approx(10.0)

    def test_split_energy_conserved(self, sine_trace):
        parts = split_fractions(sine_trace, [0.3, 0.6])
        assert sum(p.energy() for p in parts) == pytest.approx(
            sine_trace.energy(), rel=1e-9
        )

    def test_empty_edges_returns_whole(self, flat_trace):
        assert split_fractions(flat_trace, []) == [flat_trace]

    def test_bad_edges_rejected(self, flat_trace):
        with pytest.raises(ValueError, match="strictly in"):
            split_fractions(flat_trace, [0.0, 0.5])
        with pytest.raises(ValueError, match="strictly increasing"):
            split_fractions(flat_trace, [0.5, 0.5])


class TestSlidingWindows:
    def test_flat_trace_all_equal(self, flat_trace):
        starts, avgs = sliding_window_averages(flat_trace, 0.2)
        np.testing.assert_allclose(avgs, 100.0, rtol=1e-9)

    def test_ramp_monotone_averages(self, ramp_trace):
        starts, avgs = sliding_window_averages(
            ramp_trace, 0.2, step_fraction=0.05
        )
        assert np.all(np.diff(avgs) > 0)

    def test_window_average_matches_direct(self, sine_trace):
        starts, avgs = sliding_window_averages(
            sine_trace, 0.16, within=(0.1, 0.9), step_fraction=0.1
        )
        for s, a in zip(starts, avgs):
            direct = segment_average(sine_trace, s, s + 0.16)
            assert a == pytest.approx(direct, rel=1e-6)

    def test_within_restricts_placement(self, ramp_trace):
        starts, _ = sliding_window_averages(
            ramp_trace, 0.16, within=(0.1, 0.9), step_fraction=0.01
        )
        assert starts.min() >= 0.1 - 1e-12
        assert starts.max() + 0.16 <= 0.9 + 1e-9

    def test_window_too_big_rejected(self, flat_trace):
        with pytest.raises(ValueError, match="does not fit"):
            sliding_window_averages(flat_trace, 0.9, within=(0.1, 0.9))

    def test_bad_placement_range(self, flat_trace):
        with pytest.raises(ValueError, match="invalid placement"):
            sliding_window_averages(flat_trace, 0.1, within=(0.9, 0.1))

    def test_single_sample_trace(self):
        tr = PowerTrace([0.0], [42.0])
        starts, avgs = sliding_window_averages(tr, 0.5, step_fraction=0.25)
        np.testing.assert_allclose(avgs, 42.0)

    @settings(max_examples=25)
    @given(st.integers(min_value=3, max_value=60))
    def test_quadratic_interpolation_exact_for_linear(self, n):
        # For piecewise-linear power, windowed means computed via the
        # cumulative-integral path must be exact, not first-order.
        t = np.linspace(0, 10, n)
        tr = PowerTrace(t, 3.0 * t + 1.0)
        starts, avgs = sliding_window_averages(tr, 0.3, step_fraction=0.07)
        for s, a in zip(starts, avgs):
            mid_t = tr.start + (s + 0.15) * tr.duration
            assert a == pytest.approx(3.0 * mid_t + 1.0, rel=1e-9)


class TestResample:
    def test_resample_flat(self, flat_trace):
        r = resample(flat_trace, 10.0)
        assert r.mean_power() == pytest.approx(100.0)
        assert r.sample_interval() == pytest.approx(10.0)

    def test_resample_preserves_endpoints(self, ramp_trace):
        r = resample(ramp_trace, 7.0)
        assert r.start == ramp_trace.start
        assert r.end == pytest.approx(ramp_trace.end)

    def test_resample_linear_exact(self, ramp_trace):
        r = resample(ramp_trace, 0.25)
        np.testing.assert_allclose(r.watts, r.times, atol=1e-9)

    def test_bad_interval(self, flat_trace):
        with pytest.raises(ValueError, match="positive"):
            resample(flat_trace, -1.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="zero-duration"):
            resample(PowerTrace([0.0], [1.0]), 1.0)

    def test_end_sample_appended_when_grid_falls_short(self, ramp_trace):
        # 100 s duration with a 7 s grid: the last uniform tick is 98 s,
        # so the trace end must be appended as an extra sample.
        r = resample(ramp_trace, 7.0)
        assert r.times[-1] == pytest.approx(100.0)
        assert r.times[-1] - r.times[-2] == pytest.approx(2.0)
        assert r.watts[-1] == pytest.approx(ramp_trace.watts[-1])

    def test_no_duplicate_end_sample_when_grid_lands_exactly(
        self, ramp_trace
    ):
        r = resample(ramp_trace, 10.0)
        assert r.times.size == 11
        assert r.times[-1] == pytest.approx(100.0)
        assert np.all(np.diff(r.times) > 0)

    def test_interval_longer_than_duration(self, ramp_trace):
        # Grid collapses to the start sample; the end is appended, so
        # the result still spans the trace with exactly two samples.
        r = resample(ramp_trace, 250.0)
        assert r.times.size == 2
        assert r.start == pytest.approx(ramp_trace.start)
        assert r.end == pytest.approx(ramp_trace.end)
        assert r.mean_power() == pytest.approx(ramp_trace.mean_power())


class TestAlign:
    def test_align_overlapping(self):
        a = PowerTrace.constant(10.0, 100.0, start=0.0)
        b = PowerTrace.constant(20.0, 100.0, start=50.0)
        aa, bb = align([a, b])
        np.testing.assert_array_equal(aa.times, bb.times)
        assert aa.start == pytest.approx(50.0)
        assert aa.end == pytest.approx(100.0)

    def test_aligned_traces_summable(self):
        a = PowerTrace.constant(10.0, 100.0, start=0.0)
        b = PowerTrace.constant(20.0, 80.0, start=10.0)
        aa, bb = align([a, b])
        s = aa + bb
        assert s.mean_power() == pytest.approx(30.0)

    def test_no_overlap_rejected(self):
        a = PowerTrace.constant(10.0, 10.0, start=0.0)
        b = PowerTrace.constant(10.0, 10.0, start=100.0)
        with pytest.raises(ValueError, match="no overlapping"):
            align([a, b])

    def test_touching_spans_rejected(self):
        # End of one trace == start of the other: zero-length overlap
        # is not a usable span either.
        a = PowerTrace.constant(10.0, 10.0, start=0.0)
        b = PowerTrace.constant(10.0, 10.0, start=10.0)
        with pytest.raises(ValueError, match="no overlapping"):
            align([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            align([])


class TestIntegrateEnergy:
    def test_full_trace(self, flat_trace):
        assert integrate_energy(flat_trace) == pytest.approx(100.0 * 1000.0)

    def test_sub_window(self, flat_trace):
        assert integrate_energy(flat_trace, 100.0, 200.0) == pytest.approx(
            100.0 * 100.0
        )

    def test_default_bounds(self, ramp_trace):
        assert integrate_energy(ramp_trace, t0=None, t1=50.0) == pytest.approx(
            0.5 * 50.0 * 50.0
        )

    def test_additivity(self, ramp_trace):
        whole = integrate_energy(ramp_trace)
        parts = integrate_energy(ramp_trace, 0.0, 30.0) + integrate_energy(
            ramp_trace, 30.0, 100.0
        )
        assert parts == pytest.approx(whole, rel=1e-9)
