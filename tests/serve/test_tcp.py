"""End-to-end TCP tests: real sockets on localhost, raw HTTP bytes.

These cover the transport glue (`serve_tcp` / `handle_connection`) the
in-process dispatch tests can't: keep-alive across requests, the
malformed-request close path, and a full session lifecycle over a real
connection.  No timing assertions — sockets are real but the service
clock is still simulated.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve import ServiceConfig, TelemetryApp
from repro.stream.ingest import SimClock

from .conftest import batch_to_json


async def read_response(reader: asyncio.StreamReader) -> tuple[int, dict, dict]:
    """Parse one HTTP response: (status, headers, json body)."""
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    body = await reader.readexactly(int(headers["content-length"]))
    return status, headers, json.loads(body)


def request_bytes(
    method: str,
    target: str,
    *,
    tenant: str = "",
    body: bytes = b"",
    close: bool = False,
) -> bytes:
    lines = [f"{method} {target} HTTP/1.1", "Host: localhost"]
    if tenant:
        lines.append(f"X-Tenant: {tenant}")
    if body:
        lines.append("Content-Type: application/json")
        lines.append(f"Content-Length: {len(body)}")
    if close:
        lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


class TestTcpTransport:
    def test_keep_alive_lifecycle(self, session_config, serve_batches):
        """Create, ingest, verdict and close — one connection."""

        async def scenario():
            clock = SimClock(dt_s=1.0)
            app = TelemetryApp(clock, ServiceConfig())
            server = await app.serve_tcp("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            try:
                writer.write(request_bytes("GET", "/healthz"))
                await writer.drain()
                status, headers, payload = await read_response(reader)
                assert status == 200 and payload["ok"] is True
                assert headers["connection"] == "keep-alive"

                writer.write(request_bytes(
                    "POST", "/v1/sessions", tenant="acme",
                    body=json.dumps(session_config).encode(),
                ))
                await writer.drain()
                status, _, payload = await read_response(reader)
                assert status == 201
                sid = payload["session"]["session_id"]

                for batch in serve_batches:
                    writer.write(request_bytes(
                        "POST", f"/v1/sessions/{sid}/batches",
                        tenant="acme",
                        body=json.dumps(batch_to_json(batch)).encode(),
                    ))
                    await writer.drain()
                    status, _, payload = await read_response(reader)
                    assert status == 202

                writer.write(request_bytes(
                    "GET", f"/v1/sessions/{sid}/verdict", tenant="acme"
                ))
                await writer.drain()
                status, _, verdict = await read_response(reader)
                assert status == 200
                assert verdict["samples_ingested"] == sum(
                    b.n_samples for b in serve_batches
                )

                writer.write(request_bytes(
                    "DELETE", f"/v1/sessions/{sid}", tenant="acme",
                    close=True,
                ))
                await writer.drain()
                status, headers, payload = await read_response(reader)
                assert status == 200
                assert headers["connection"] == "close"
                assert payload["summary"]["samples_ingested"] == sum(
                    b.n_samples for b in serve_batches
                )
                assert await reader.read() == b""  # server closed
            finally:
                writer.close()
                server.close()
                await server.wait_closed()
                await app.shutdown()

        asyncio.run(scenario())

    def test_malformed_request_gets_400_and_close(self):
        async def scenario():
            clock = SimClock(dt_s=1.0)
            app = TelemetryApp(clock, ServiceConfig())
            server = await app.serve_tcp("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            try:
                writer.write(b"THIS IS NOT HTTP\r\n\r\n")
                await writer.drain()
                status, headers, payload = await read_response(reader)
                assert status in (400, 405)
                assert headers["connection"] == "close"
                assert "error" in payload
                assert await reader.read() == b""
            finally:
                writer.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())

    def test_parallel_connections(self, session_config):
        """Several tenants on separate connections, concurrently."""

        async def one_client(port: int, tenant: str) -> str:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            try:
                writer.write(request_bytes(
                    "POST", "/v1/sessions", tenant=tenant,
                    body=json.dumps(session_config).encode(),
                    close=True,
                ))
                await writer.drain()
                status, _, payload = await read_response(reader)
                assert status == 201
                return payload["session"]["session_id"]
            finally:
                writer.close()

        async def scenario():
            clock = SimClock(dt_s=1.0)
            app = TelemetryApp(clock, ServiceConfig())
            server = await app.serve_tcp("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                ids = await asyncio.gather(*(
                    one_client(port, f"tenant-{i}") for i in range(8)
                ))
                assert len(set(ids)) == 8
                assert len(app.registry) == 8
            finally:
                server.close()
                await server.wait_closed()
                await app.shutdown()

        asyncio.run(scenario())
