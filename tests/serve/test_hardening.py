"""Malformed-input hardening tests for the telemetry service.

Adversarial bytes — garbage JSON, mis-shapen batches, corrupt RPWR
frames, fuzzed frame streams — must come back as *structured* 4xx
responses, never a 500, and must never corrupt session state: after
any rejected request the session keeps ingesting and its verdict stays
exactly consistent.  The frame fuzzing reuses the seeded mutation
approach of the wire chaos suite.

Every test runs its whole scenario inside one event loop (sessions own
worker tasks bound to the loop they were created on).
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import rng
from repro.serve import ServiceConfig, TelemetryApp, make_request
from repro.serve.app import RPWR_CONTENT_TYPE
from repro.stream.ingest import SimClock
from repro.wire.session import WireWriter

from .conftest import batch_to_json


class Harness:
    """One app + one session, driven inside a single event loop."""

    def __init__(self, session_config: dict) -> None:
        self.clock = SimClock(dt_s=1.0)
        self.app = TelemetryApp(self.clock, ServiceConfig())
        self.session_config = session_config
        self.session_id = ""

    async def open(self) -> None:
        response = await self.app.dispatch(make_request(
            "POST", "/v1/sessions", tenant="acme",
            body=json.dumps(self.session_config).encode(),
        ))
        assert response.status == 201
        self.session_id = json.loads(
            response.body
        )["session"]["session_id"]

    async def post(self, body: bytes,
                   content_type: str = "application/json"):
        return await self.app.dispatch(make_request(
            "POST", f"/v1/sessions/{self.session_id}/batches",
            tenant="acme", body=body, content_type=content_type,
        ))

    @property
    def session(self):
        return self.app.registry.get("acme", self.session_id)

    @property
    def ingested(self) -> int:
        return self.session.state.samples_ingested

    async def assert_still_functional(self, serve_batches) -> None:
        """A known-good batch still lands and folds after the abuse."""
        before = self.ingested
        good = json.dumps(batch_to_json(serve_batches[0])).encode()
        response = await self.post(good)
        assert response.status == 202
        await self.session.drain()
        assert self.ingested == before + serve_batches[0].n_samples
        assert not self.session.worker_errors


@pytest.fixture()
def harness(session_config) -> Harness:
    return Harness(session_config)


def frame_bytes(serve_batches) -> list[bytes]:
    writer = WireWriter(codec="raw64")
    return [writer.write(b).data for b in serve_batches]


class TestMalformedJson:
    @pytest.mark.parametrize("body", [
        b"{not json at all",
        b"\xff\xfe\x00garbage",
        b"[1, 2, 3",
        b'{"times": [0.0]',  # truncated mid-object
    ])
    def test_garbage_json_structured_400(
        self, harness, serve_batches, body
    ):
        async def scenario():
            await harness.open()
            response = await harness.post(body)
            assert response.status == 400
            assert json.loads(
                response.body
            )["error"]["code"] == "bad-json"
            assert harness.ingested == 0
            await harness.assert_still_functional(serve_batches)

        asyncio.run(scenario())

    def test_empty_body_400(self, harness):
        async def scenario():
            await harness.open()
            response = await harness.post(b"")
            assert response.status == 400
            assert json.loads(
                response.body
            )["error"]["code"] == "empty-body"

        asyncio.run(scenario())

    def test_non_object_batch_400(self, harness, serve_batches):
        async def scenario():
            await harness.open()
            response = await harness.post(b"[1, 2, 3]")
            assert response.status == 400
            assert json.loads(
                response.body
            )["error"]["code"] == "bad-batch"
            await harness.assert_still_functional(serve_batches)

        asyncio.run(scenario())


class TestMalformedBatches:
    @pytest.mark.parametrize("changes, fragment", [
        ({"times": None}, "1-D"),
        ({"watts": "many"}, "unparseable"),
        ({"times": []}, "non-empty"),
        ({"watts": [1.0, 2.0]}, "2-D"),
        ({"times": [0.0, 1.0, float("nan")]}, "finite"),
        ({"watts": [[1.0, 2.0], [3.0, float("inf")]]}, "finite"),
        ({"watts": [[-5.0, 3.0]]}, "non-negative"),
        ({"times": [0.0, 0.0, 1.0]}, "strictly increasing"),
        ({"node_ids": [1, 2, 3]}, "shapes"),
    ])
    def test_invalid_batch_fields_400(
        self, harness, serve_batches, changes, fragment
    ):
        base = batch_to_json(serve_batches[0])
        # json.dumps refuses nan/inf with allow_nan=False, which is the
        # *client* failing; simulate a hostile client that emits them.
        body = json.dumps({**base, **changes}).encode()

        async def scenario():
            await harness.open()
            response = await harness.post(body)
            assert response.status == 400
            error = json.loads(response.body)["error"]
            assert error["code"] == "bad-batch"
            assert fragment in error["message"]
            assert harness.ingested == 0
            await harness.assert_still_functional(serve_batches)

        asyncio.run(scenario())

    def test_missing_keys_reported(self, harness, serve_batches):
        base = batch_to_json(serve_batches[0])
        del base["watts"]

        async def scenario():
            await harness.open()
            response = await harness.post(json.dumps(base).encode())
            assert response.status == 400
            assert "watts" in json.loads(
                response.body
            )["error"]["message"]

        asyncio.run(scenario())

    def test_cell_cap_enforced(
        self, harness, serve_batches, monkeypatch
    ):
        import repro.serve.sessions as sessions_mod

        monkeypatch.setattr(sessions_mod, "MAX_BATCH_CELLS", 10)
        body = json.dumps(batch_to_json(serve_batches[0])).encode()

        async def scenario():
            await harness.open()
            response = await harness.post(body)
            assert response.status == 400
            assert "cells exceeds" in json.loads(
                response.body
            )["error"]["message"]
            assert harness.ingested == 0

        asyncio.run(scenario())


class TestCorruptFrames:
    def test_pure_garbage_frames(self, harness, serve_batches):
        frames = frame_bytes(serve_batches)
        garbage = bytes(reversed(frames[0]))

        async def scenario():
            await harness.open()
            response = await harness.post(
                garbage, content_type=RPWR_CONTENT_TYPE
            )
            # Either rejected as corrupt or accepted-zero while the
            # parser hunts for the next magic — never a 5xx, never
            # folded samples.
            assert response.status in (202, 400)
            payload = json.loads(response.body)
            if response.status == 400:
                assert payload["error"]["code"] == "corrupt-frames"
            assert harness.ingested == 0
            health = await harness.app.dispatch(
                make_request("GET", "/healthz")
            )
            assert health.status == 200

        asyncio.run(scenario())

    def test_flipped_crc_detected(self, harness, serve_batches):
        frames = frame_bytes(serve_batches)
        corrupt = bytearray(frames[0])
        corrupt[-1] ^= 0xFF  # break the CRC trailer

        async def scenario():
            await harness.open()
            response = await harness.post(
                bytes(corrupt), content_type=RPWR_CONTENT_TYPE
            )
            assert response.status == 400
            payload = json.loads(response.body)
            assert payload["error"]["code"] == "corrupt-frames"
            assert payload["error"]["ingest"]["frames_corrupt"] >= 1
            assert harness.ingested == 0

        asyncio.run(scenario())

    def test_split_frame_reassembles(self, harness, serve_batches):
        """A frame truncated mid-request is held, not dropped: the
        remainder arriving in the next request completes it."""
        frames = frame_bytes(serve_batches)
        head, tail = frames[0][:20], frames[0][20:]

        async def scenario():
            await harness.open()
            first = await harness.post(
                head, content_type=RPWR_CONTENT_TYPE
            )
            assert first.status == 202
            assert json.loads(
                first.body
            )["ingest"]["batches_accepted"] == 0
            assert harness.ingested == 0
            second = await harness.post(
                tail, content_type=RPWR_CONTENT_TYPE
            )
            assert second.status == 202
            assert json.loads(
                second.body
            )["ingest"]["batches_accepted"] == 1
            await harness.session.drain()
            assert harness.ingested == serve_batches[0].n_samples

        asyncio.run(scenario())

    def test_fuzzed_stream_never_500s(self, harness, serve_batches):
        """Seeded byte-flip fuzzing over a whole frame stream: every
        response is structured JSON, the service never 500s, and the
        worker never trips on what got through."""
        stream = b"".join(frame_bytes(serve_batches))
        gen = rng.stream(1234, "serve.fuzz.frames")
        blobs = []
        for _ in range(30):
            blob = bytearray(stream)
            for _ in range(int(gen.integers(1, 24))):
                blob[int(gen.integers(0, len(blob)))] ^= int(
                    gen.integers(1, 256)
                )
            blobs.append(bytes(blob))

        async def scenario():
            await harness.open()
            for blob in blobs:
                response = await harness.post(
                    blob, content_type=RPWR_CONTENT_TYPE
                )
                assert response.status in (202, 400, 429)
                json.loads(response.body)  # always a JSON document
            await harness.session.drain()
            assert not harness.session.worker_errors

        asyncio.run(scenario())


class TestOversizedPayloads:
    def test_body_cap_is_config_driven(self):
        from repro.serve.http import ProtocolError, read_request

        async def scenario():
            reader = asyncio.StreamReader()
            body = b"x" * 100
            reader.feed_data(
                b"POST /v1/sessions HTTP/1.1\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            reader.feed_eof()
            with pytest.raises(ProtocolError) as excinfo:
                await read_request(reader, max_body_bytes=64)
            return excinfo.value

        error = asyncio.run(scenario())
        assert error.status == 413
