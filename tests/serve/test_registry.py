"""Property tests for the session registry (eviction safety).

Hypothesis drives arbitrary interleavings of session creation, ingest,
consumer stalls, clock jumps and eviction sweeps, and checks the
registry's core promise: *eviction never drops work* — a session with
accepted-but-unfolded batches survives every sweep, and by shutdown
every accepted batch has been folded into its stream state.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.sessions import SessionConfig, SessionRegistry
from repro.stream.ingest import SampleBatch, SimClock

CONFIG = SessionConfig(
    population=2,
    core_t0_s=0.0,
    core_t1_s=100.0,
    interval_s=1.0,
    queue_capacity=4,
)


def tiny_batch(t0_s: float) -> SampleBatch:
    """A 2-tick x 2-node batch starting at ``t0_s``."""
    return SampleBatch(
        times=np.array([t0_s, t0_s + 1.0]),
        watts=np.array([[100.0, 101.0], [99.0, 100.0]]),
        node_ids=np.array([0, 1]),
    )


# An operation stream over a small tenant pool.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.sampled_from(["a", "b"])),
        st.tuples(st.just("submit"), st.integers(0, 5)),
        st.tuples(st.just("stall"), st.integers(0, 5)),
        st.tuples(st.just("wake"), st.integers(0, 5)),
        st.tuples(st.just("advance"), st.integers(1, 400)),
        st.tuples(st.just("sweep"), st.just(0)),
    ),
    min_size=1,
    max_size=40,
)


class TestRegistryEvictionSafety:
    @settings(max_examples=60, deadline=None)
    @given(schedule=ops)
    def test_eviction_never_drops_pending_work(self, schedule):
        async def scenario():
            clock = SimClock(dt_s=1.0)
            registry = SessionRegistry(
                idle_timeout_s=100.0, max_sessions_per_tenant=8,
                max_sessions_total=16,
            )
            live: list = []  # sessions in creation order
            accepted: dict[str, int] = {}

            for op, arg in schedule:
                if op == "create":
                    if (
                        registry.tenant_count(arg)
                        < registry.max_sessions_per_tenant
                    ):
                        session = registry.create(
                            arg, CONFIG, now_s=clock.now_s
                        )
                        live.append(session)
                        accepted[session.session_id] = 0
                elif op == "submit" and live:
                    session = live[arg % len(live)]
                    if not session.closed:
                        if session.try_submit(
                            tiny_batch(float(session.batches_accepted)),
                            n_bytes=64, now_s=clock.now_s,
                        ):
                            accepted[session.session_id] += 1
                    await asyncio.sleep(0)
                elif op == "stall" and live:
                    live[arg % len(live)].gate.clear()
                elif op == "wake" and live:
                    live[arg % len(live)].gate.set()
                    await asyncio.sleep(0)
                elif op == "advance":
                    clock.advance(arg)
                elif op == "sweep":
                    victims = set(registry.evictable(clock.now_s))
                    # THE invariant: nothing evictable has pending work.
                    assert all(
                        s.pending_batches == 0 for s in victims
                    )
                    await registry.evict_idle(clock.now_s)

            # Shutdown: wake everyone, close everything, and check that
            # every accepted batch was folded into its stream state.
            for session in live:
                session.gate.set()
            await registry.close_all()
            for session in live:
                assert session.closed
                assert session.pending_batches == 0
                assert session.batches_folded == accepted[
                    session.session_id
                ]
                assert not session.worker_errors
            return True

        assert asyncio.run(scenario())

    @settings(max_examples=40, deadline=None)
    @given(
        n_sessions=st.integers(1, 6),
        idle_jumps=st.lists(st.integers(1, 300), min_size=1, max_size=8),
    )
    def test_eviction_is_exactly_the_idle_set(self, n_sessions, idle_jumps):
        """After each jump, the evicted set is precisely the sessions
        whose last activity predates the deadline."""

        async def scenario():
            clock = SimClock(dt_s=1.0)
            registry = SessionRegistry(idle_timeout_s=50.0)
            stamps = {}
            for i in range(n_sessions):
                session = registry.create(
                    "t", CONFIG, now_s=clock.now_s
                )
                stamps[session.session_id] = clock.now_s
                clock.advance(7)
            for jump in idle_jumps:
                clock.advance(jump)
                deadline_s = clock.now_s - 50.0
                expected = sorted(
                    sid for sid, t in stamps.items()
                    if t <= deadline_s
                )
                evicted = await registry.evict_idle(clock.now_s)
                assert sorted(evicted) == expected
                for sid in evicted:
                    del stamps[sid]
            assert len(registry) == len(stamps)
            await registry.close_all()
            return True

        assert asyncio.run(scenario())


class TestRegistryBasics:
    def test_caps_enforced(self):
        async def scenario():
            registry = SessionRegistry(
                max_sessions_per_tenant=2, max_sessions_total=3
            )
            registry.create("a", CONFIG, now_s=0.0)
            registry.create("a", CONFIG, now_s=0.0)
            with pytest.raises(ValueError, match="tenant"):
                registry.create("a", CONFIG, now_s=0.0)
            registry.create("b", CONFIG, now_s=0.0)
            with pytest.raises(ValueError, match="capacity"):
                registry.create("b", CONFIG, now_s=0.0)
            await registry.close_all()

        asyncio.run(scenario())

    def test_ids_deterministic(self):
        async def scenario():
            registry = SessionRegistry()
            ids = [
                registry.create("t", CONFIG, now_s=0.0).session_id
                for _ in range(3)
            ]
            assert ids == ["s-00000000", "s-00000001", "s-00000002"]
            await registry.close_all()

        asyncio.run(scenario())

    def test_close_returns_summary_and_removes(self):
        async def scenario():
            registry = SessionRegistry()
            session = registry.create("t", CONFIG, now_s=0.0)
            session.try_submit(tiny_batch(0.0), n_bytes=8, now_s=0.0)
            summary = await registry.close("t", session.session_id)
            assert summary["samples_ingested"] == 4
            assert len(registry) == 0
            with pytest.raises(KeyError):
                registry.get("t", session.session_id)

        asyncio.run(scenario())
