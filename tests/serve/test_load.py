"""Deterministic load/concurrency tests for the telemetry service.

The headline property: hundreds of concurrent HTTP clients across many
tenants, all replaying the same batch stream, every one of them gets a
final verdict *bit-identical* to a direct in-process
:func:`~repro.stream.session.stream_session` replay — under rate
limiting, backpressure and shuffled wave orderings.  Everything runs
on a :class:`~repro.stream.ingest.SimClock`, so there is nothing to
flake: the same seed always produces the same request trace.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import (
    BatchPayload,
    ClientScript,
    LoadHarness,
    ServiceConfig,
    TelemetryApp,
    TenantQuota,
    make_request,
)
from repro.stream.ingest import SimClock
from repro.wire.session import WireWriter

from .conftest import strip_queue_stats

N_TENANTS = 10
CLIENTS_PER_TENANT = 20  # 10 x 20 = 200 concurrent clients


def make_scripts(
    session_config: dict,
    payloads: list[BatchPayload],
    *,
    n_tenants: int = N_TENANTS,
    clients_per_tenant: int = CLIENTS_PER_TENANT,
) -> list[ClientScript]:
    """One identical scripted client per (tenant, slot) pair."""
    return [
        ClientScript(
            name=f"t{t:02d}-c{c:02d}",
            tenant=f"tenant-{t:02d}",
            config=session_config,
            payloads=payloads,
        )
        for t in range(n_tenants)
        for c in range(clients_per_tenant)
    ]


@pytest.fixture(scope="module")
def json_batch_payloads(json_payloads) -> list[BatchPayload]:
    return [BatchPayload(body=p) for p in json_payloads]


class TestLoadBitIdentical:
    def test_200_clients_10_tenants_bit_identical(
        self, session_config, json_batch_payloads, direct_summary
    ):
        """The tentpole assertion: 200 concurrent clients, 10 tenants,
        every verdict equals the direct replay exactly."""
        clock = SimClock(dt_s=1.0)
        app = TelemetryApp(clock, ServiceConfig())
        scripts = make_scripts(session_config, json_batch_payloads)
        harness = LoadHarness(app, clock, scripts, seed=42)
        results = asyncio.run(harness.run())

        assert len(results) == 200
        assert all(r.done and not r.errors for r in results)
        for result in results:
            assert strip_queue_stats(result.summary) == direct_summary
        # Every session was closed; nothing leaked.
        assert len(app.registry) == 0
        assert app.registry.sessions_closed == 200

    def test_same_seed_same_trace(
        self, session_config, json_batch_payloads
    ):
        """Replaying the harness with the same seed reproduces the
        request trace exactly, status by status."""

        def run_once() -> list[tuple[str, list[int]]]:
            clock = SimClock(dt_s=1.0)
            app = TelemetryApp(
                clock,
                ServiceConfig(rate_capacity=8.0,
                              rate_refill_per_request_s=4.0),
            )
            scripts = make_scripts(
                session_config, json_batch_payloads[:3],
                n_tenants=4, clients_per_tenant=8,
            )
            harness = LoadHarness(app, clock, scripts, seed=7)
            results = asyncio.run(harness.run())
            return [(r.name, r.statuses) for r in results]

        assert run_once() == run_once()

    def test_wire_frame_clients_bit_identical(
        self, session_config, serve_batches, direct_summary
    ):
        """Clients shipping RPWR binary frames (lossless codec) land on
        the same verdict as the JSON clients and the direct replay."""
        writer = WireWriter(codec="raw64")
        payloads = [
            BatchPayload.from_frames(writer.write(b).data)
            for b in serve_batches
        ]
        clock = SimClock(dt_s=1.0)
        app = TelemetryApp(clock, ServiceConfig())
        scripts = make_scripts(
            session_config, payloads, n_tenants=2, clients_per_tenant=3
        )
        harness = LoadHarness(app, clock, scripts, seed=3)
        results = asyncio.run(harness.run())

        assert all(r.done and not r.errors for r in results)
        for result in results:
            assert strip_queue_stats(result.summary) == direct_summary


class TestRateLimiting:
    def test_tight_buckets_429_then_converge(
        self, session_config, json_batch_payloads, direct_summary
    ):
        """Starved buckets produce real 429s, clients retry on the next
        wave, and every verdict still comes out bit-identical."""
        clock = SimClock(dt_s=1.0)
        app = TelemetryApp(
            clock,
            ServiceConfig(rate_capacity=3.0,
                          rate_refill_per_request_s=2.0),
        )
        scripts = make_scripts(
            session_config, json_batch_payloads,
            n_tenants=4, clients_per_tenant=10,
        )
        harness = LoadHarness(app, clock, scripts, seed=11)
        results = asyncio.run(harness.run())

        assert all(r.done and not r.errors for r in results)
        assert sum(r.rate_limited for r in results) > 0
        for result in results:
            assert strip_queue_stats(result.summary) == direct_summary
        # The service counted what it refused.
        metrics = app.metrics.to_dict()
        assert metrics["rejects"]["rate-limited"] == sum(
            r.rate_limited for r in results
        )

    def test_per_tenant_fairness(
        self, session_config, json_batch_payloads
    ):
        """Identical workloads on independent per-tenant buckets finish
        with near-identical per-tenant request counts — no tenant
        starves another."""
        clock = SimClock(dt_s=1.0)
        app = TelemetryApp(
            clock,
            ServiceConfig(rate_capacity=4.0,
                          rate_refill_per_request_s=3.0),
        )
        scripts = make_scripts(
            session_config, json_batch_payloads,
            n_tenants=8, clients_per_tenant=6,
        )
        harness = LoadHarness(app, clock, scripts, seed=23)
        results = asyncio.run(harness.run())
        assert all(r.done for r in results)

        per_tenant: dict[str, int] = {}
        for result in results:
            per_tenant[result.tenant] = (
                per_tenant.get(result.tenant, 0) + result.requests_sent
            )
        assert len(per_tenant) == 8
        lo, hi = min(per_tenant.values()), max(per_tenant.values())
        # Buckets are per-tenant and tenants run identical scripts, so
        # totals may only differ by shuffle noise within a wave.
        assert hi - lo <= 0.2 * hi

    def test_quota_exhaustion_flat_refusal(
        self, app, session_config, json_payloads
    ):
        """A sample quota refuses ingest with a structured 429 and
        never double-bills a refused request."""
        quota_app = TelemetryApp(
            app.clock,
            ServiceConfig(
                quota=TenantQuota(max_samples=245),
            ),
        )

        async def scenario():
            response = await quota_app.dispatch(make_request(
                "POST", "/v1/sessions", tenant="acme",
                body=json.dumps(session_config).encode(),
            ))
            sid = json.loads(response.body)["session"]["session_id"]
            statuses = []
            for payload in json_payloads:
                r = await quota_app.dispatch(make_request(
                    "POST", f"/v1/sessions/{sid}/batches",
                    tenant="acme", body=payload,
                ))
                statuses.append(r.status)
            return sid, statuses

        sid, statuses = asyncio.run(scenario())
        # 8 nodes x 15 ticks = 120 samples/batch: two fit under 245,
        # every later attempt (even the 8-sample tail) bounces.
        assert statuses[:2] == [202, 202]
        assert set(statuses[2:]) == {429}
        used = quota_app.quotas.usage("acme")
        assert used[1] == 240  # refused batches never billed


class TestBackpressure:
    def test_slow_consumer_429_then_recovers(
        self, app, session_config, json_payloads, direct_summary
    ):
        """A stalled drain worker fills the bounded queue, ingest
        answers 429 + Retry-After, and once the consumer catches up the
        session still converges on the exact direct verdict."""
        config = dict(session_config, queue_capacity=2)

        async def scenario():
            response = await app.dispatch(make_request(
                "POST", "/v1/sessions", tenant="acme",
                body=json.dumps(config).encode(),
            ))
            sid = json.loads(response.body)["session"]["session_id"]
            session = app.registry.get("acme", sid)
            session.gate.clear()  # stall the consumer

            statuses: list[int] = []
            refused: list[bytes] = []
            retry_after = None
            for payload in json_payloads:
                r = await app.dispatch(make_request(
                    "POST", f"/v1/sessions/{sid}/batches",
                    tenant="acme", body=payload,
                ))
                statuses.append(r.status)
                if r.status == 429:
                    refused.append(payload)
                    retry_after = r.headers.get("Retry-After")

            session.gate.set()  # consumer wakes up
            await session.drain()
            for payload in refused:  # client retries, in order
                r = await app.dispatch(make_request(
                    "POST", f"/v1/sessions/{sid}/batches",
                    tenant="acme", body=payload,
                ))
                assert r.status == 202
            await session.drain()
            closed = await app.dispatch(make_request(
                "DELETE", f"/v1/sessions/{sid}", tenant="acme"
            ))
            return session, statuses, retry_after, closed

        session, statuses, retry_after, closed = asyncio.run(scenario())
        assert 429 in statuses  # the queue really filled
        assert statuses[0] == 202  # and really accepted some first
        assert retry_after is not None and float(retry_after) > 0
        assert session.batches_rejected > 0
        assert session.queue_high_watermark == 2
        summary = json.loads(closed.body)["summary"]
        assert strip_queue_stats(summary) == direct_summary


class TestIdleEviction:
    def test_eviction_on_simclock(
        self, session_config, json_payloads
    ):
        clock = SimClock(dt_s=1.0)
        app = TelemetryApp(clock, ServiceConfig(idle_timeout_s=100.0))

        async def scenario():
            ids = {}
            for tenant in ("fresh", "stale"):
                response = await app.dispatch(make_request(
                    "POST", "/v1/sessions", tenant=tenant,
                    body=json.dumps(session_config).encode(),
                ))
                ids[tenant] = json.loads(
                    response.body
                )["session"]["session_id"]
            clock.advance(50)
            # "fresh" stays active; "stale" never ingests again.
            await app.dispatch(make_request(
                "POST", f"/v1/sessions/{ids['fresh']}/batches",
                tenant="fresh", body=json_payloads[0],
            ))
            clock.advance(70)  # t=120: stale (t=0) is idle, fresh isn't
            evicted = await app.sweep_idle()
            return ids, evicted

        ids, evicted = asyncio.run(scenario())
        assert evicted == [ids["stale"]]
        assert app.registry.gauges()["sessions_evicted"] == 1
        assert len(app.registry) == 1

    def test_eviction_never_drops_queued_batches(
        self, session_config, json_payloads
    ):
        """However stale, a session with queued work survives the sweep
        until its worker has caught up."""
        clock = SimClock(dt_s=1.0)
        app = TelemetryApp(clock, ServiceConfig(idle_timeout_s=10.0))
        config = dict(session_config, queue_capacity=4)

        async def scenario():
            response = await app.dispatch(make_request(
                "POST", "/v1/sessions", tenant="acme",
                body=json.dumps(config).encode(),
            ))
            sid = json.loads(response.body)["session"]["session_id"]
            session = app.registry.get("acme", sid)
            session.gate.clear()
            await app.dispatch(make_request(
                "POST", f"/v1/sessions/{sid}/batches",
                tenant="acme", body=json_payloads[0],
            ))
            clock.advance(1000)  # way past the idle deadline
            first_sweep = await app.sweep_idle()
            assert session.pending_batches > 0
            session.gate.set()
            await session.drain()
            second_sweep = await app.sweep_idle()
            return sid, first_sweep, second_sweep, session

        sid, first_sweep, second_sweep, session = asyncio.run(scenario())
        assert first_sweep == []  # queued work shielded it
        assert second_sweep == [sid]  # drained -> evictable
        assert session.state.samples_ingested > 0  # nothing was lost
