"""Tests for repro.serve.http (wire parsing and rendering)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_HEADER_BYTES,
    MAX_REQUEST_LINE_BYTES,
    ProtocolError,
    Response,
    error_response,
    json_response,
    read_request,
    render_response,
)


def parse(raw: bytes, **kwargs):
    """Feed raw bytes to the request reader and return the result."""

    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(inner())


def parse_error(raw: bytes, **kwargs) -> ProtocolError:
    """Parse bytes expected to be malformed; return the error."""
    with pytest.raises(ProtocolError) as excinfo:
        parse(raw, **kwargs)
    return excinfo.value


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.query == {}
        assert request.body == b""

    def test_query_and_percent_decoding(self):
        request = parse(
            b"GET /v1/plan?population=200&cv=0.05 HTTP/1.1\r\n\r\n"
        )
        assert request.path == "/v1/plan"
        assert request.query == {"population": "200", "cv": "0.05"}

    def test_post_with_body(self):
        body = b'{"a": 1}'
        raw = (
            b"POST /v1/sessions HTTP/1.1\r\n"
            b"X-Tenant: acme\r\nContent-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.tenant == "acme"
        assert request.content_type == "application/json"
        assert request.json() == {"a": 1}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_two_requests_keep_alive(self):
        raw = (
            b"GET /a HTTP/1.1\r\n\r\n"
            b"GET /b HTTP/1.1\r\n\r\n"
        )

        async def inner():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            first = await read_request(reader)
            second = await read_request(reader)
            third = await read_request(reader)
            return first, second, third

        first, second, third = asyncio.run(inner())
        assert first.path == "/a"
        assert second.path == "/b"
        assert third is None

    def test_malformed_request_line(self):
        err = parse_error(b"GETHTTP/1.1\r\n\r\n")
        assert err.status == 400
        assert err.code == "bad-request-line"

    def test_unsupported_method(self):
        err = parse_error(b"BREW /coffee HTTP/1.1\r\n\r\n")
        assert err.status == 405

    def test_unsupported_version(self):
        err = parse_error(b"GET / SPDY/99\r\n\r\n")
        assert err.status == 400
        assert err.code == "bad-version"

    def test_request_line_too_long(self):
        raw = b"GET /" + b"a" * MAX_REQUEST_LINE_BYTES + b" HTTP/1.1\r\n\r\n"
        err = parse_error(raw)
        assert err.status == 431

    def test_header_block_too_large(self):
        filler = b"X-Pad: " + b"y" * 4096 + b"\r\n"
        raw = (
            b"GET / HTTP/1.1\r\n"
            + filler * (MAX_HEADER_BYTES // len(filler) + 2)
            + b"\r\n"
        )
        err = parse_error(raw)
        assert err.status == 431

    def test_malformed_header(self):
        err = parse_error(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
        assert err.status == 400
        assert err.code == "bad-header"

    def test_bad_content_length(self):
        err = parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"
        )
        assert err.code == "bad-content-length"

    def test_negative_content_length(self):
        err = parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        )
        assert err.code == "bad-content-length"

    def test_body_over_limit(self):
        raw = (
            b"POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n" + b"x" * 1000
        )
        err = parse_error(raw, max_body_bytes=100)
        assert err.status == 413

    def test_truncated_body(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        err = parse_error(raw)
        assert err.status == 400
        assert err.code == "truncated"

    def test_truncated_headers(self):
        err = parse_error(b"GET / HTTP/1.1\r\nX-Half: yes\r\n")
        assert err.code == "truncated"

    def test_chunked_rejected(self):
        err = parse_error(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        )
        assert err.status == 501

    def test_bad_json_body(self):
        raw = (
            b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n{not json"
        )
        request = parse(raw)
        with pytest.raises(ProtocolError) as excinfo:
            request.json()
        assert excinfo.value.code == "bad-json"


class TestRenderResponse:
    def test_roundtrip_shape(self):
        raw = render_response(
            json_response({"ok": True}), keep_alive=True
        )
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Connection: keep-alive" in head
        assert json.loads(body) == {"ok": True}
        assert f"Content-Length: {len(body)}".encode() in head

    def test_close_and_custom_headers(self):
        response = Response(
            status=429, body=b"{}", headers={"Retry-After": "2.000"}
        )
        raw = render_response(response, keep_alive=False)
        assert b"HTTP/1.1 429 Too Many Requests" in raw
        assert b"Connection: close" in raw
        assert b"Retry-After: 2.000" in raw

    def test_error_shape(self):
        response = error_response(
            404, "no-session", "nope", hint="gone"
        )
        payload = json.loads(response.body)
        assert payload["error"]["status"] == 404
        assert payload["error"]["code"] == "no-session"
        assert payload["error"]["hint"] == "gone"
