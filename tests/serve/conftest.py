"""Shared fixtures for the telemetry-service tests.

Everything here is deterministic: the run is a fixed-seed simulation,
the app runs on a :class:`~repro.stream.ingest.SimClock`, and the
expected verdict comes from a direct
:func:`~repro.stream.session.stream_session` replay of the very same
batches the HTTP clients submit.
"""

from __future__ import annotations

import json

import pytest

from repro.cluster.components import CpuModel, DramModel, FanModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.thermal import FanController
from repro.cluster.variability import ManufacturingVariation
from repro.serve import ServiceConfig, TelemetryApp
from repro.stream.ingest import SampleBatch, SimClock, replay_run
from repro.stream.session import stream_session
from repro.traces.synth import SimulatedRun, simulate_run
from repro.workloads.hpl import HplWorkload

#: Session parameters shared by the direct replay and every HTTP client.
ACCURACY = 0.05
REPORT_EVERY_S = 60.0
TICKS_PER_BATCH = 15


def batch_to_json(batch: SampleBatch) -> dict:
    """Render one batch as the JSON ingest body."""
    return {
        "times": batch.times.tolist(),
        "watts": batch.watts.tolist(),
        "node_ids": batch.node_ids.tolist(),
    }


def strip_queue_stats(summary: dict) -> dict:
    """Drop driver-specific bookkeeping before verdict comparison.

    Queue stalls and high-water marks belong to the *driver* (replay
    loop vs HTTP queue), not the verdict; everything else must match
    bit for bit.
    """
    out = dict(summary)
    for key in ("queue_stalls", "queue_high_watermark", "session_id",
                "quality"):
        out.pop(key, None)
    return out


@pytest.fixture(scope="session")
def serve_run() -> SimulatedRun:
    """A tiny 8-node run: 240 s core at 2 s ticks (120 ticks)."""
    node = NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
        n_cpus=2,
        dram=DramModel.for_capacity(32.0),
        fan=FanModel(max_watts=40.0),
        other_watts=20.0,
    )
    system = SystemModel(
        "serve-tiny",
        8,
        node,
        variation=ManufacturingVariation(sigma=0.02),
        fan_controller=FanController(
            fan_model=node.fan, reference_watts=300.0
        ),
        seed=21,
    )
    workload = HplWorkload.cpu_out_of_core(
        240.0, setup_s=20.0, teardown_s=20.0
    )
    return simulate_run(system, workload, dt=2.0, seed=11)


@pytest.fixture(scope="session")
def serve_batches(serve_run) -> list[SampleBatch]:
    """The exact batch sequence every client replays."""
    return list(replay_run(serve_run, ticks_per_batch=TICKS_PER_BATCH))


@pytest.fixture(scope="session")
def json_payloads(serve_batches) -> list[bytes]:
    """The batches as JSON ingest bodies."""
    return [
        json.dumps(batch_to_json(b)).encode("utf-8")
        for b in serve_batches
    ]


@pytest.fixture(scope="session")
def direct_summary(serve_run) -> dict:
    """The ground-truth verdict from a direct in-process replay."""
    result = stream_session(
        serve_run,
        ticks_per_batch=TICKS_PER_BATCH,
        accuracy=ACCURACY,
        report_every_s=REPORT_EVERY_S,
    )
    # Through JSON and back, so float rendering matches the HTTP path.
    return strip_queue_stats(
        json.loads(json.dumps(result.to_dict(), default=float))
    )


@pytest.fixture(scope="session")
def session_config(serve_run) -> dict:
    """The HTTP session config equivalent to the direct replay."""
    t0_s, t1_s = serve_run.core_window
    return {
        "population": serve_run.system.n_nodes,
        "core_t0_s": t0_s,
        "core_t1_s": t1_s,
        "interval_s": max(serve_run.dt, 1.0),
        "accuracy": ACCURACY,
        "report_every_s": REPORT_EVERY_S,
    }


@pytest.fixture()
def clock() -> SimClock:
    """A fresh simulated clock per test."""
    return SimClock(dt_s=1.0)


@pytest.fixture()
def app(clock) -> TelemetryApp:
    """A service instance with default (generous) limits."""
    return TelemetryApp(clock, ServiceConfig())
