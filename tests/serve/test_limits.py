"""Property tests for repro.serve.limits (buckets and quotas).

Hypothesis drives arbitrary admission schedules against the token
bucket and ledger and checks the invariants the service's fairness
story rests on: token levels bounded, refill monotone, refusals free,
charges exact and all-or-nothing.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.limits import QuotaLedger, TenantQuota, TokenBucket

# One admission attempt: (time step forward, token cost).
steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.01, max_value=20.0,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=60,
)

bucket_params = st.tuples(
    st.floats(min_value=0.5, max_value=500.0, allow_nan=False),
    st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
)


class TestTokenBucketProperties:
    @settings(max_examples=120)
    @given(params=bucket_params, schedule=steps)
    def test_tokens_always_bounded(self, params, schedule):
        """0 <= tokens <= capacity after every operation."""
        capacity, rate = params
        bucket = TokenBucket(capacity, rate)
        now_s = 0.0
        for dt_s, cost in schedule:
            now_s += dt_s
            decision = bucket.acquire(now_s, cost=cost)
            assert 0.0 <= decision.tokens_left <= capacity
            assert 0.0 <= bucket.available(now_s) <= capacity

    @settings(max_examples=120)
    @given(params=bucket_params, schedule=steps)
    def test_refusal_takes_nothing(self, params, schedule):
        """A refused acquire leaves the token level untouched."""
        capacity, rate = params
        bucket = TokenBucket(capacity, rate)
        now_s = 0.0
        for dt_s, cost in schedule:
            now_s += dt_s
            before = bucket.available(now_s)
            decision = bucket.acquire(now_s, cost=cost)
            if decision.granted:
                assert decision.tokens_left == pytest.approx(
                    before - cost, abs=1e-9
                )
            else:
                assert decision.tokens_left == before
                assert decision.retry_after_s > 0.0
                # Actually waiting the advertised time makes the cost
                # payable (time moves forward; probing must too).
                now_s += decision.retry_after_s + 1e-6
                ready = bucket.available(now_s)
                assert ready >= min(cost, capacity) - 1e-6

    @settings(max_examples=100)
    @given(
        params=bucket_params,
        t_obs=st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=2, max_size=40,
        ),
    )
    def test_observation_monotone(self, params, t_obs):
        """Observing the bucket never removes tokens, even when clock
        readings arrive out of order (stale reads refill nothing)."""
        capacity, rate = params
        bucket = TokenBucket(capacity, rate)
        bucket.acquire(0.0, cost=min(capacity, 1.0))  # dent it
        level = bucket.available(0.0)
        for t_s in t_obs:
            new_level = bucket.available(t_s)
            assert new_level >= level - 1e-12
            level = new_level

    def test_full_bucket_burst_then_starve(self):
        """Deterministic spot check: burst capacity, then exact refill."""
        bucket = TokenBucket(3.0, 1.0)
        assert all(
            bucket.acquire(0.0).granted for _ in range(3)
        )
        refused = bucket.acquire(0.0)
        assert not refused.granted
        assert refused.retry_after_s == pytest.approx(1.0)
        assert bucket.acquire(1.0).granted  # exactly one token back

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, -1.0)
        with pytest.raises(ValueError):
            TokenBucket(1.0, 1.0).acquire(0.0, cost=0.0)


class TestQuotaLedgerProperties:
    @settings(max_examples=100)
    @given(
        max_samples=st.integers(min_value=0, max_value=500),
        charges=st.lists(
            st.integers(min_value=0, max_value=120),
            min_size=1, max_size=40,
        ),
    )
    def test_never_exceeds_budget(self, max_samples, charges):
        """Usage never crosses the quota, and refused charges leave the
        ledger untouched (retries never double-bill)."""
        ledger = QuotaLedger(TenantQuota(max_samples=max_samples))
        for n in charges:
            before = ledger.usage("t")
            outcome = ledger.charge("t", n_bytes=0, n_samples=n)
            _, used = ledger.usage("t")
            assert used <= max_samples
            if not outcome.granted:
                assert ledger.usage("t") == before
                assert outcome.reason == "sample-quota-exhausted"

    @settings(max_examples=60)
    @given(
        charges=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=0, max_value=50),
            ),
            min_size=1, max_size=40,
        ),
    )
    def test_tenants_isolated(self, charges):
        """Granted charges add up exactly, per tenant, regardless of
        interleaving."""
        ledger = QuotaLedger(
            TenantQuota(max_bytes=400, max_samples=400)
        )
        expect: dict[str, list[int]] = {}
        for tenant, n_bytes, n_samples in charges:
            outcome = ledger.charge(
                tenant, n_bytes=n_bytes, n_samples=n_samples
            )
            if outcome.granted:
                totals = expect.setdefault(tenant, [0, 0])
                totals[0] += n_bytes
                totals[1] += n_samples
        for tenant, (b, s) in expect.items():
            assert ledger.usage(tenant) == (b, s)

    def test_unlimited_quota_never_refuses(self):
        ledger = QuotaLedger(TenantQuota())
        for _ in range(10):
            assert ledger.charge(
                "t", n_bytes=10**9, n_samples=10**9
            ).granted

    def test_negative_charge_rejected(self):
        ledger = QuotaLedger(TenantQuota(max_bytes=10))
        with pytest.raises(ValueError):
            ledger.charge("t", n_bytes=-1, n_samples=0)
