"""Tests for repro.serve.app routing and endpoint behaviour."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.sampling import recommend_sample_size
from repro.serve import make_request

from .conftest import ACCURACY


def body(response) -> dict:
    return json.loads(response.body)


def dispatch(app, request):
    return asyncio.run(app.dispatch(request))


async def open_session(app, config: dict, tenant: str = "acme") -> str:
    response = await app.dispatch(make_request(
        "POST", "/v1/sessions", tenant=tenant,
        body=json.dumps(config).encode(),
    ))
    assert response.status == 201
    return json.loads(response.body)["session"]["session_id"]


class TestPlainRoutes:
    def test_healthz(self, app):
        response = dispatch(app, make_request("GET", "/healthz"))
        assert response.status == 200
        assert body(response)["ok"] is True

    def test_unknown_route_404(self, app):
        response = dispatch(app, make_request("GET", "/nope"))
        assert response.status == 404
        assert body(response)["error"]["code"] == "no-route"

    def test_wrong_method_404(self, app):
        response = dispatch(app, make_request("DELETE", "/healthz"))
        assert response.status == 404

    def test_plan_matches_library(self, app):
        response = dispatch(app, make_request(
            "GET", "/v1/plan",
            query={"population": "10000", "cv": "0.03"},
        ))
        assert response.status == 200
        payload = body(response)
        expected = recommend_sample_size(10_000, 0.03, 0.01, 0.95)
        assert payload["required_n"] == expected.n
        assert payload["required_n_infinite"] == pytest.approx(expected.n0)
        assert payload["post2015_rule_n"] == 1000

    def test_plan_missing_param(self, app):
        response = dispatch(app, make_request(
            "GET", "/v1/plan", query={"population": "100"}
        ))
        assert response.status == 400
        assert body(response)["error"]["code"] == "missing-param"

    def test_plan_unparseable_param(self, app):
        response = dispatch(app, make_request(
            "GET", "/v1/plan",
            query={"population": "100", "cv": "many"},
        ))
        assert response.status == 400
        assert body(response)["error"]["code"] == "bad-param"

    def test_plan_invalid_values(self, app):
        response = dispatch(app, make_request(
            "GET", "/v1/plan",
            query={"population": "100", "cv": "-1"},
        ))
        assert response.status == 400

    def test_plan_table_grid(self, app):
        response = dispatch(app, make_request(
            "GET", "/v1/plan/table",
            query={"population": "5000", "cvs": "0.02,0.05",
                   "accuracies": "0.01"},
        ))
        assert response.status == 200
        payload = body(response)
        assert payload["cvs"] == [0.02, 0.05]
        expected = recommend_sample_size(5000, 0.05, 0.01, 0.95).n
        assert payload["required_n"][0][1] == expected

    def test_plan_table_bad_list(self, app):
        response = dispatch(app, make_request(
            "GET", "/v1/plan/table", query={"cvs": "a,b"}
        ))
        assert response.status == 400


class TestSessionRoutes:
    def test_tenantless_request_401(self, app, session_config):
        response = dispatch(app, make_request(
            "POST", "/v1/sessions",
            body=json.dumps(session_config).encode(),
        ))
        assert response.status == 401
        assert body(response)["error"]["code"] == "missing-tenant"

    def test_create_and_info(self, app, session_config):
        async def scenario():
            sid = await open_session(app, session_config)
            info = await app.dispatch(make_request(
                "GET", f"/v1/sessions/{sid}", tenant="acme"
            ))
            listing = await app.dispatch(make_request(
                "GET", "/v1/sessions", tenant="acme"
            ))
            return sid, info, listing

        sid, info, listing = asyncio.run(scenario())
        assert body(info)["session"]["session_id"] == sid
        assert body(info)["session"]["config"]["accuracy"] == ACCURACY
        assert [s["session_id"] for s in body(listing)["sessions"]] == [sid]

    def test_bad_config_rejected(self, app, session_config):
        bad = dict(session_config, queue_capacity=0)
        response = dispatch(app, make_request(
            "POST", "/v1/sessions", tenant="acme",
            body=json.dumps(bad).encode(),
        ))
        assert response.status == 400
        assert body(response)["error"]["code"] == "bad-config"

    def test_unknown_config_key_rejected(self, app, session_config):
        bad = dict(session_config, turbo=True)
        response = dispatch(app, make_request(
            "POST", "/v1/sessions", tenant="acme",
            body=json.dumps(bad).encode(),
        ))
        assert response.status == 400
        assert "turbo" in body(response)["error"]["message"]

    def test_unknown_session_404(self, app):
        response = dispatch(app, make_request(
            "GET", "/v1/sessions/s-99999999", tenant="acme"
        ))
        assert response.status == 404

    def test_cross_tenant_403(self, app, session_config):
        async def scenario():
            sid = await open_session(app, session_config, tenant="acme")
            return await app.dispatch(make_request(
                "GET", f"/v1/sessions/{sid}", tenant="rival"
            ))

        response = asyncio.run(scenario())
        assert response.status == 403
        assert body(response)["error"]["code"] == "not-owner"

    def test_session_cap_429(self, clock, session_config):
        from repro.serve import ServiceConfig, TelemetryApp

        app = TelemetryApp(clock, ServiceConfig(max_sessions_per_tenant=1))

        async def scenario():
            await open_session(app, session_config)
            return await app.dispatch(make_request(
                "POST", "/v1/sessions", tenant="acme",
                body=json.dumps(session_config).encode(),
            ))

        response = asyncio.run(scenario())
        assert response.status == 429
        assert body(response)["error"]["code"] == "session-cap"

    def test_ingest_verdict_quality_close(
        self, app, session_config, json_payloads
    ):
        async def scenario():
            sid = await open_session(app, session_config)
            for payload in json_payloads:
                response = await app.dispatch(make_request(
                    "POST", f"/v1/sessions/{sid}/batches",
                    tenant="acme", body=payload,
                ))
                assert response.status == 202
            for session in app.registry.all_sessions():
                await session.drain()
            verdict = await app.dispatch(make_request(
                "GET", f"/v1/sessions/{sid}/verdict", tenant="acme"
            ))
            quality = await app.dispatch(make_request(
                "GET", f"/v1/sessions/{sid}/quality", tenant="acme"
            ))
            closed = await app.dispatch(make_request(
                "DELETE", f"/v1/sessions/{sid}", tenant="acme"
            ))
            gone = await app.dispatch(make_request(
                "GET", f"/v1/sessions/{sid}", tenant="acme"
            ))
            return verdict, quality, closed, gone

        verdict, quality, closed, gone = asyncio.run(scenario())
        assert verdict.status == 200
        v = body(verdict)
        assert v["samples_ingested"] > 0
        assert v["snapshot"]["fleet_mean_w"] > 0
        assert "should_stop" in v["stopping"]
        q = body(quality)["quality"]
        assert q["effective_coverage"] == 1.0
        assert q["samples_missing"] == 0
        summary = body(closed)["summary"]
        assert summary["samples_ingested"] == v["samples_ingested"]
        assert gone.status == 404

    def test_empty_session_close_summary(self, app, session_config):
        async def scenario():
            sid = await open_session(app, session_config)
            return await app.dispatch(make_request(
                "DELETE", f"/v1/sessions/{sid}", tenant="acme"
            ))

        response = asyncio.run(scenario())
        assert response.status == 200
        summary = body(response)["summary"]
        assert summary["insufficient_data"] is True
        assert summary["samples_ingested"] == 0

    def test_quality_none_before_data(self, app, session_config):
        async def scenario():
            sid = await open_session(app, session_config)
            return await app.dispatch(make_request(
                "GET", f"/v1/sessions/{sid}/quality", tenant="acme"
            ))

        response = asyncio.run(scenario())
        assert response.status == 200
        assert body(response)["quality"] is None

    def test_bad_content_type_415(self, app, session_config):
        async def scenario():
            sid = await open_session(app, session_config)
            return await app.dispatch(make_request(
                "POST", f"/v1/sessions/{sid}/batches", tenant="acme",
                body=b"1,2,3", content_type="text/csv",
            ))

        response = asyncio.run(scenario())
        assert response.status == 415


class TestMetricsRoute:
    def test_metrics_document(self, app, session_config, json_payloads):
        async def scenario():
            sid = await open_session(app, session_config)
            await app.dispatch(make_request(
                "POST", f"/v1/sessions/{sid}/batches",
                tenant="acme", body=json_payloads[0],
            ))
            await app.dispatch(make_request("GET", "/missing"))
            return await app.dispatch(make_request("GET", "/metrics"))

        response = asyncio.run(scenario())
        assert response.status == 200
        doc = body(response)
        assert doc["requests_total"] == 3
        assert doc["by_status"]["201"] == 1
        assert doc["by_status"]["202"] == 1
        assert doc["by_status"]["404"] == 1
        assert doc["ingest"]["batches"] == 1
        assert doc["registry"]["sessions_live"] == 1
        assert "acme" in doc["quota_usage"]
        route = doc["routes"]["POST /v1/sessions/*/batches"]
        assert route["total"] == 1
        assert route["latency"]["count"] == 1
