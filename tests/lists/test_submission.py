"""Tests for repro.lists.submission."""

import pytest

from repro.core.methodology import Level
from repro.lists.submission import PowerSource, Submission


class TestSubmission:
    def test_efficiency(self):
        s = Submission("x", rmax_gflops=311_512.0, power_watts=59_110.0)
        assert s.efficiency_gflops_per_watt == pytest.approx(5.27, rel=0.01)

    def test_true_efficiency(self):
        s = Submission(
            "x", rmax_gflops=1000.0, power_watts=500.0,
            true_power_watts=550.0,
        )
        assert s.true_efficiency_gflops_per_watt == pytest.approx(1000 / 550)
        assert s.power_error == pytest.approx((500 - 550) / 550)

    def test_unknown_truth(self):
        s = Submission("x", rmax_gflops=1000.0, power_watts=500.0)
        assert s.true_efficiency_gflops_per_watt is None
        assert s.power_error is None

    def test_derived_has_no_level(self):
        s = Submission(
            "x", rmax_gflops=1.0, power_watts=1.0,
            source=PowerSource.DERIVED, level=None,
        )
        assert s.level is None

    def test_derived_with_level_rejected(self):
        with pytest.raises(ValueError, match="derived"):
            Submission(
                "x", rmax_gflops=1.0, power_watts=1.0,
                source=PowerSource.DERIVED, level=Level.L1,
            )

    def test_measured_without_level_rejected(self):
        with pytest.raises(ValueError, match="must state a level"):
            Submission(
                "x", rmax_gflops=1.0, power_watts=1.0,
                source=PowerSource.MEASURED, level=None,
            )

    def test_positive_values_required(self):
        with pytest.raises(ValueError, match="rmax"):
            Submission("x", rmax_gflops=0.0, power_watts=1.0)
        with pytest.raises(ValueError, match="power"):
            Submission("x", rmax_gflops=1.0, power_watts=0.0)
        with pytest.raises(ValueError, match="true power"):
            Submission("x", rmax_gflops=1.0, power_watts=1.0,
                       true_power_watts=-1.0)
