"""Tests for repro.lists.derived and the X5 experiment."""

import pytest

from repro.experiments import ext_derived
from repro.lists.derived import derive_node_power, derive_system_power


class TestDeriveNodePower:
    def test_tdp_sums_components(self, gpu_config):
        tdp = derive_node_power(gpu_config, "tdp")
        expected = (
            2 * gpu_config.cpu.peak_watts
            + 4 * gpu_config.gpu.peak_watts
            + gpu_config.dram.peak_watts
            + gpu_config.nic.peak_watts
            + gpu_config.other_watts
        )
        assert tdp == pytest.approx(expected)

    def test_recipe_ordering(self, cpu_config):
        derated = derive_node_power(cpu_config, "tdp-derated")
        tdp = derive_node_power(cpu_config, "tdp")
        nameplate = derive_node_power(cpu_config, "nameplate")
        assert derated < tdp < nameplate

    def test_unknown_method(self, cpu_config):
        with pytest.raises(ValueError, match="unknown derivation"):
            derive_node_power(cpu_config, "guess")


class TestDeriveSystemPower:
    def test_scales_with_nodes(self, cpu_config):
        one = derive_system_power(cpu_config, 1)
        many = derive_system_power(cpu_config, 64)
        assert many == pytest.approx(64 * one)

    def test_interconnect_share(self, cpu_config):
        base = derive_system_power(cpu_config, 100)
        with_ic = derive_system_power(
            cpu_config, 100, interconnect_fraction=0.1
        )
        assert with_ic == pytest.approx(1.1 * base)

    def test_validation(self, cpu_config):
        with pytest.raises(ValueError, match="n_nodes"):
            derive_system_power(cpu_config, 0)
        with pytest.raises(ValueError, match="interconnect"):
            derive_system_power(cpu_config, 1, interconnect_fraction=1.0)


class TestX5Experiment:
    def test_all_ok(self):
        res = ext_derived.run()
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_covers_all_fleets(self):
        res = ext_derived.run()
        assert len(res.rows) == 6

    def test_truth_monotone_in_utilisation(self):
        res = ext_derived.run()
        for r in res.rows:
            assert r.true_low_watts < r.true_high_watts
