"""Tests for repro.lists.validation."""

import pytest

from repro.core.methodology import (
    Level,
    MeasurementDescription,
    MeasurementPoint,
    Subsystem,
)
from repro.core.recommendations import NewRules
from repro.lists.submission import PowerSource, Submission
from repro.lists.validation import validate_submission


def make_submission(**desc_overrides):
    desc_kwargs = dict(
        level=Level.L1,
        n_nodes_total=1024,
        n_nodes_measured=16,
        avg_node_power_watts=400.0,
        window_start_fraction=0.4,
        window_end_fraction=0.6,
        core_phase_seconds=5400.0,
        sample_interval_s=1.0,
    )
    desc_kwargs.update(desc_overrides)
    desc = MeasurementDescription(**desc_kwargs)
    return Submission(
        "sys", rmax_gflops=1e6, power_watts=400.0 * 1024,
        source=PowerSource.MEASURED, level=desc_kwargs["level"],
        description=desc,
    )


class TestDerived:
    def test_derived_not_verifiable(self):
        s = Submission(
            "derived-sys", rmax_gflops=1e6, power_watts=1e5,
            source=PowerSource.DERIVED, level=None,
        )
        report = validate_submission(s)
        assert report.complies_with_level  # nothing to violate
        assert any("derived" in n for n in report.notes)
        assert "not verifiable" in report.summary()


class TestLevelCompliance:
    def test_compliant_l1_old_rules(self):
        report = validate_submission(make_submission(), new_rules=None)
        assert report.complies_with_level
        assert report.complies_with_new_rules  # vacuous

    def test_violations_reported(self):
        report = validate_submission(
            make_submission(n_nodes_measured=4), new_rules=None
        )
        assert not report.complies_with_level
        assert "violation" in report.summary()

    def test_missing_description(self):
        s = Submission(
            "x", rmax_gflops=1.0, power_watts=1.0,
            source=PowerSource.MEASURED, level=Level.L1,
        )
        report = validate_submission(s)
        assert not report.complies_with_level
        assert "lacks a measurement description" in report.violations[0].message


class TestNewRules:
    def test_old_style_l1_fails_new_rules(self):
        # Compliant with the old Level 1, but 20%-window + 16-of-1024
        # nodes fails both new requirements.
        report = validate_submission(make_submission())
        assert report.complies_with_level
        assert not report.complies_with_new_rules
        assert len(report.new_rule_failures) == 2

    def test_full_core_and_enough_nodes_pass(self):
        report = validate_submission(
            make_submission(
                window_start_fraction=0.0,
                window_end_fraction=1.0,
                n_nodes_measured=103,  # ceil(0.1 * 1024)
            )
        )
        assert report.complies_with_new_rules

    def test_sixteen_suffices_small_system(self):
        report = validate_submission(
            make_submission(
                n_nodes_total=128,
                n_nodes_measured=16,
                window_start_fraction=0.0,
                window_end_fraction=1.0,
            )
        )
        assert report.complies_with_new_rules

    def test_custom_rules(self):
        rules = NewRules(min_nodes=4, node_fraction=0.01,
                         full_core_phase=False)
        report = validate_submission(make_submission(), new_rules=rules)
        assert report.complies_with_new_rules

    def test_summary_mentions_new_rules(self):
        assert "new rules" in validate_submission(make_submission()).summary()
