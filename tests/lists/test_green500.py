"""Tests for repro.lists.green500."""

import numpy as np
import pytest

from repro.lists.green500 import Green500List, synthetic_green500
from repro.lists.submission import PowerSource, Submission


def sub(name, eff, rmax=1e6):
    return Submission(name, rmax_gflops=rmax, power_watts=rmax / eff)


class TestGreen500List:
    def test_ranking_order(self):
        lst = Green500List([sub("a", 2.0), sub("b", 5.0), sub("c", 3.0)])
        assert [e.submission.system_name for e in lst] == ["b", "c", "a"]
        assert lst[1].submission.system_name == "b"

    def test_rank_of(self):
        lst = Green500List([sub("a", 2.0), sub("b", 5.0)])
        assert lst.rank_of("b") == 1
        assert lst.rank_of("a") == 2
        with pytest.raises(KeyError):
            lst.rank_of("zzz")

    def test_tie_broken_by_name(self):
        lst = Green500List([sub("bb", 2.0), sub("aa", 2.0)])
        assert lst[1].submission.system_name == "aa"

    def test_top(self):
        lst = Green500List([sub(f"s{i}", float(i + 1)) for i in range(5)])
        assert len(lst.top(3)) == 3
        assert lst.top(3)[0].efficiency == 5.0

    def test_efficiency_gap(self):
        lst = Green500List([sub("a", 5.0), sub("b", 4.0), sub("c", 4.0)])
        assert lst.efficiency_gap(1, 3) == pytest.approx(0.25)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Green500List([sub("a", 1.0), sub("a", 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Green500List([])

    def test_index_bounds(self):
        lst = Green500List([sub("a", 1.0)])
        with pytest.raises(IndexError):
            lst[0]
        with pytest.raises(IndexError):
            lst[2]

    def test_rerank_with_powers(self):
        lst = Green500List([sub("a", 5.0), sub("b", 4.9)])
        # Replace a's power so its efficiency halves → b takes #1.
        a = lst[1].submission
        new = lst.reranked_with_powers({"a": a.power_watts * 2})
        assert new[1].submission.system_name == "b"

    def test_rerank_validates_power(self):
        lst = Green500List([sub("a", 5.0)])
        with pytest.raises(ValueError, match="positive"):
            lst.reranked_with_powers({"a": 0.0})


class TestSyntheticGreen500:
    def test_published_mix(self, rng):
        lst = synthetic_green500(rng)
        mix = lst.level_mix()
        assert len(lst) == 267
        assert mix["derived"] == 233
        assert mix["L1"] == 28
        assert mix["L2"] + mix["L3"] == 6

    def test_top3_gap_pinned(self, rng):
        lst = synthetic_green500(rng, top3_gap=0.135)
        assert lst.efficiency_gap(1, 3) == pytest.approx(0.135, abs=1e-6)

    def test_top_efficiency_anchored(self, rng):
        lst = synthetic_green500(rng, top_efficiency=5.27)
        assert lst[1].efficiency == pytest.approx(5.27, rel=1e-6)

    def test_efficiencies_strictly_ranked(self, rng):
        lst = synthetic_green500(rng)
        effs = [e.efficiency for e in lst]
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_true_powers_recorded(self, rng):
        lst = synthetic_green500(rng)
        assert all(
            e.submission.true_power_watts is not None for e in lst
        )

    def test_deterministic(self):
        a = synthetic_green500(np.random.default_rng(0))
        b = synthetic_green500(np.random.default_rng(0))
        assert [e.submission.system_name for e in a] == [
            e.submission.system_name for e in b
        ]

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="three"):
            synthetic_green500(rng, n_systems=2)
        with pytest.raises(ValueError, match="mix"):
            synthetic_green500(rng, n_systems=10, n_derived=9, n_level1=5)
        with pytest.raises(ValueError, match="top3_gap"):
            synthetic_green500(rng, top3_gap=0.0)
