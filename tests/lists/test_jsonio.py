"""Tests for repro.lists.jsonio and the validate CLI command."""

import json

import pytest

from repro.cli import main
from repro.core.methodology import (
    Level,
    MeasurementDescription,
    MeasurementPoint,
    Subsystem,
)
from repro.lists.jsonio import submission_from_json, submission_to_json
from repro.lists.submission import PowerSource, Submission


@pytest.fixture()
def measured_submission():
    desc = MeasurementDescription(
        level=Level.L1,
        n_nodes_total=1024,
        n_nodes_measured=16,
        avg_node_power_watts=400.0,
        window_start_fraction=0.4,
        window_end_fraction=0.6,
        core_phase_seconds=5400.0,
        sample_interval_s=1.0,
    )
    return Submission(
        "machine-x", rmax_gflops=1e6, power_watts=409_600.0,
        source=PowerSource.MEASURED, level=Level.L1, description=desc,
    )


class TestRoundtrip:
    def test_measured(self, measured_submission):
        text = submission_to_json(measured_submission)
        back = submission_from_json(text)
        assert back.system_name == "machine-x"
        assert back.level is Level.L1
        assert back.description == measured_submission.description

    def test_derived(self):
        sub = Submission(
            "derived-y", rmax_gflops=2e5, power_watts=5e4,
            source=PowerSource.DERIVED, level=None,
        )
        back = submission_from_json(submission_to_json(sub))
        assert back.source is PowerSource.DERIVED
        assert back.level is None
        assert back.description is None

    def test_l3_integrating_meter(self, measured_submission):
        desc = MeasurementDescription(
            level=Level.L3,
            n_nodes_total=1024,
            n_nodes_measured=1024,
            avg_node_power_watts=400.0,
            window_start_fraction=0.0,
            window_end_fraction=1.0,
            core_phase_seconds=5400.0,
            sample_interval_s=None,
            subsystems_measured=frozenset(Subsystem),
            measurement_point=MeasurementPoint.UPSTREAM_OF_CONVERSION,
        )
        sub = Submission(
            "l3-machine", rmax_gflops=1e6, power_watts=4e5,
            source=PowerSource.MEASURED, level=Level.L3, description=desc,
        )
        back = submission_from_json(submission_to_json(sub))
        assert back.description.sample_interval_s is None
        assert back.description.subsystems_measured == frozenset(Subsystem)

    def test_truth_not_serialised(self):
        sub = Submission(
            "sim", rmax_gflops=1.0, power_watts=1.0,
            true_power_watts=2.0,
        )
        back = submission_from_json(submission_to_json(sub))
        assert back.true_power_watts is None


class TestErrors:
    def test_bad_format(self):
        with pytest.raises(ValueError, match="unrecognised format"):
            submission_from_json('{"format": "nope"}')

    def test_bad_measurement_point(self, measured_submission):
        doc = json.loads(submission_to_json(measured_submission))
        doc["description"]["measurement_point"] = "psychic"
        with pytest.raises(ValueError, match="measurement_point"):
            submission_from_json(json.dumps(doc))

    def test_bad_subsystem(self, measured_submission):
        doc = json.loads(submission_to_json(measured_submission))
        doc["description"]["subsystems_measured"] = ["flux capacitor"]
        with pytest.raises(ValueError, match="subsystem"):
            submission_from_json(json.dumps(doc))


class TestValidateCli:
    def test_old_rules_pass(self, tmp_path, measured_submission, capsys):
        path = tmp_path / "sub.json"
        path.write_text(submission_to_json(measured_submission))
        rc = main(["validate", str(path), "--old-rules-only"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out

    def test_new_rules_fail(self, tmp_path, measured_submission, capsys):
        path = tmp_path / "sub.json"
        path.write_text(submission_to_json(measured_submission))
        rc = main(["validate", str(path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "new-rule failure" in out

    def test_missing_file(self):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["validate", "/nonexistent/sub.json"])

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(SystemExit, match="invalid submission"):
            main(["validate", str(path)])
