"""Tests for the repro CLI."""

import numpy as np
import pytest

from repro.cli import main


class TestPlan:
    def test_basic_plan(self, capsys):
        rc = main(["plan", "--nodes", "10000", "--cv", "0.03",
                   "--accuracy", "0.01"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "measure 35 of 10000 nodes" in out
        assert "post-2015 submission rule" in out

    def test_plan_notes_when_target_exceeds_rule(self, capsys):
        rc = main(["plan", "--nodes", "200", "--cv", "0.05",
                   "--accuracy", "0.002"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "more nodes than the submission rule" in out

    def test_plan_with_pilot(self, capsys):
        rng = np.random.default_rng(0)
        pilot = ",".join(f"{w:.2f}" for w in rng.normal(210, 5, 10))
        rc = main(["plan", "--nodes", "9216", "--pilot", pilot])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pilot of 10 nodes" in out

    def test_bad_pilot(self):
        with pytest.raises(SystemExit, match="parse"):
            main(["plan", "--nodes", "100", "--pilot", "1.0,abc"])


class TestAssess:
    def test_meets_target(self, capsys):
        rng = np.random.default_rng(1)
        watts = ",".join(f"{w:.2f}" for w in rng.normal(400, 8, 35))
        rc = main(["assess", "--nodes", "10000", "--watts", watts,
                   "--target", "0.02"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "meets" in out

    def test_misses_target_exit_code(self, capsys):
        rng = np.random.default_rng(1)
        watts = ",".join(f"{w:.2f}" for w in rng.normal(400, 40, 4))
        rc = main(["assess", "--nodes", "10000", "--watts", watts,
                   "--target", "0.001"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "MISSES" in out

    def test_no_target(self, capsys):
        rc = main(["assess", "--nodes", "100",
                   "--watts", "400,410,395,405"])
        assert rc == 0

    def test_too_few_watts(self):
        with pytest.raises(SystemExit, match="at least two"):
            main(["assess", "--nodes", "100", "--watts", "400"])

    def test_empty_watts(self):
        with pytest.raises(SystemExit, match="empty"):
            main(["assess", "--nodes", "100", "--watts", ","])

    def test_nan_watts_rejected(self):
        with pytest.raises(SystemExit, match="finite"):
            main(["assess", "--nodes", "100", "--watts", "100,nan,102"])

    def test_inf_watts_rejected(self):
        with pytest.raises(SystemExit, match="finite"):
            main(["assess", "--nodes", "100", "--watts", "100,inf,102"])

    def test_negative_watts_rejected(self):
        with pytest.raises(SystemExit, match="non-negative"):
            main(["assess", "--nodes", "100", "--watts", "100,-4.0,102"])

    def test_unparseable_watts_chain_cause(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["plan", "--nodes", "100", "--pilot", "1.0,abc"])
        assert isinstance(excinfo.value.__cause__, ValueError)


class TestStream:
    def test_text_replay(self, capsys):
        rc = main(["stream", "--system", "l-csc", "--dt", "4",
                   "--max-nodes", "12", "--accuracy", "0.05",
                   "--report-every", "1200"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "final stream state" in out
        assert "sequential stopping" in out
        assert "full-core compliant" in out

    def test_json_replay(self, capsys):
        import json

        rc = main(["stream", "--system", "l-csc", "--dt", "4",
                   "--max-nodes", "12", "--accuracy", "0.05",
                   "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["monitor"]["full_core_compliant"] is True
        assert payload["stopping"]["should_stop"] is True
        assert payload["samples_ingested"] > 0

    def test_unknown_system(self):
        with pytest.raises(SystemExit, match="unknown system"):
            main(["stream", "--system", "not-a-machine"])

    def test_bad_quantiles(self):
        with pytest.raises(SystemExit, match="quantiles"):
            main(["stream", "--system", "l-csc", "--quantiles", "1.5"])

    def test_bad_max_nodes(self):
        with pytest.raises(SystemExit, match="max-nodes"):
            main(["stream", "--system", "l-csc", "--max-nodes", "0"])


class TestBudget:
    def test_feasible(self, capsys):
        rc = main(["budget", "--nodes", "10000", "--cv", "0.025",
                   "--accuracy", "0.02", "--meters", "4",
                   "--meter-gain-cv", "0.002"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "FEASIBLE" in out
        assert "error budget" in out

    def test_partial_window_infeasible_on_gpu(self, capsys):
        rc = main(["budget", "--nodes", "10000", "--cv", "0.02",
                   "--accuracy", "0.02", "--partial-window",
                   "--machine-class", "gpu"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "NOT FEASIBLE" in out
        assert "window_bias" in out

    def test_conversion_error_included(self, capsys):
        rc = main(["budget", "--nodes", "1000", "--conversion-error",
                   "0.03"])
        out = capsys.readouterr().out
        assert "conversion modeling:     ±3.00%" in out


class TestSystems:
    def test_lists_registry(self, capsys):
        rc = main(["systems"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("lrz", "titan", "tu-dresden", "l-csc", "sequoia"):
            assert name in out


class TestExperiments:
    def test_run_one(self, capsys):
        rc = main(["experiments", "T5", "--quiet"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "within tolerance" in out

    def test_markdown_output(self, tmp_path, capsys):
        path = tmp_path / "exp.md"
        rc = main(["experiments", "S1", "--quiet", "--markdown", str(path)])
        assert rc == 0
        text = path.read_text()
        assert "S1" in text and "paper" in text


class TestLint:
    CLEAN = '"""Clean."""\n\n__all__ = ["f"]\n\n\ndef f(x):\n    """Id."""\n    return x\n'
    DIRTY = '"""Dirty."""\n\nHOUR = 3600.0\n'

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(self.CLEAN)
        rc = main(["lint", str(tmp_path), "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 findings" in out

    def test_findings_exit_one_with_locations(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        rc = main(["lint", str(tmp_path), "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "mod.py:3:" in out and "RPX002" in out

    def test_json_format(self, tmp_path, capsys):
        import json

        (tmp_path / "mod.py").write_text(self.DIRTY)
        rc = main(["lint", str(tmp_path), "--no-cache", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["files_scanned"] == 1
        assert [f["rule"] for f in payload["findings"]] == ["RPX002"]
        assert payload["findings"][0]["line"] == 3

    def test_json_format_clean(self, tmp_path, capsys):
        import json

        (tmp_path / "mod.py").write_text(self.CLEAN)
        rc = main(["lint", str(tmp_path), "--no-cache", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["findings"] == []

    def test_ignore_flag_disables_rule(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        rc = main(["lint", str(tmp_path), "--no-cache", "--ignore", "RPX002"])
        assert rc == 0

    def test_select_flag_runs_only_named_rule(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        rc = main(["lint", str(tmp_path), "--no-cache", "--select", "RPX001"])
        assert rc == 0

    def test_cache_round_trip(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text(self.DIRTY)
        cache = tmp_path / "cache.json"
        main(["lint", str(tmp_path), "--cache-file", str(cache)])
        capsys.readouterr()
        rc = main(["lint", str(tmp_path), "--cache-file", str(cache)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "(1 cached)" in out

    def test_self_lint_on_repo_source(self, capsys):
        from pathlib import Path

        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        rc = main(["lint", str(src), "--no-cache"])
        assert rc == 0


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
