"""Documentation contract: every public item carries a docstring.

Walks the installed package and asserts that each module, public class,
public function and public method is documented.  This keeps the
"doc comments on every public item" deliverable true by construction.
"""

import importlib
import inspect
import pkgutil

import repro


def _public_members(obj):
    for name, member in vars(obj).items():
        if name.startswith("_"):
            continue
        yield name, member


def _iter_modules():
    yield "repro", repro
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        yield info.name, importlib.import_module(info.name)


def test_every_module_documented():
    undocumented = [
        name for name, mod in _iter_modules() if not inspect.getdoc(mod)
    ]
    assert not undocumented, f"modules without docstrings: {undocumented}"


def test_every_public_class_and_function_documented():
    missing = []
    for mod_name, mod in _iter_modules():
        for name, member in _public_members(mod):
            if inspect.isclass(member) or inspect.isfunction(member):
                if getattr(member, "__module__", None) != mod_name:
                    continue  # re-export; checked at its home module
                if not inspect.getdoc(member):
                    missing.append(f"{mod_name}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_every_public_method_documented():
    missing = []
    for mod_name, mod in _iter_modules():
        for cls_name, cls in _public_members(mod):
            if not inspect.isclass(cls):
                continue
            if getattr(cls, "__module__", None) != mod_name:
                continue
            for name, member in _public_members(cls):
                if not (inspect.isfunction(member)
                        or isinstance(member, (property, staticmethod))):
                    continue
                func = (
                    member.fget if isinstance(member, property)
                    else member.__func__ if isinstance(member, staticmethod)
                    else member
                )
                # Inherited docstrings (e.g. via getdoc) are acceptable.
                if not inspect.getdoc(func):
                    missing.append(f"{mod_name}.{cls_name}.{name}")
    assert not missing, f"undocumented public methods: {missing}"
