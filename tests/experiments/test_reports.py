"""Report-rendering checks for the cheap experiments.

The expensive experiments' reports are exercised by the benchmark
harness; these cover the fast ones directly, including the ASCII
figure renderings.
"""

import pytest

from repro.experiments import (
    ext_derived,
    ext_exascale,
    figure1,
    figure2,
    sample_size_example,
    table5,
)


class TestReportsRender:
    def test_table5_report(self):
        out = table5.run().report()
        assert "Table 5" in out
        assert "exact match with paper: True" in out

    def test_sample_size_example_report(self):
        out = sample_size_example.run().report()
        assert "1/64" in out
        assert "±" in out

    def test_exascale_report(self):
        out = ext_exascale.run().report()
        assert "frontier" in out
        assert "sigma/mu" in out

    def test_derived_report(self):
        out = ext_derived.run().report()
        assert "nameplate" in out
        assert "not" in out  # the incomparability line

    def test_figure1_report_contains_plot(self):
        out = figure1.run(n_points=60).report()
        assert "relative power vs core-phase run fraction" in out
        assert "a=" in out  # plot legend
        assert "|" in out  # plot frame

    def test_figure2_report_contains_sparklines(self):
        out = figure2.run().report()
        assert "histograms" in out
        assert "█" in out

    def test_summary_lines_match_comparisons(self):
        res = table5.run()
        assert len(res.summary_lines()) == len(res.comparisons())

    def test_experiment_metadata(self):
        assert table5.run().experiment_id == "T5"
        assert figure2.run().artifact == "Figure 2"
