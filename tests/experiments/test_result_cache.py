"""Cache correctness: precise invalidation and corruption tolerance.

The fingerprint must change exactly when something that could change
the result changes — a significant source edit (to the module or to
anything in its in-package import closure), or a parameter change — and
must *not* change for whitespace/comment-only edits.  A corrupted entry
must degrade to a miss with a warning, never a crash.

Hashing is exercised against a synthetic package tree so the tests can
edit sources freely without touching the real library.
"""

from __future__ import annotations

import logging

import pytest

from repro.parallel.cache import ResultCache
from repro.parallel.hashing import (
    closure_digest,
    experiment_fingerprint,
    import_closure,
    normalized_source_digest,
)

EXP_SOURCE = '''\
"""A fake experiment module."""
from fakepkg import helper
from fakepkg.nested import deep

SCALE = 3


def run(seed=0):
    return helper.boost(SCALE) + deep.base(seed)
'''

HELPER_SOURCE = '''\
def boost(x):
    return x * 2
'''

DEEP_SOURCE = '''\
def base(seed):
    return seed + 1
'''


@pytest.fixture()
def pkg(tmp_path):
    root = tmp_path / "fakepkg"
    (root / "nested").mkdir(parents=True)
    (root / "__init__.py").write_text("", encoding="utf-8")
    (root / "exp.py").write_text(EXP_SOURCE, encoding="utf-8")
    (root / "helper.py").write_text(HELPER_SOURCE, encoding="utf-8")
    (root / "nested" / "__init__.py").write_text("", encoding="utf-8")
    (root / "nested" / "deep.py").write_text(DEEP_SOURCE, encoding="utf-8")
    return root


def _fingerprint(root, params=None):
    return experiment_fingerprint(
        "E1", "fakepkg.exp", params, package="fakepkg", root=root
    )


class TestImportClosure:
    def test_closure_walks_package_imports(self, pkg):
        closure = import_closure("fakepkg.exp", package="fakepkg", root=pkg)
        assert set(closure) >= {
            "fakepkg.exp", "fakepkg.helper", "fakepkg.nested.deep",
        }
        assert all(p.is_file() for p in closure.values())

    def test_unresolvable_module_raises(self, pkg):
        with pytest.raises(ValueError, match="cannot resolve"):
            import_closure("fakepkg.absent", package="fakepkg", root=pkg)

    def test_real_experiment_closure_reaches_shared_kernels(self):
        closure = import_closure("repro.experiments.figure3")
        assert "repro.core.coverage" in closure
        assert "repro.rng" in closure


class TestFingerprint:
    def test_hit_on_identical_code_and_params(self, pkg):
        assert _fingerprint(pkg) == _fingerprint(pkg)

    def test_whitespace_and_comment_edits_do_not_invalidate(self, pkg):
        before = _fingerprint(pkg)
        reformatted = EXP_SOURCE.replace(
            "SCALE = 3", "# tuned per the paper\nSCALE  =  3\n"
        )
        (pkg / "exp.py").write_text(reformatted, encoding="utf-8")
        assert _fingerprint(pkg) == before
        assert normalized_source_digest(
            EXP_SOURCE
        ) == normalized_source_digest(reformatted)

    def test_significant_edit_invalidates(self, pkg):
        before = _fingerprint(pkg)
        (pkg / "exp.py").write_text(
            EXP_SOURCE.replace("SCALE = 3", "SCALE = 4"), encoding="utf-8"
        )
        assert _fingerprint(pkg) != before

    def test_edit_in_import_closure_invalidates(self, pkg):
        before = _fingerprint(pkg)
        (pkg / "nested" / "deep.py").write_text(
            DEEP_SOURCE.replace("seed + 1", "seed + 2"), encoding="utf-8"
        )
        assert _fingerprint(pkg) != before

    def test_edit_outside_closure_does_not_invalidate(self, pkg):
        before = _fingerprint(pkg)
        (pkg / "unrelated.py").write_text("X = 9\n", encoding="utf-8")
        assert _fingerprint(pkg) == before

    def test_param_change_invalidates(self, pkg):
        assert _fingerprint(pkg, {"n": 5}) != _fingerprint(pkg, {"n": 6})
        assert _fingerprint(pkg, {"n": 5}) == _fingerprint(pkg, {"n": 5})

    def test_syntax_error_still_changes_digest(self, pkg):
        before = closure_digest("fakepkg.exp", package="fakepkg", root=pkg)
        (pkg / "exp.py").write_text(
            EXP_SOURCE + "\ndef broken(:\n", encoding="utf-8"
        )
        assert closure_digest(
            "fakepkg.exp", package="fakepkg", root=pkg
        ) != before


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.store("a" * 64, {"rows": [1, 2, 3]})
        assert cache.lookup("a" * 64) == {"rows": [1, 2, 3]}

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path / "c").lookup("b" * 64) is None

    def test_corrupted_entry_is_discarded_with_warning(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = "c" * 64
        path = cache.store(key, [1.0, 2.0])
        path.write_bytes(b"not a cache entry")
        with pytest.warns(RuntimeWarning, match="corrupted cache entry"):
            assert cache.lookup(key) is None
        assert not path.exists()  # discarded, so the next run re-stores
        assert cache.lookup(key) is None  # silent plain miss now

    def test_corruption_warning_reaches_the_logging_layer(
        self, tmp_path, caplog
    ):
        """The discard warning must survive warnings→logging capture.

        Operators running sweeps under ``logging.captureWarnings(True)``
        (the common service configuration) still need the corrupted-entry
        discard on record, naming the exact entry file.
        """
        cache = ResultCache(tmp_path / "c")
        key = "f" * 64
        path = cache.store(key, [3.0])
        path.write_bytes(b"garbage")
        logging.captureWarnings(True)
        try:
            with caplog.at_level(logging.WARNING, logger="py.warnings"):
                assert cache.lookup(key) is None
        finally:
            logging.captureWarnings(False)
        messages = [
            rec.getMessage()
            for rec in caplog.records
            if rec.name == "py.warnings"
        ]
        assert any(
            "discarding corrupted cache entry" in m and path.name in m
            for m in messages
        ), messages

    def test_checksum_mismatch_is_discarded_with_warning(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = "d" * 64
        path = cache.store(key, [1.0, 2.0])
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload bit; header stays intact
        path.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="checksum mismatch"):
            assert cache.lookup(key) is None

    def test_durations_roundtrip_and_merge(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.durations() == {}
        cache.record_durations({"V1": 22.2, "T5": 0.01})
        cache.record_durations({"T5": 0.02})
        assert cache.durations() == {"V1": 22.2, "T5": 0.02}

    def test_garbage_durations_file_is_a_clean_slate(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.record_durations({"V1": 1.0})
        (tmp_path / "c" / "durations.json").write_text(
            "{broken", encoding="utf-8"
        )
        assert cache.durations() == {}

    def test_cachedir_tag_written(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.store("e" * 64, 1)
        assert (tmp_path / "c" / "CACHEDIR.TAG").exists()
