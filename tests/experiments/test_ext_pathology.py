"""Tests for the X-PATH correlated meter-pathology audit experiment."""

import pytest

from repro.experiments import ext_pathology


@pytest.fixture(scope="module")
def result():
    # A shortened core keeps the 6-cell grid + clean + stacked + replay
    # sweep test-suite fast; paper scale runs in the golden full sweep.
    return ext_pathology.run(core_s=400.0)


class TestPathologyExperiment:
    def test_all_ok(self, result):
        assert result.all_ok(), "\n".join(
            c.line() for c in result.comparisons() if not c.ok
        )

    def test_grid_covers_every_kind_and_intensity(self, result):
        assert set(result.cells) == {
            f"{kind}-{intensity}"
            for kind in ("aliasing", "entropy", "spread")
            for intensity in ("low", "high")
        }

    def test_every_cell_reconciles_within_widened_bounds(self, result):
        for name, outcome in result.cells.items():
            assert outcome.reconciled, (name, outcome.reconciliation)
            assert outcome.mean_within_bound, name
            assert outcome.cv_within_bound, name

    def test_independence_only_bounds_fail(self, result):
        # The point of the correlated terms: with them stripped, the
        # high-intensity cells' actual error escapes the stated bound.
        for kind in ("aliasing", "entropy", "spread"):
            assert result.cells[
                f"{kind}-high"
            ].independent_bound_mean_violated, kind

    def test_matching_detector_fires_per_kind(self, result):
        expect = {"aliasing": "aliasing", "entropy": "entropy",
                  "spread": "offset"}
        for kind, which in expect.items():
            for intensity in ("low", "high"):
                outcome = result.cells[f"{kind}-{intensity}"]
                verdict = getattr(outcome.detection, which)
                assert verdict.suspected, (kind, intensity)

    def test_clean_run_is_quiet(self, result):
        assert not result.clean.detection.any_suspected
        assert result.clean.report.assumes_independence

    def test_every_cell_reports_gaming_and_cost(self, result):
        for name, outcome in result.cells.items():
            assert outcome.gaming is not None, name
            for level in (1, 2, 3):
                delta = result.gaming_delta_w(name, level)
                assert delta == delta, (name, level)  # finite, not NaN
            assert outcome.cost is not None, name
            assert outcome.cost.multiplier >= 1.0, name

    def test_spread_high_costs_more_samples_than_spread_low(self, result):
        assert (
            result.cells["spread-high"].cost.multiplier
            > result.cells["spread-low"].cost.multiplier
        )

    def test_stacked_scenario_reconciles(self, result):
        assert result.stacked.reconciled, result.stacked.reconciliation
        assert result.stacked.mean_within_bound

    def test_identity_settings_are_bit_identical(self, result):
        assert result.identity_matches_clean

    def test_deterministic_replay(self, result):
        assert result.deterministic

    def test_report_renders(self, result):
        text = result.report()
        assert "pathology grid" in text
        assert "aliasing-high" in text
        assert "gaming" in text
        assert "n mult" in text
        assert "restorable" in text
        assert "bit-identical replay: True" in text

    def test_registered_in_runner(self):
        from repro.experiments.runner import ALL_EXPERIMENTS

        assert ALL_EXPERIMENTS["X-PATH"] is ext_pathology.run
