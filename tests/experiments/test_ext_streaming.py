"""Tests for the X-STR streaming-vs-batch experiment."""

import numpy as np
import pytest

from repro.experiments import ext_streaming
from repro.experiments.table5 import PAPER_TABLE5


@pytest.fixture(scope="module")
def result():
    return ext_streaming.run()


class TestStreamingExperiment:
    def test_all_ok(self, result):
        assert result.all_ok(), "\n".join(
            c.line() for c in result.comparisons() if not c.ok
        )

    def test_moments_exact(self, result):
        for label, (streamed, batch) in result.moment_pairs.items():
            assert streamed == pytest.approx(batch, rel=1e-9), label

    def test_sequential_grid_matches_table5(self, result):
        np.testing.assert_array_equal(
            result.sequential_grid, PAPER_TABLE5
        )

    def test_stationary_quantiles_tight(self, result):
        for _, (streamed, exact) in result.stationary_quantiles.items():
            assert abs(streamed - exact) / exact < 0.01

    def test_merge_exactness_gap(self, result):
        # Moments merge exactly; the P² merge is only approximate — the
        # documented contrast between the two estimator families.
        assert result.merge_rel_err <= 1e-9
        assert result.merge_p2_rel_err <= 0.01

    def test_report_renders(self, result):
        text = result.report()
        assert "moment agreement" in text
        assert "exact match with Table 5: True" in text

    def test_registered_in_runner(self):
        from repro.experiments.runner import ALL_EXPERIMENTS

        assert ALL_EXPERIMENTS["X-STR"] is ext_streaming.run
