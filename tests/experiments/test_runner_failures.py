"""Failure isolation: one crashing experiment must not kill the sweep.

The scheduler converts a raising experiment into a
:class:`~repro.experiments.base.FailedResult` carrying the worker
traceback; every other job completes, and the runner's exit status goes
nonzero.  The injected experiment is a module-level function so it
pickles into pool workers by reference.
"""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.experiments.base import FailedResult


def _boom():
    raise RuntimeError("injected failure for the isolation test")


def _register_boom(monkeypatch):
    monkeypatch.setitem(runner.ALL_EXPERIMENTS, "BOOM", _boom)


class TestFailureIsolation:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_crash_degrades_to_failed_result(self, monkeypatch, jobs):
        _register_boom(monkeypatch)
        results = runner.run_all(
            ids=["T5", "BOOM", "S1"], verbose=False, jobs=jobs
        )
        assert list(results) == ["T5", "BOOM", "S1"]
        failed = results["BOOM"]
        assert isinstance(failed, FailedResult)
        assert not failed.all_ok()
        assert failed.comparisons() == []
        assert "injected failure" in failed.report()
        assert "RuntimeError" in failed.report()
        # The siblings completed untouched.
        assert results["T5"].all_ok()
        assert results["S1"].all_ok()

    def test_exit_status_nonzero(self, monkeypatch, capsys):
        _register_boom(monkeypatch)
        code = runner.main(["T5", "BOOM", "--jobs", "2", "--quiet"])
        assert code == 1
        assert "BOOM" in capsys.readouterr().err

    def test_failure_is_not_cached(self, monkeypatch, tmp_path):
        _register_boom(monkeypatch)
        from repro.parallel.cache import ResultCache

        cache = ResultCache(tmp_path / "c")
        first = runner.run_all(
            ids=["T5", "BOOM"], verbose=False, jobs=2, cache=cache
        )
        assert isinstance(first["BOOM"], FailedResult)
        # A second sweep re-attempts the failed experiment (replaying a
        # failure would mask a later fix) while T5 replays from cache.
        second = runner.run_all(
            ids=["T5", "BOOM"], verbose=False, jobs=2, cache=cache
        )
        assert isinstance(second["BOOM"], FailedResult)
        assert second["T5"].all_ok()

    def test_markdown_records_the_failure(self, monkeypatch):
        _register_boom(monkeypatch)
        results = runner.run_all(ids=["T5", "BOOM"], verbose=False, jobs=2)
        text = runner.experiments_markdown(results)
        assert "## BOOM — (raised) [FAIL]" in text
        assert "RuntimeError" in text

    def test_serial_default_still_propagates(self, monkeypatch):
        # The classic serial path (no jobs, no cache) keeps its
        # fail-fast contract for library callers.
        _register_boom(monkeypatch)
        with pytest.raises(RuntimeError, match="injected failure"):
            runner.run_all(ids=["BOOM"], verbose=False)
