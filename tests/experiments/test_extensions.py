"""Tests for the extension experiments (X1-X4)."""

import numpy as np
import pytest

from repro.experiments import (
    ext_dvfs_gaming,
    ext_exascale,
    ext_imbalance,
    ext_meter_quality,
)


class TestImbalance:
    def test_all_ok_reduced(self):
        res = ext_imbalance.run(n_sims=15_000)
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_coverage_ordering(self):
        res = ext_imbalance.run(n_sims=15_000)
        cov = {r.label: r.coverage_at_16 for r in res.regimes}
        assert cov["straggler-heavy"] < cov["mildly-uneven"]
        assert cov["straggler-heavy"] < cov["balanced"]

    def test_screen_is_predictive(self):
        # Each regime that fails coverage is flagged, and vice versa:
        # the normality screen is a usable gate.
        res = ext_imbalance.run(n_sims=15_000)
        for r in res.regimes:
            healthy = r.coverage_at_16 > 0.93
            assert healthy == r.passes_normality_check


class TestDvfsGaming:
    def test_all_ok(self):
        res = ext_dvfs_gaming.run(core_s=1200.0)
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_deeper_downclock_worse(self):
        shallow = ext_dvfs_gaming.run(multiplier=0.9, core_s=1200.0)
        deep = ext_dvfs_gaming.run(multiplier=0.7, core_s=1200.0)
        assert deep.dvfs.spread > shallow.dvfs.spread

    def test_validation(self):
        with pytest.raises(ValueError, match="downclock_fraction"):
            ext_dvfs_gaming.run(downclock_fraction=1.0)
        with pytest.raises(ValueError, match="multiplier"):
            ext_dvfs_gaming.run(multiplier=1.5)


class TestExascale:
    def test_all_ok(self):
        res = ext_exascale.run()
        assert res.all_ok()

    def test_requirements_grow_with_cv(self):
        res = ext_exascale.run()
        reqs = [r.required_nodes for r in res.rows]
        assert reqs == sorted(reqs)

    def test_frontier_consistent_with_rows(self):
        res = ext_exascale.run()
        for r in res.rows:
            if r.cv < res.frontier_cv:
                assert r.sixteen_node_accuracy <= ext_exascale.TARGET_LAMBDA + 1e-9
            if r.cv > res.frontier_cv * 1.01:
                assert r.sixteen_node_accuracy > ext_exascale.TARGET_LAMBDA

    def test_ten_percent_rule_always_comfortable(self):
        res = ext_exascale.run()
        assert all(r.rule_accuracy < 0.005 for r in res.rows)


class TestMeterQuality:
    def test_all_ok(self):
        res = ext_meter_quality.run(n_meters=15)
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_error_monotone_in_gain_cv(self):
        res = ext_meter_quality.run(n_meters=15)
        errs = [r.abs_error_p95 for r in res.rows]
        assert errs == sorted(errs)

    def test_datasheet_bias_negative(self):
        # Optimistic datasheets understate upstream power.
        res = ext_meter_quality.run(n_meters=5)
        assert res.datasheet_bias < 0
