"""Tests for the X-FAULT fault-injection/recovery audit experiment."""

import pytest

from repro.experiments import ext_faults


@pytest.fixture(scope="module")
def result():
    # A shortened core keeps the full pipeline (acceptance under all
    # three policies, sweep, flaky delivery, replay) test-suite fast.
    return ext_faults.run(core_s=600.0)


class TestFaultsExperiment:
    def test_all_ok(self, result):
        assert result.all_ok(), "\n".join(
            c.line() for c in result.comparisons() if not c.ok
        )

    def test_every_policy_reconciles_exactly(self, result):
        for policy, outcome in result.acceptance.items():
            assert outcome.reconciled, (policy, outcome.reconciliation)

    def test_quarantine_names_the_lost_node(self, result):
        assert result.nodes_lost != ()
        for outcome in result.acceptance.values():
            assert (
                tuple(outcome.report.nodes_quarantined) == result.nodes_lost
            )

    def test_sweep_breaker_is_monotone(self, result):
        rates = sorted(result.sweep)
        levels = [result.sweep[r].report.effective_level for r in rates]
        assert levels == sorted(levels, reverse=True)
        assert result.sweep[rates[0]].report.effective_level == 3
        assert result.sweep[rates[-1]].report.downgraded()

    def test_flaky_path_exercised(self, result):
        assert result.flaky.retries > 0
        assert result.flaky.reconciled

    def test_deterministic_replay(self, result):
        assert result.deterministic

    def test_report_renders(self, result):
        text = result.report()
        assert "acceptance scenario" in text
        assert "escalating dropout" in text
        assert "bit-identical replay: True" in text
        assert "data quality" in text

    def test_registered_in_runner(self):
        from repro.experiments.runner import ALL_EXPERIMENTS

        assert ALL_EXPERIMENTS["X-FAULT"] is ext_faults.run
