"""Tests for the experiment modules (reduced-scale where expensive).

These assert the *reproduction claims*: each experiment regenerates its
paper artefact within tolerance.  Statistical experiments run with
reduced replicate counts here; the benchmark harness runs them at
paper scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    gaming_case_studies,
    level1_variance,
    ranking,
    sample_size_example,
    t_vs_z,
    table2,
    table4,
    table5,
)
from repro.experiments.runner import ALL_EXPERIMENTS, run_all


class TestTable2:
    def test_all_within_tolerance(self):
        res = table2.run()
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_gpu_systems_show_large_spread(self):
        res = table2.run()
        spread = {r.system: r.first_vs_last_spread for r in res.rows}
        assert spread["l-csc"] > 0.20
        assert spread["piz-daint"] > 0.15
        assert abs(spread["colosse"]) < 0.01

    def test_report_renders(self):
        out = table2.run().report()
        assert "Table 2" in out and "sequoia" in out


class TestFigure1:
    def test_shapes(self):
        res = figure1.run(n_points=100)
        assert res.all_ok()
        shapes = {s.system: s.is_flat for s in res.series}
        assert shapes["colosse"] and shapes["sequoia"]
        assert not shapes["piz-daint"] and not shapes["l-csc"]

    def test_series_resolution(self):
        res = figure1.run(n_points=50)
        for s in res.series:
            assert 40 <= len(s.times) <= 60
            assert s.times[0] == pytest.approx(0.0)
            assert s.times[-1] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_points"):
            figure1.run(n_points=5)


class TestFigure2:
    def test_all_ok(self):
        res = figure2.run()
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_six_panels(self):
        assert len(figure2.run().panels) == 6


class TestTable4:
    def test_all_ok(self):
        res = table4.run()
        assert res.all_ok()

    def test_cv_band(self):
        res = table4.run()
        for row in res.rows:
            assert 0.014 < row.cv < 0.031


class TestTable5:
    def test_exact_reproduction(self):
        res = table5.run()
        np.testing.assert_array_equal(res.grid, table5.PAPER_TABLE5)
        assert res.all_ok()

    def test_other_population(self):
        # FPC matters less at N=100k: entries can only grow or stay.
        res = table5.run(n_nodes=100_000)
        assert np.all(res.grid >= table5.PAPER_TABLE5)


class TestFigure3:
    def test_reduced_scale_calibrated(self):
        res = figure3.run(n_sims=20_000, sample_sizes=(3, 5, 15))
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_pilot_size(self):
        res = figure3.run(n_sims=5_000, sample_sizes=(5,))
        assert res.pilot_size == 516

    def test_chunked_equals_serial_across_chunk_counts(self):
        # The determinism contract of the bootstrap hot path: the RNG
        # block, not the worker, is the unit of randomness, so 1, 2 and
        # 7 workers all reproduce the serial draws bit for bit.
        serial = figure3.run(n_sims=12_000, sample_sizes=(3, 10))
        for jobs in (1, 2, 7):
            chunked = figure3.run(
                n_sims=12_000, sample_sizes=(3, 10), jobs=jobs
            )
            np.testing.assert_array_equal(
                serial.coverage.coverage, chunked.coverage.coverage
            )
            np.testing.assert_array_equal(
                serial.coverage.standard_error,
                chunked.coverage.standard_error,
            )


class TestFigure4:
    def test_all_ok(self):
        res = figure4.run()
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_default_config_trend(self):
        res = figure4.run()
        vids = np.array([r.vid for r in res.rows], dtype=float)
        eff = np.array([r.eff_default for r in res.rows])
        assert np.polyfit(vids, eff, 1)[0] < 0

    def test_validation(self):
        with pytest.raises(ValueError, match="four nodes"):
            figure4.run(n_nodes=2)


class TestGaming:
    def test_all_ok(self):
        res = gaming_case_studies.run()
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_tsubame_fit_tight(self):
        res = gaming_case_studies.run()
        ts = next(c for c in res.cases if c.system == "tsubame-kfc")
        assert ts.measured_value == pytest.approx(0.109, abs=0.005)


class TestSampleSizeExample:
    def test_all_ok(self):
        assert sample_size_example.run().all_ok()


class TestLevel1Variance:
    def test_reduced_scale(self):
        res = level1_variance.run(n_trials=60)
        # The headline claims at reduced trial counts.
        worst_timing = max(r.timing_spread for r in res.rows)
        assert worst_timing > 0.15
        worst_sampling = max(r.sampling_spread for r in res.rows)
        assert worst_sampling > 0.04

    def test_validation(self):
        with pytest.raises(ValueError, match="n_trials"):
            level1_variance.run(n_trials=5)


class TestTvsZ:
    def test_reduced_scale(self):
        res = t_vs_z.run(n_sims=20_000)
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_width_deficit_value(self):
        res = t_vs_z.run(n_sims=1000)
        assert res.width_deficit == pytest.approx(0.086, abs=0.005)

    def test_deficit_shrinks_with_n(self):
        res = t_vs_z.run(n_sims=1000)
        ns = sorted(res.deficit_by_n)
        vals = [res.deficit_by_n[n] for n in ns]
        assert all(a > b for a, b in zip(vals, vals[1:]))


class TestRanking:
    def test_all_ok(self):
        res = ranking.run(n_trials=150)
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )


class TestRunner:
    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "T2", "F1", "F2", "T4", "T5", "F3", "F4", "G1", "S1", "V1",
            "Z1", "R1", "X1", "X2", "X3", "X4", "X5", "X6", "X-STR",
            "X-FAULT", "X-WIRE", "X-PATH",
        }

    def test_run_selected(self):
        results = run_all(ids=["T5", "S1"], verbose=False)
        assert set(results) == {"T5", "S1"}
        assert all(r.all_ok() for r in results.values())

    def test_unknown_id_rejected_before_any_work(self):
        with pytest.raises(KeyError, match="unknown") as excinfo:
            run_all(ids=["T5", "XX"], verbose=False)
        # The error names the offenders and the known ids.
        assert "XX" in str(excinfo.value)
        assert "T5" in str(excinfo.value)

    def test_unknown_id_rejected_in_parallel_mode(self):
        with pytest.raises(KeyError, match="unknown"):
            run_all(ids=["XX"], verbose=False, jobs=2)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate") as excinfo:
            run_all(ids=["T5", "S1", "T5"], verbose=False)
        assert "T5" in str(excinfo.value)

    def test_duplicate_ids_rejected_in_parallel_mode(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_all(ids=["S1", "S1"], verbose=False, jobs=2)

    def test_experiments_markdown(self):
        from repro.experiments.runner import experiments_markdown

        results = run_all(ids=["T5"], verbose=False)
        text = experiments_markdown(results)
        assert "# EXPERIMENTS" in text
        assert "T5" in text and "[PASS]" in text
        assert "```" in text
