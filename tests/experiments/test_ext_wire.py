"""Tests for the X-WIRE bandwidth-vs-accuracy frontier experiment."""

import pytest

from repro.experiments import ext_wire


@pytest.fixture(scope="module")
def result():
    # Paper-scale defaults: the whole sweep (5 codecs x 4 rate cells,
    # run twice for the determinism check) takes a few seconds.
    return ext_wire.run()


class TestWireExperiment:
    def test_all_ok(self, result):
        assert result.all_ok(), "\n".join(
            c.line() for c in result.comparisons() if not c.ok
        )

    def test_covers_the_full_grid(self, result):
        assert len(result.cells) == len(ext_wire._CODECS) * len(
            ext_wire._RATES
        )
        seen = {
            (c.codec, c.drop_rate, c.corrupt_rate) for c in result.cells
        }
        assert len(seen) == len(result.cells)

    def test_every_cell_audited(self, result):
        for cell in result.cells:
            assert cell.reconciled, cell.to_dict()
            assert cell.within_bounds, cell.to_dict()

    def test_lossy_cells_are_cheaper_than_raw64(self, result):
        raw = result._cell("raw64", 0.0, 0.0)
        for codec in ("delta-varint", "quant12", "quant8"):
            assert (
                result._cell(codec, 0.0, 0.0).bytes_per_sample
                < raw.bytes_per_sample
            )

    def test_frame_loss_is_the_only_verdict_flipper(self, result):
        for cell in result.cells:
            assert cell.verdict_flipped == (cell.frames_lost > 0)

    def test_deterministic_replay(self, result):
        assert result.deterministic

    def test_missing_cell_lookup_is_loud(self, result):
        with pytest.raises(KeyError):
            result._cell("morse", 0.0, 0.0)

    def test_report_renders_the_frontier_table(self, result):
        text = result.report()
        assert "bandwidth-vs-accuracy frontier" in text
        assert "delta-varint" in text
        assert "bit-identical replay: True" in text
