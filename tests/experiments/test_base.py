"""Tests for repro.experiments.base."""

import pytest

from repro.experiments.base import Comparison


class TestComparisonMatch:
    def test_exact(self):
        c = Comparison("x", paper=10.0, measured=10.0)
        assert c.ok
        assert c.rel_diff == 0.0

    def test_within_rel_tol(self):
        assert Comparison("x", 100.0, 104.0, rel_tol=0.05).ok
        assert not Comparison("x", 100.0, 106.0, rel_tol=0.05).ok

    def test_within_abs_tol(self):
        assert Comparison("x", 0.95, 0.96, rel_tol=0.0, abs_tol=0.02).ok
        assert not Comparison("x", 0.95, 0.98, rel_tol=0.0, abs_tol=0.02).ok

    def test_either_tolerance_suffices(self):
        c = Comparison("x", 0.001, 0.002, rel_tol=0.01, abs_tol=0.01)
        assert c.ok  # abs passes even though rel fails

    def test_zero_paper_value(self):
        assert Comparison("x", 0.0, 0.0).ok
        c = Comparison("x", 0.0, 0.5, rel_tol=0.5)
        assert c.rel_diff == float("inf")
        assert not c.ok

    def test_line_format(self):
        line = Comparison("core power", 398.7, 398.6, rel_tol=0.01).line()
        assert "[ok ]" in line and "core power" in line


class TestComparisonOneSided:
    def test_at_least(self):
        assert Comparison("x", 0.15, 0.20, mode="at_least").ok
        assert not Comparison("x", 0.15, 0.10, mode="at_least").ok
        assert Comparison("x", 0.15, 0.149, mode="at_least",
                          abs_tol=0.01).ok

    def test_at_most(self):
        assert Comparison("x", 0.02, 0.01, mode="at_most").ok
        assert not Comparison("x", 0.02, 0.05, mode="at_most").ok

    def test_line_shows_operator(self):
        assert ">=" in Comparison("x", 1.0, 2.0, mode="at_least").line()
        assert "<=" in Comparison("x", 1.0, 0.5, mode="at_most").line()

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            Comparison("x", 1.0, 1.0, mode="exactly")
