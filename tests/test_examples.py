"""Smoke tests: every example script runs cleanly and prints sane output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "green500_submission.py", "gaming_audit.py",
            "tune_gpu_efficiency.py", "tco_extrapolation.py",
            "audit_meter_log.py"} <= names


def test_quickstart():
    out = run_example("quickstart.py")
    assert "plan (Eq. 5)" in out
    assert "accuracy assessment" in out
    assert "meets" in out


def test_green500_submission():
    out = run_example("green500_submission.py")
    assert "Level 1" in out and "Level 3" in out
    assert out.count("Table 1 compliant: True") == 3
    # Old-style L1 and the 7-node L2 both fail the new rules; L3 passes.
    assert "new (post-2015) rules: FAIL" in out
    assert "new (post-2015) rules: pass" in out


def test_gaming_audit():
    out = run_example("gaming_audit.py")
    assert "window gaming" in out
    assert "VID screening" in out
    assert "favourably biased" in out


def test_tune_gpu_efficiency():
    out = run_example("tune_gpu_efficiency.py")
    assert "774 MHz" in out
    assert "1.018 V" in out


def test_tco_extrapolation():
    out = run_example("tco_extrapolation.py")
    assert "projected annual electricity cost" in out
    assert "EUR" in out


def test_audit_meter_log():
    out = run_example("audit_meter_log.py")
    assert "detected core phase" in out
    assert "understatement" in out
    assert "verdict" in out


def test_plan_site_campaign():
    out = run_example("plan_site_campaign.py")
    assert "error budget" in out
    assert "FEASIBLE" in out
    assert "NOT FEASIBLE" in out  # the partial-window what-if
    assert "empirical check" in out


def test_operate_fleet():
    out = run_example("operate_fleet.py")
    assert "FLAGGED" in out
    assert "stratified" in out
    assert "exceedance" in out
