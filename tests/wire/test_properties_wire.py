"""Property-based wire invariants (hypothesis).

Three contracts the ISSUE pins down:

* lossless codecs round-trip **bit-identically** (raw64 exactly;
  delta-varint after one trip onto its declared milliwatt grid);
* lossy codecs never exceed their **stated** per-sample bound;
* the frame parser **never raises**, whatever bytes arrive, and its
  sequence-gap accounting is exact for arbitrary drop patterns.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stream.ingest import SampleBatch
from repro.units import MILLIWATTS_PER_WATT
from repro.wire.codecs import CODEC_NAMES, make_codec
from repro.wire.framing import FrameParser, encode_frame
from repro.wire.session import WireReader, WireWriter

matrices = hnp.arrays(
    dtype=np.float64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=8),
    ),
    elements=st.floats(min_value=0.0, max_value=1e6),
)


class TestCodecProperties:
    @given(matrices)
    def test_raw64_round_trip_is_bit_identical(self, watts):
        codec = make_codec("raw64")
        payload, bound = codec.encode(watts)
        decoded, _ = codec.decode(payload, *watts.shape)
        assert bound == 0.0
        assert decoded.tobytes() == watts.tobytes()

    @given(matrices, st.sampled_from(["delta-varint", "zlib(delta-varint)"]))
    def test_delta_varint_lands_exactly_on_the_milliwatt_grid(
        self, watts, spec
    ):
        codec = make_codec(spec)
        payload, bound = codec.encode(watts)
        decoded, _ = codec.decode(payload, *watts.shape)
        grid = np.rint(watts * MILLIWATTS_PER_WATT) / MILLIWATTS_PER_WATT
        np.testing.assert_array_equal(decoded, grid)
        assert np.abs(decoded - watts).max(initial=0.0) <= bound
        # Second trip is bit-identical: the grid is a fixed point.
        payload2, _ = codec.encode(decoded)
        decoded2, _ = codec.decode(payload2, *watts.shape)
        assert decoded2.tobytes() == decoded.tobytes()

    @given(matrices, st.sampled_from(["quant8", "quant12"]))
    def test_lossy_error_never_exceeds_the_stated_bound(self, watts, spec):
        codec = make_codec(spec)
        payload, bound = codec.encode(watts)
        decoded, dec_bound = codec.decode(payload, *watts.shape)
        assert dec_bound == bound
        # One ulp of slack for the affine reconstruction arithmetic.
        slack = 4.0 * np.spacing(np.abs(watts).max(initial=1.0))
        assert np.abs(decoded - watts).max(initial=0.0) <= bound + slack

    @given(matrices, st.sampled_from(CODEC_NAMES))
    def test_every_codec_encode_is_deterministic(self, watts, spec):
        a, bound_a = make_codec(spec).encode(watts)
        b, bound_b = make_codec(spec).encode(watts)
        assert a == b
        assert bound_a == bound_b


class TestParserNeverCrashes:
    @given(st.binary(max_size=600))
    def test_pure_garbage(self, data):
        parser = FrameParser()
        events = parser.feed(data) + parser.close()
        assert all(not e.ok for e in events)
        assert parser.bytes_fed == len(data)

    @given(
        st.binary(max_size=200),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=0, max_value=255),
            ),
            max_size=8,
        ),
        st.integers(min_value=1, max_value=97),
    )
    @settings(max_examples=60)
    def test_mutated_valid_stream(self, garbage, mutations, chunk):
        stream = bytearray(
            b"".join(
                encode_frame(
                    codec_id=1,
                    flags=0,
                    seq=i,
                    node_lo=0,
                    n_nodes=3,
                    n_ticks=2,
                    tick=2 * i,
                    payload=bytes(64),
                )
                for i in range(4)
            )
        )
        for pos, mask in mutations:
            stream[pos % len(stream)] ^= mask
        stream += garbage
        parser = FrameParser()
        events = []
        for i in range(0, len(stream), chunk):
            events.extend(parser.feed(bytes(stream[i : i + chunk])))
        events.extend(parser.close())
        # Conservation: every event is ok or corrupt, and if nothing
        # was mutated the four frames all survive.
        assert parser.frames_ok <= 4
        if not mutations and not garbage:
            assert parser.frames_ok == 4
            assert parser.garbage_bytes == 0


class TestSequenceGapAccounting:
    @given(
        st.sets(
            st.integers(min_value=0, max_value=9), max_size=9
        ),
        st.integers(min_value=1, max_value=101),
    )
    @settings(max_examples=60)
    def test_gap_detection_is_exact(self, dropped, chunk):
        n_frames, n_ticks, n_nodes = 10, 3, 4
        writer = WireWriter("raw64")
        frames = writer.write_all(
            [
                SampleBatch(
                    times=np.arange(i * n_ticks, (i + 1) * n_ticks) * 2.0,
                    watts=np.full((n_ticks, n_nodes), 100.0 + i),
                    node_ids=np.arange(n_nodes, dtype=np.int64),
                )
                for i in range(n_frames)
            ]
        )
        data = b"".join(
            f.data for f in frames if f.seq not in dropped
        )
        reader = WireReader(dt_s=2.0)
        batches = []
        for i in range(0, len(data), chunk):
            batches.extend(reader.feed(data[i : i + chunk]))
        batches.extend(reader.close())
        # Trailing drops are invisible to the reader (nothing follows
        # them); interior drops must be detected exactly.
        surviving = [i for i in range(n_frames) if i not in dropped]
        interior = {
            i for i in dropped if surviving and i < max(surviving, default=-1)
        }
        assert reader.frames_ok == len(surviving)
        assert reader.frames_missing == len(interior)
        assert reader.gap_ticks == n_ticks * len(interior)
        if surviving:
            watts = np.vstack([b.watts for b in batches])
            assert watts.shape[0] == n_ticks * (max(surviving) + 1)
            for i in range(max(surviving) + 1):
                rows = watts[i * n_ticks : (i + 1) * n_ticks]
                if i in dropped:
                    assert np.isnan(rows).all()
                else:
                    assert (rows == 100.0 + i).all()
        else:
            assert batches == []
