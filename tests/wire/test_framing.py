"""Frame layout and parser resynchronisation tests."""

from __future__ import annotations

import struct

import pytest

from repro.wire.framing import (
    HEADER_LEN,
    MAGIC,
    MAX_PAYLOAD_LEN,
    TRAILER_LEN,
    WIRE_VERSION,
    FrameParser,
    encode_frame,
)


def frame(seq: int = 0, payload: bytes = b"pppp", **overrides) -> bytes:
    kwargs = dict(
        codec_id=1,
        flags=0,
        seq=seq,
        node_lo=0,
        n_nodes=4,
        n_ticks=2,
        tick=seq * 2,
        payload=payload,
    )
    kwargs.update(overrides)
    return encode_frame(**kwargs)


class TestEncodeFrame:
    def test_layout_matches_the_documented_offsets(self):
        data = frame(seq=7, payload=b"abcdef")
        assert data[:4] == MAGIC
        assert data[4] == WIRE_VERSION
        assert data[5] == 1  # codec_id
        assert struct.unpack_from("<I", data, 8)[0] == 7  # seq
        assert struct.unpack_from("<I", data, 32)[0] == 6  # payload_len
        assert len(data) == HEADER_LEN + 6 + TRAILER_LEN

    def test_rejects_oversized_payload(self):
        with pytest.raises(ValueError, match="MAX_PAYLOAD_LEN"):
            encode_frame(
                codec_id=1,
                flags=0,
                seq=0,
                node_lo=0,
                n_nodes=1,
                n_ticks=1,
                tick=0,
                payload=b"\x00" * (MAX_PAYLOAD_LEN + 1),
            )


class TestParserHappyPath:
    def test_round_trip(self):
        parser = FrameParser()
        events = parser.feed(frame(seq=3, payload=b"hello"))
        events += parser.close()
        assert [e.kind for e in events] == ["ok"]
        assert events[0].header.seq == 3
        assert events[0].payload == b"hello"
        assert parser.frames_ok == 1
        assert parser.garbage_bytes == 0

    def test_byte_at_a_time_delivery(self):
        data = frame(seq=0) + frame(seq=1)
        parser = FrameParser()
        events = []
        for i in range(len(data)):
            events += parser.feed(data[i : i + 1])
        events += parser.close()
        assert [e.header.seq for e in events if e.ok] == [0, 1]
        assert parser.frames_ok == 2

    def test_garbage_between_frames_is_counted_and_skipped(self):
        data = b"\x00\x01junk" + frame(seq=0) + b"zzz" + frame(seq=1)
        parser = FrameParser()
        events = parser.feed(data) + parser.close()
        assert [e.header.seq for e in events if e.ok] == [0, 1]
        assert parser.garbage_bytes == len(b"\x00\x01junk") + len(b"zzz")

    def test_magic_split_across_chunks_still_parses(self):
        data = frame(seq=0)
        parser = FrameParser()
        events = parser.feed(data[:2])  # half the magic
        events += parser.feed(data[2:])
        events += parser.close()
        assert parser.frames_ok == 1
        assert [e.kind for e in events] == ["ok"]


class TestParserCorruption:
    def test_crc_failure_yields_exactly_one_corrupt_event(self):
        data = bytearray(frame(seq=5, payload=b"x" * 40))
        data[HEADER_LEN + 3] ^= 0xFF  # payload byte
        parser = FrameParser()
        events = parser.feed(bytes(data)) + parser.close()
        assert [e.kind for e in events] == ["corrupt"]
        assert events[0].reason == "crc mismatch"
        assert events[0].header.seq == 5  # header survived for accounting
        assert parser.crc_failures == 1

    def test_crc_skip_covers_the_declared_extent(self):
        # A corrupted frame followed by a clean one: the parser must
        # not rescan inside the corrupted frame's body.
        bad = bytearray(frame(seq=0, payload=MAGIC * 3))
        bad[-1] ^= 0x01  # break the trailer
        parser = FrameParser()
        events = parser.feed(bytes(bad) + frame(seq=1)) + parser.close()
        kinds = [e.kind for e in events]
        assert kinds == ["corrupt", "ok"]
        assert parser.crc_failures == 1
        assert parser.frames_ok == 1

    def test_bad_version_is_rejected_then_resynchronises(self):
        bad = bytearray(frame(seq=0))
        bad[4] = 99  # version
        parser = FrameParser()
        events = parser.feed(bytes(bad) + frame(seq=1)) + parser.close()
        assert any(
            e.kind == "corrupt" and "version" in e.reason for e in events
        )
        assert [e.header.seq for e in events if e.ok] == [1]
        assert parser.header_rejects >= 1

    def test_unknown_flags_are_rejected(self):
        data = frame(seq=0, flags=0x8000)
        parser = FrameParser()
        events = parser.feed(data) + parser.close()
        assert all(not e.ok for e in events)
        assert any("flags" in e.reason for e in events)

    def test_truncated_stream_reports_one_final_corrupt_event(self):
        data = frame(seq=0, payload=b"y" * 30)
        parser = FrameParser()
        events = parser.feed(data[:-7])
        assert events == []
        events = parser.close()
        assert [e.kind for e in events] == ["corrupt"]
        assert "truncated" in events[0].reason
        assert parser.truncated_frames == 1

    def test_implausible_length_does_not_buffer_forever(self):
        bad = bytearray(frame(seq=0))
        struct.pack_into("<I", bad, 32, MAX_PAYLOAD_LEN + 1)
        parser = FrameParser()
        events = parser.feed(bytes(bad)) + parser.close()
        assert any(
            "implausible payload length" in e.reason for e in events
        )

    def test_closed_parser_refuses_feed(self):
        parser = FrameParser()
        parser.close()
        with pytest.raises(ValueError, match="closed"):
            parser.feed(b"x")
        assert parser.close() == []  # idempotent
