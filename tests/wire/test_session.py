"""Writer/reader session tests: ordering, gaps, duplicates, audit."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.ingest import SampleBatch
from repro.wire.codecs import available_codecs
from repro.wire.session import WireReader, WireWriter

DT_S = 2.0
N_NODES = 5


def make_batches(n_batches: int = 6, n_ticks: int = 4) -> list[SampleBatch]:
    rng = np.random.default_rng(99)
    batches = []
    for i in range(n_batches):
        ticks = np.arange(i * n_ticks, (i + 1) * n_ticks)
        batches.append(
            SampleBatch(
                times=ticks * DT_S,
                watts=400.0
                + 10.0 * rng.standard_normal((n_ticks, N_NODES)),
                node_ids=np.arange(N_NODES, dtype=np.int64),
            )
        )
    return batches


def stitch(batches: list[SampleBatch]) -> np.ndarray:
    return np.vstack([b.watts for b in batches])


class TestWriter:
    def test_assigns_consecutive_seq_and_cumulative_ticks(self):
        writer = WireWriter("raw64")
        frames = writer.write_all(make_batches(3, n_ticks=4))
        assert [f.seq for f in frames] == [0, 1, 2]
        assert [f.tick for f in frames] == [0, 4, 8]
        assert writer.frames_written == 3
        assert writer.samples_written == 3 * 4 * N_NODES
        assert writer.bytes_written == sum(f.n_bytes for f in frames)

    def test_rejects_non_contiguous_node_ids(self):
        writer = WireWriter()
        batch = SampleBatch(
            times=np.array([0.0]),
            watts=np.ones((1, 3)),
            node_ids=np.array([0, 2, 5]),
        )
        with pytest.raises(ValueError, match="contiguous"):
            writer.write(batch)

    def test_rejects_node_range_change_mid_stream(self):
        writer = WireWriter()
        batches = make_batches(2)
        writer.write(batches[0])
        shifted = SampleBatch(
            times=batches[1].times,
            watts=batches[1].watts,
            node_ids=np.arange(1, N_NODES + 1, dtype=np.int64),
        )
        with pytest.raises(ValueError, match="changed mid-stream"):
            writer.write(shifted)

    def test_rejects_empty_batches(self):
        writer = WireWriter()
        with pytest.raises(ValueError, match="empty"):
            writer.write(
                SampleBatch(
                    times=np.zeros(0),
                    watts=np.zeros((0, 2)),
                    node_ids=np.arange(2),
                )
            )

    def test_tracks_the_worst_lossy_bound(self):
        writer = WireWriter("quant8")
        writer.write_all(make_batches(3))
        assert writer.error_bound_w > 0.0


class TestCleanRoundTrip:
    @pytest.mark.parametrize("spec", available_codecs())
    def test_every_codec_round_trips_in_odd_chunks(self, spec):
        batches = make_batches()
        writer = WireWriter(spec)
        data = b"".join(f.data for f in writer.write_all(batches))
        reader = WireReader(dt_s=DT_S)
        got = []
        for i in range(0, len(data), 37):  # deliberately odd chunking
            got.extend(reader.feed(data[i : i + 37]))
        got.extend(reader.close())
        assert reader.frames_ok == len(batches)
        assert reader.frames_missing == 0
        assert reader.error_bound_w == writer.error_bound_w
        assert reader.codec_names == (spec,)
        sent, received = stitch(batches), stitch(got)
        assert np.abs(received - sent).max() <= writer.error_bound_w + 1e-12
        if writer.codec.lossless and spec.startswith("raw64"):
            assert received.tobytes() == sent.tobytes()
        np.testing.assert_array_equal(
            np.concatenate([b.times for b in got]),
            np.concatenate([b.times for b in batches]),
        )


class TestLossAndReorder:
    def test_dropped_frame_becomes_a_nan_gap_with_rebuilt_times(self):
        batches = make_batches(5, n_ticks=3)
        frames = WireWriter("raw64").write_all(batches)
        del frames[2]  # lose seq 2
        reader = WireReader(dt_s=DT_S)
        got = reader.feed(b"".join(f.data for f in frames))
        got.extend(reader.close())
        assert reader.frames_missing == 1
        assert reader.gap_ticks == 3
        watts = stitch(got)
        assert watts.shape == (15, N_NODES)
        assert np.isnan(watts[6:9]).all()
        assert np.isfinite(np.delete(watts, slice(6, 9), axis=0)).all()
        times = np.concatenate([b.times for b in got])
        np.testing.assert_allclose(times, np.arange(15) * DT_S)

    def test_trailing_drop_is_only_visible_at_close(self):
        frames = WireWriter("raw64").write_all(make_batches(4))
        reader = WireReader(dt_s=DT_S)
        got = reader.feed(b"".join(f.data for f in frames[:-1]))
        got.extend(reader.close())
        # The reader cannot know seq 3 ever existed: the chaos layer
        # accounts for trailing drops from the ledger side.
        assert reader.frames_missing == 0
        assert len(got) == 3

    def test_reordered_frames_are_reassembled_in_order(self):
        batches = make_batches(4)
        frames = WireWriter("raw64").write_all(batches)
        shuffled = [frames[0], frames[2], frames[1], frames[3]]
        reader = WireReader(dt_s=DT_S)
        got = []
        for f in shuffled:
            got.extend(reader.feed(f.data))
        got.extend(reader.close())
        assert reader.frames_reordered == 1
        assert reader.frames_missing == 0
        assert stitch(got).tobytes() == stitch(batches).tobytes()

    def test_gap_blocked_frames_are_not_counted_reordered(self):
        frames = WireWriter("raw64").write_all(make_batches(4))
        reader = WireReader(dt_s=DT_S)
        for f in [frames[1], frames[2], frames[3]]:  # 0 never arrives
            reader.feed(f.data)
        reader.close()
        assert reader.frames_reordered == 0
        assert reader.frames_missing == 1

    def test_duplicates_are_counted_and_dropped(self):
        batches = make_batches(3)
        frames = WireWriter("raw64").write_all(batches)
        reader = WireReader(dt_s=DT_S)
        got = []
        for f in [frames[0], frames[0], frames[1], frames[1], frames[2]]:
            got.extend(reader.feed(f.data))
        got.extend(reader.close())
        assert reader.frames_duplicate == 2
        assert stitch(got).tobytes() == stitch(batches).tobytes()

    def test_window_overflow_gives_up_on_the_oldest_gap(self):
        frames = WireWriter("raw64").write_all(make_batches(6))
        reader = WireReader(dt_s=DT_S, reorder_window=2)
        got = []
        for f in frames[1:]:  # seq 0 lost; 5 pending frames vs window 2
            got.extend(reader.feed(f.data))
        assert got, "window overflow should force release before close"
        got.extend(reader.close())
        assert reader.frames_missing == 1
        assert np.isnan(stitch(got)[:4]).all()

    def test_corrupt_frame_is_a_crc_failure_plus_gap(self):
        batches = make_batches(4)
        frames = WireWriter("delta-varint").write_all(batches)
        mangled = bytearray(frames[1].data)
        mangled[-2] ^= 0x55
        stream = (
            frames[0].data
            + bytes(mangled)
            + frames[2].data
            + frames[3].data
        )
        reader = WireReader(dt_s=DT_S)
        got = reader.feed(stream)
        got.extend(reader.close())
        assert reader.crc_failures == 1
        assert reader.frames_ok == 3
        assert reader.frames_missing == 1
        watts = stitch(got)
        assert np.isnan(watts[4:8]).all()

    def test_undecodable_payload_is_booked_not_raised(self):
        # A frame with a valid CRC but an unregistered codec id.
        from repro.wire.framing import encode_frame

        data = encode_frame(
            codec_id=77,
            flags=0,
            seq=0,
            node_lo=0,
            n_nodes=2,
            n_ticks=1,
            tick=0,
            payload=np.zeros(1, dtype="<f8").tobytes() + b"\x00\x00",
        )
        reader = WireReader(dt_s=DT_S)
        got = reader.feed(data)
        got.extend(reader.close())
        assert reader.frames_undecodable == 1
        assert reader.frames_ok == 0
        assert got and np.isnan(got[0].watts).all()

    def test_reader_refuses_feed_after_close(self):
        reader = WireReader(dt_s=DT_S)
        reader.close()
        with pytest.raises(ValueError, match="closed"):
            reader.feed(b"x")
        assert reader.close() == []

    def test_reorder_window_must_be_positive(self):
        with pytest.raises(ValueError, match="reorder_window"):
            WireReader(reorder_window=0)
