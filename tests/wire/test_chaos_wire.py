"""Wire chaos harness tests: inject, recover, reconcile, bound, label."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.recovery import GAP_POLICIES
from repro.stream.estimators import P2Quantile
from repro.wire.chaos import WireScenario, run_wire_chaos
from repro.wire.codecs import available_codecs
from repro.wire.frontier import frontier_cell, wire_frontier

LOSSY = WireScenario(
    name="lossy", codec="delta-varint", drop_rate=0.15, corrupt_rate=0.15
)


@pytest.fixture(scope="module")
def run():
    # Module-scoped (the conftest fixtures are function-scoped) so one
    # simulated run feeds every wire chaos trial here.
    from repro.cluster.components import CpuModel, DramModel, FanModel, GpuModel
    from repro.cluster.node import NodeConfig
    from repro.cluster.system import SystemModel
    from repro.cluster.thermal import FanController
    from repro.cluster.variability import ManufacturingVariation
    from repro.traces.synth import simulate_run
    from repro.workloads.base import ConstantWorkload

    config = NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
        n_cpus=2,
        gpu=GpuModel(idle_watts=18.0, peak_watts=220.0),
        n_gpus=4,
        dram=DramModel.for_capacity(128.0),
        fan=FanModel(max_watts=150.0),
        other_watts=30.0,
    )
    system = SystemModel(
        "test-gpu",
        16,
        config,
        variation=ManufacturingVariation(sigma=0.02),
        fan_controller=FanController(
            fan_model=config.fan, reference_watts=1000.0
        ),
        seed=78,
    )
    workload = ConstantWorkload(utilisation=0.95, core_s=400.0)
    return simulate_run(system, workload, dt=2.0, seed=5)


@pytest.fixture(scope="module")
def lossy_outcome(run):
    return run_wire_chaos(
        run,
        LOSSY,
        seed=17,
        node_indices=np.arange(8),
        ticks_per_batch=10,
    )


class TestLossyScenario:
    def test_reconciles_exactly_and_stays_in_bounds(self, lossy_outcome):
        out = lossy_outcome
        assert out.reconciled, out.reconciliation
        assert out.mean_within_bound
        assert out.cv_within_bound
        assert out.ok()

    def test_injects_real_loss(self, lossy_outcome):
        assert lossy_outcome.ledger.frames_lost > 0
        assert lossy_outcome.report.downgraded()

    def test_report_carries_the_wire_provenance(self, lossy_outcome):
        rep = lossy_outcome.report
        assert rep.codec == "delta-varint"
        assert rep.codec_error_bound_w == pytest.approx(0.0005)
        assert rep.frames_dropped == lossy_outcome.ledger.frames_dropped
        assert rep.frames_corrupt == lossy_outcome.ledger.frames_corrupted

    def test_is_bit_deterministic(self, run, lossy_outcome):
        again = run_wire_chaos(
            run,
            LOSSY,
            seed=17,
            node_indices=np.arange(8),
            ticks_per_batch=10,
        )
        assert again.to_dict() == lossy_outcome.to_dict()

    def test_every_gap_policy_reconciles(self, run):
        for policy in GAP_POLICIES:
            out = run_wire_chaos(
                run,
                LOSSY,
                seed=17,
                gap_policy=policy,
                node_indices=np.arange(8),
                ticks_per_batch=10,
            )
            assert out.ok(), (policy, out.reconciliation)


class TestEveryCodec:
    @pytest.mark.parametrize("codec", available_codecs())
    def test_reconciles_under_loss(self, run, codec):
        scenario = WireScenario(
            name=f"{codec}-loss",
            codec=codec,
            drop_rate=0.1,
            corrupt_rate=0.1,
        )
        out = run_wire_chaos(
            run,
            scenario,
            seed=23,
            node_indices=np.arange(8),
            ticks_per_batch=10,
        )
        assert out.ok(), (codec, out.reconciliation)

    def test_clean_raw64_wire_is_bit_exact(self, run):
        out = run_wire_chaos(
            run,
            WireScenario(name="clean", codec="raw64"),
            seed=1,
            node_indices=np.arange(8),
            ticks_per_batch=10,
        )
        # Welford accumulation vs direct numpy differs only in the last
        # bit or two; nothing else may move.
        assert out.rel_err_fleet_mean <= 1e-12
        assert out.rel_err_node_cv <= 1e-12
        assert not out.report.downgraded()


class TestQuantileCaveat:
    def test_lossy_codec_note_names_codec_and_caveat(self, run):
        out = run_wire_chaos(
            run,
            WireScenario(name="q8", codec="quant8"),
            seed=3,
            node_indices=np.arange(8),
            ticks_per_batch=10,
            quantiles=(0.5,),
        )
        assert len(out.report.notes) == 1
        note = out.report.notes[0]
        assert "quant8" in note
        assert P2Quantile.MERGE_CAVEAT in note
        assert out.monitor_report.notes == out.report.notes
        assert 0.5 in out.quantile_estimates
        assert np.isfinite(out.quantile_estimates[0.5])

    def test_lossless_codec_still_declares_the_merge(self, run):
        out = run_wire_chaos(
            run,
            WireScenario(name="raw", codec="raw64"),
            seed=3,
            node_indices=np.arange(8),
            ticks_per_batch=10,
            quantiles=(0.5,),
        )
        assert out.report.notes == (P2Quantile.MERGE_CAVEAT,)

    def test_no_quantiles_no_note(self, lossy_outcome):
        assert lossy_outcome.report.notes == ()
        assert lossy_outcome.monitor_report.notes == ()

    def test_merged_quantile_tracks_the_fleet_row_mean(self, run):
        out = run_wire_chaos(
            run,
            WireScenario(name="med", codec="raw64"),
            seed=3,
            node_indices=np.arange(8),
            ticks_per_batch=10,
            quantiles=(0.5,),
        )
        # Clean wire: the P2 median of row means must sit inside the
        # observed fleet-mean neighbourhood.
        assert out.quantile_estimates[0.5] == pytest.approx(
            out.report.fleet_mean_w, rel=0.05
        )


class TestFrontier:
    def test_cell_projection_is_consistent(self, run):
        cell = frontier_cell(
            run,
            LOSSY,
            seed=17,
            node_indices=np.arange(8),
            ticks_per_batch=10,
        )
        assert cell.codec == "delta-varint"
        assert cell.frames_lost <= cell.frames_sent
        assert cell.node_bps == pytest.approx(
            cell.bytes_per_sample / float(run.dt)
        )
        assert cell.reconciled and cell.within_bounds
        assert cell.verdict_flipped == (cell.frames_lost > 0)
        assert cell.required_n_drift == (
            cell.required_n_degraded - cell.required_n_clean
        )

    def test_sweep_covers_the_grid_in_codec_major_order(self, run):
        cells = wire_frontier(
            run,
            codecs=("raw64", "quant8"),
            rates=((0.0, 0.0), (0.2, 0.0)),
            seed=7,
            node_indices=np.arange(8),
            ticks_per_batch=10,
        )
        assert [(c.codec, c.drop_rate) for c in cells] == [
            ("raw64", 0.0),
            ("raw64", 0.2),
            ("quant8", 0.0),
            ("quant8", 0.2),
        ]
        assert all(c.reconciled and c.within_bounds for c in cells)
        # Lossy quantisation must actually be cheaper on the wire.
        assert (
            cells[2].bytes_per_sample < cells[0].bytes_per_sample
        )
