"""Codec registry, round-trip and stated-bound tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.units import MILLIWATTS_PER_WATT
from repro.wire.codecs import (
    CODEC_NAMES,
    ZlibCodec,
    available_codecs,
    codec_for_frame,
    make_codec,
)
from repro.wire.framing import FLAG_ZLIB


@pytest.fixture()
def watts(rng) -> np.ndarray:
    """A plausible telemetry block: slow drift + small jitter."""
    n_ticks, n_nodes = 40, 6
    base = 1500.0 + 40.0 * rng.standard_normal(n_nodes)
    drift = np.linspace(0.0, 25.0, n_ticks)[:, None]
    return base[None, :] + drift + rng.normal(0.0, 3.0, (n_ticks, n_nodes))


class TestRegistry:
    def test_factory_knows_every_advertised_spec(self):
        for spec in available_codecs():
            codec = make_codec(spec)
            assert codec.name == spec

    def test_unknown_spec_is_a_loud_error(self):
        with pytest.raises(ValueError, match="unknown codec"):
            make_codec("gzip")

    def test_factory_passes_codec_instances_through(self):
        codec = make_codec("raw64")
        assert make_codec(codec) is codec

    def test_zlib_layers_do_not_stack(self):
        with pytest.raises(ValueError, match="stack"):
            ZlibCodec(make_codec("zlib(raw64)"))

    def test_codec_for_frame_reconstructs_the_composition(self):
        inner = make_codec("delta-varint")
        rebuilt = codec_for_frame(inner.codec_id, FLAG_ZLIB)
        assert rebuilt.name == "zlib(delta-varint)"
        assert codec_for_frame(inner.codec_id, 0).name == "delta-varint"

    def test_unregistered_id_raises_value_error(self):
        with pytest.raises(ValueError, match="unregistered"):
            codec_for_frame(200, 0)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "spec", ["raw64", "zlib(raw64)"]
    )
    def test_raw64_is_bit_identical(self, spec, watts):
        codec = make_codec(spec)
        payload, bound = codec.encode(watts)
        decoded, dec_bound = codec.decode(payload, *watts.shape)
        assert bound == dec_bound == 0.0
        assert decoded.tobytes() == watts.tobytes()

    @pytest.mark.parametrize(
        "spec", ["delta-varint", "zlib(delta-varint)"]
    )
    def test_delta_varint_is_lossless_on_the_milliwatt_grid(
        self, spec, watts
    ):
        codec = make_codec(spec)
        payload, bound = codec.encode(watts)
        decoded, _ = codec.decode(payload, *watts.shape)
        grid = np.rint(watts * MILLIWATTS_PER_WATT) / MILLIWATTS_PER_WATT
        np.testing.assert_array_equal(decoded, grid)
        assert np.abs(decoded - watts).max() <= bound
        # Re-encoding the decoded matrix round-trips bit-identically.
        payload2, _ = codec.encode(decoded)
        decoded2, _ = codec.decode(payload2, *watts.shape)
        assert decoded2.tobytes() == decoded.tobytes()

    @pytest.mark.parametrize("spec", ["quant8", "quant12"])
    def test_lossy_codecs_honour_their_stated_bound(self, spec, watts):
        codec = make_codec(spec)
        payload, bound = codec.encode(watts)
        decoded, dec_bound = codec.decode(payload, *watts.shape)
        assert dec_bound == bound  # bound recoverable from payload alone
        assert np.abs(decoded - watts).max() <= bound + 1e-12

    def test_quant12_is_tighter_than_quant8(self, watts):
        _, bound8 = make_codec("quant8").encode(watts)
        _, bound12 = make_codec("quant12").encode(watts)
        assert bound12 < bound8

    def test_constant_matrix_quantises_exactly(self):
        watts = np.full((5, 3), 321.5)
        for spec in CODEC_NAMES:
            codec = make_codec(spec)
            payload, bound = codec.encode(watts)
            decoded, _ = codec.decode(payload, 5, 3)
            np.testing.assert_allclose(decoded, watts, atol=max(bound, 0))

    def test_odd_sample_count_survives_quant12_pair_padding(self):
        watts = np.linspace(100.0, 200.0, 15).reshape(5, 3)
        codec = make_codec("quant12")
        payload, bound = codec.encode(watts)
        decoded, _ = codec.decode(payload, 5, 3)
        assert np.abs(decoded - watts).max() <= bound + 1e-12


class TestEncodeValidation:
    @pytest.mark.parametrize(
        "spec", ["delta-varint", "quant8", "quant12"]
    )
    def test_non_finite_samples_are_refused(self, spec):
        watts = np.array([[1.0, np.nan], [2.0, 3.0]])
        with pytest.raises(ValueError, match="finite"):
            make_codec(spec).encode(watts)

    def test_one_dimensional_input_is_refused(self):
        with pytest.raises(ValueError, match="2-D"):
            make_codec("raw64").encode(np.arange(4.0))

    def test_milliwatt_grid_overflow_is_loud(self):
        watts = np.full((2, 2), 1e19)
        with pytest.raises(ValueError, match="overflow"):
            make_codec("delta-varint").encode(watts)


class TestDecodeValidation:
    @pytest.mark.parametrize("spec", CODEC_NAMES)
    def test_wrong_length_payload_raises_value_error(self, spec):
        codec = make_codec(spec)
        payload, _ = codec.encode(np.ones((4, 3)))
        with pytest.raises(ValueError):
            codec.decode(payload, 7, 5)

    def test_varint_trailing_bytes_are_rejected(self):
        codec = make_codec("delta-varint")
        payload, _ = codec.encode(np.ones((2, 2)))
        with pytest.raises(ValueError, match="trailing"):
            # A dangling continuation byte: value count still matches,
            # but the stream doesn't end on the last value.
            codec.decode(payload + b"\x80", 2, 2)

    def test_quant_header_must_be_finite(self):
        codec = make_codec("quant8")
        payload, _ = codec.encode(np.ones((2, 2)))
        bad = np.array([np.nan, 1.0], dtype="<f8").tobytes() + payload[16:]
        with pytest.raises(ValueError, match="malformed"):
            codec.decode(bad, 2, 2)

    def test_zlib_garbage_is_a_value_error_not_a_crash(self):
        codec = make_codec("zlib(raw64)")
        with pytest.raises(ValueError, match="zlib layer"):
            codec.decode(b"not deflate data", 2, 2)
