"""Tests for repro.analysis.ranking_impact."""

import numpy as np
import pytest

from repro.analysis.ranking_impact import rank_impact_study
from repro.core.methodology import Level
from repro.lists.green500 import synthetic_green500


@pytest.fixture()
def base_list(rng):
    return synthetic_green500(rng, n_systems=60, n_derived=40, n_level1=16)


class TestRankImpact:
    def test_zero_error_zero_churn(self, base_list, rng):
        res = rank_impact_study(
            base_list, rng, n_trials=50,
            level_spread={Level.L1: 0.0, Level.L2: 0.0, Level.L3: 0.0},
        )
        assert res.top1_change_probability == 0.0
        assert res.top3_set_change_probability == 0.0
        assert res.mean_abs_rank_shift_top10 == 0.0

    def test_l1_error_churns_ranks(self, base_list, rng):
        res = rank_impact_study(base_list, rng, n_trials=200)
        assert res.top3_set_change_probability >= 0.05
        assert res.max_rank_shift_observed >= 1

    def test_bigger_error_more_churn(self, base_list):
        mild = rank_impact_study(
            base_list, np.random.default_rng(0), n_trials=150,
            level_spread={Level.L1: 0.02},
        )
        wild = rank_impact_study(
            base_list, np.random.default_rng(0), n_trials=150,
            level_spread={Level.L1: 0.20, Level.L2: 0.20},
        )
        assert (
            wild.mean_abs_rank_shift_top10
            >= mild.mean_abs_rank_shift_top10
        )

    def test_baseline_gap_reported(self, base_list, rng):
        res = rank_impact_study(base_list, rng, n_trials=10)
        assert res.baseline_top3_gap == pytest.approx(
            base_list.efficiency_gap(1, 3)
        )

    def test_summary(self, base_list, rng):
        s = rank_impact_study(base_list, rng, n_trials=10).summary()
        assert "#1 changes" in s

    def test_validation(self, base_list, rng):
        with pytest.raises(ValueError, match="n_trials"):
            rank_impact_study(base_list, rng, n_trials=0)
