"""Tests for repro.analysis.bootstrap."""

import numpy as np
import pytest

from repro.analysis.bootstrap import bootstrap_ci, bootstrap_statistic


class TestBootstrapStatistic:
    def test_mean_distribution(self, rng):
        x = rng.normal(100.0, 10.0, 400)
        dist = bootstrap_statistic(
            x, lambda b: b.mean(axis=1), n_boot=4000, rng=rng
        )
        assert dist.shape == (4000,)
        assert dist.mean() == pytest.approx(x.mean(), abs=0.2)
        # Bootstrap SD of the mean ≈ σ/√n.
        assert dist.std() == pytest.approx(10.0 / np.sqrt(400), rel=0.15)

    def test_batching_consistent(self, rng):
        x = rng.normal(size=100)
        a = bootstrap_statistic(
            x, lambda b: b.mean(axis=1), n_boot=1000,
            rng=np.random.default_rng(1), batch=100,
        )
        b = bootstrap_statistic(
            x, lambda b: b.mean(axis=1), n_boot=1000,
            rng=np.random.default_rng(1), batch=1000,
        )
        np.testing.assert_array_equal(a, b)

    def test_bad_statistic_shape(self, rng):
        x = rng.normal(size=50)
        with pytest.raises(ValueError, match="length-b"):
            bootstrap_statistic(x, lambda b: b.mean(), n_boot=10, rng=rng)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="two observations"):
            bootstrap_statistic([1.0], lambda b: b.mean(axis=1))
        with pytest.raises(ValueError, match="n_boot"):
            bootstrap_statistic([1.0, 2.0], lambda b: b.mean(axis=1),
                                n_boot=0)
        with pytest.raises(ValueError, match="batch"):
            bootstrap_statistic([1.0, 2.0], lambda b: b.mean(axis=1),
                                batch=0)


class TestBootstrapCi:
    def test_covers_true_mean(self, rng):
        hits = 0
        for _ in range(60):
            x = rng.normal(50.0, 5.0, 60)
            lo, hi = bootstrap_ci(
                x, lambda b: b.mean(axis=1), n_boot=1500, rng=rng
            )
            hits += lo <= 50.0 <= hi
        assert hits >= 50  # ~95% nominal, wide margin

    def test_interval_ordering(self, rng):
        x = rng.normal(size=100)
        lo, hi = bootstrap_ci(x, lambda b: b.mean(axis=1), rng=rng,
                              n_boot=500)
        assert lo < hi

    def test_works_for_cv_statistic(self, rng):
        # The σ/μ quantity the paper plans with.
        x = rng.normal(200.0, 4.0, 500)
        lo, hi = bootstrap_ci(
            x,
            lambda b: b.std(axis=1, ddof=1) / b.mean(axis=1),
            n_boot=2000,
            rng=rng,
        )
        assert lo < 0.02 < hi

    def test_bad_confidence(self, rng):
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_ci([1.0, 2.0], lambda b: b.mean(axis=1),
                         confidence=1.0)
