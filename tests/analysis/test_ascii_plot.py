"""Tests for repro.analysis.ascii_plot."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import (
    histogram_sparkline,
    line_plot,
    multi_line_plot,
)


class TestHistogramSparkline:
    def test_peak_gets_full_block(self):
        out = histogram_sparkline([1, 5, 2])
        assert out[1] == "█"
        assert len(out) == 3

    def test_zero_counts_blank(self):
        out = histogram_sparkline([0, 0, 0])
        assert out == "   "

    def test_rebinning(self):
        out = histogram_sparkline(np.ones(100), width=10)
        assert len(out) == 10

    def test_monotone_levels(self):
        out = histogram_sparkline([1, 2, 4, 8])
        blocks = " ▁▂▃▄▅▆▇█"
        levels = [blocks.index(ch) for ch in out]
        assert levels == sorted(levels)

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            histogram_sparkline([])
        with pytest.raises(ValueError, match="non-negative"):
            histogram_sparkline([-1.0])
        with pytest.raises(ValueError, match="width"):
            histogram_sparkline([1.0], width=0)


class TestLinePlot:
    def test_contains_marks_and_axis(self):
        x = np.linspace(0, 1, 50)
        out = line_plot(x, np.sin(x * 6), title="demo")
        assert "demo" in out
        assert "a" in out
        assert "+" in out and "-" in out

    def test_y_labels_are_extremes(self):
        x = np.linspace(0, 1, 50)
        y = np.linspace(5.0, 10.0, 50)
        out = line_plot(x, y)
        assert "10" in out and "5" in out

    def test_flat_series_handled(self):
        x = np.linspace(0, 1, 10)
        out = line_plot(x, np.full(10, 3.0))
        assert "a" in out  # no div-by-zero


class TestMultiLinePlot:
    def test_legend_lists_all_series(self):
        x = np.linspace(0, 1, 30)
        out = multi_line_plot(
            x, {"first": x, "second": 1 - x, "third": x * 0 + 0.5}
        )
        assert "a=first" in out and "b=second" in out and "c=third" in out

    def test_overlap_marker(self):
        x = np.linspace(0, 1, 30)
        out = multi_line_plot(x, {"up": x, "same": x.copy()})
        assert "*" in out

    def test_geometry(self):
        x = np.linspace(0, 1, 30)
        out = multi_line_plot(x, {"y": x}, width=40, height=8)
        plot_rows = [l for l in out.splitlines() if "|" in l]
        assert len(plot_rows) == 8

    def test_validation(self):
        x = np.linspace(0, 1, 10)
        with pytest.raises(ValueError, match="two x values"):
            multi_line_plot([0.0], {"y": [1.0]})
        with pytest.raises(ValueError, match="at least one series"):
            multi_line_plot(x, {})
        with pytest.raises(ValueError, match="length"):
            multi_line_plot(x, {"y": np.zeros(5)})
        with pytest.raises(ValueError, match="canvas"):
            multi_line_plot(x, {"y": x}, width=4)
        with pytest.raises(ValueError, match="series supported"):
            multi_line_plot(x, {f"s{i}": x for i in range(11)})
