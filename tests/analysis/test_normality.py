"""Tests for repro.analysis.normality."""

import numpy as np
import pytest

from repro.analysis.normality import (
    count_outliers,
    normality_report,
    qq_correlation,
)


class TestQqCorrelation:
    def test_normal_data_near_one(self, rng):
        x = rng.normal(0.0, 1.0, 2000)
        assert qq_correlation(x) > 0.995

    def test_heavy_tails_lower(self, rng):
        x = rng.standard_t(1.5, 2000)
        assert qq_correlation(x) < qq_correlation(rng.normal(size=2000))

    def test_degenerate(self):
        assert qq_correlation([5.0, 5.0, 5.0]) == 1.0

    def test_too_few(self):
        with pytest.raises(ValueError, match="three"):
            qq_correlation([1.0, 2.0])


class TestCountOutliers:
    def test_clean_normal(self, rng):
        x = rng.normal(100.0, 5.0, 1000)
        assert count_outliers(x) < 10

    def test_planted_outliers_found(self, rng):
        x = rng.normal(100.0, 5.0, 1000)
        x[:5] = 200.0
        assert count_outliers(x) >= 5

    def test_masking_resisted(self, rng):
        # A cluster of outliers inflates the classical σ; the MAD-based
        # score still flags them.
        x = rng.normal(100.0, 2.0, 500)
        x[:50] = 160.0
        assert count_outliers(x) >= 50

    def test_tiny_sample(self):
        assert count_outliers([1.0, 2.0]) == 0

    def test_zero_mad(self):
        x = np.array([5.0] * 99 + [6.0])
        assert count_outliers(x) == 1


class TestNormalityReport:
    def test_normal_sample_passes(self, rng):
        x = rng.normal(210.0, 5.0, 2000)
        r = normality_report(x)
        assert r.is_approximately_normal()
        assert r.dagostino_p is not None

    def test_heavily_skewed_fails(self, rng):
        x = rng.lognormal(0.0, 1.2, 2000)
        assert not normality_report(x).is_approximately_normal()

    def test_many_outliers_fail(self, rng):
        x = rng.normal(100.0, 2.0, 1000)
        x[:100] = 150.0
        r = normality_report(x)
        assert r.outlier_fraction > 0.02
        assert not r.is_approximately_normal()

    def test_report_fields(self, rng):
        r = normality_report(rng.normal(size=100))
        assert r.n == 100
        assert 0 <= r.outlier_fraction <= 1

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="eight"):
            normality_report([1.0] * 5)
        with pytest.raises(ValueError, match="non-finite"):
            normality_report([1.0] * 8 + [float("nan")])
