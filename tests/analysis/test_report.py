"""Tests for repro.analysis.report."""

import pytest

from repro.analysis.report import Table, format_paper_vs_measured


class TestTable:
    def test_render_contains_cells(self):
        t = Table(["system", "power"], title="demo")
        t.add_row(["lrz", 209.88])
        out = t.render()
        assert "demo" in out
        assert "lrz" in out and "209.88" in out

    def test_alignment_consistent(self):
        t = Table(["a", "b"])
        t.add_row(["x", 1.0])
        t.add_row(["longer-name", 2.0])
        lines = t.render().splitlines()
        assert len({len(line) for line in lines[-2:]}) == 1

    def test_row_width_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row([1])

    def test_number_formats(self):
        assert Table._fmt(0.123456) == "0.1235"
        assert Table._fmt(12.3456) == "12.35"
        assert Table._fmt(123456.7) == "123,456.7"
        assert Table._fmt(0) == "0"
        assert Table._fmt(True) == "yes"
        assert Table._fmt("text") == "text"

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError, match="column"):
            Table([])

    def test_str_is_render(self):
        t = Table(["x"])
        t.add_row([1])
        assert str(t) == t.render()


class TestPaperVsMeasured:
    def test_format(self):
        line = format_paper_vs_measured("core power", 398.7, 398.6, "kW")
        assert "398.7 kW" in line
        assert "-0.03%" in line

    def test_zero_paper_value(self):
        line = format_paper_vs_measured("x", 0.0, 1.0)
        assert "nan" in line
