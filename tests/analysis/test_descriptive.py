"""Tests for repro.analysis.descriptive."""

import numpy as np
import pytest

from repro.analysis.descriptive import describe, histogram


class TestDescribe:
    def test_basic(self, rng):
        x = rng.normal(200.0, 5.0, 5000)
        d = describe(x)
        assert d.n == 5000
        assert d.mean == pytest.approx(200.0, rel=0.01)
        assert d.std == pytest.approx(5.0, rel=0.05)
        assert d.cv == pytest.approx(0.025, rel=0.06)
        assert abs(d.skewness) < 0.15
        assert abs(d.excess_kurtosis) < 0.3

    def test_median(self):
        d = describe([1.0, 2.0, 100.0])
        assert d.median == 2.0

    def test_min_max_range(self):
        d = describe([10.0, 20.0, 30.0])
        assert d.minimum == 10.0 and d.maximum == 30.0
        assert d.range_fraction == pytest.approx(1.0)

    def test_single_value(self):
        d = describe([5.0])
        assert d.std == 0.0 and d.skewness == 0.0

    def test_skewed_data(self, rng):
        x = rng.lognormal(0.0, 0.8, 20_000)
        assert describe(x).skewness > 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            describe([])
        with pytest.raises(ValueError, match="non-finite"):
            describe([1.0, float("inf")])

    def test_cv_zero_mean(self):
        with pytest.raises(ValueError, match="undefined"):
            _ = describe([0.0, 0.0]).cv


class TestHistogram:
    def test_counts_sum_to_n(self, rng):
        x = rng.normal(100.0, 5.0, 1000)
        counts, edges = histogram(x, bins=20)
        assert counts.sum() == 1000
        assert edges.shape == (21,)

    def test_range_sigmas_clips_outliers(self, rng):
        x = np.concatenate([rng.normal(100.0, 5.0, 1000), [1e6]])
        counts, edges = histogram(x, bins=20, range_sigmas=4.0)
        # The far outlier is clipped into the last bin rather than
        # stretching the axis by four orders of magnitude.
        assert edges[-1] < 1e5

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            histogram([])
        with pytest.raises(ValueError, match="bins"):
            histogram([1.0], bins=0)
        with pytest.raises(ValueError, match="range_sigmas"):
            histogram([1.0, 2.0], range_sigmas=0.0)
