"""Tests for repro.analysis.gaming."""

import numpy as np
import pytest

from repro.analysis.gaming import optimal_window_gain
from repro.core.windows import is_legal_level1_window
from repro.traces.powertrace import PowerTrace


@pytest.fixture()
def tailing_trace():
    """A GPU-HPL-like trace: plateau then decline to ~60%."""
    t = np.linspace(0.0, 5400.0, 5401)
    x = t / 5400.0
    watts = 1000.0 * (1.0 - 0.4 * np.clip((x - 0.5) / 0.5, 0.0, 1.0))
    return PowerTrace(t, watts)


class TestOptimalWindowGain:
    def test_flat_trace_no_gain(self, flat_trace):
        res = optimal_window_gain(flat_trace)
        assert res.gaming_gain == pytest.approx(0.0, abs=1e-9)
        assert res.spread == pytest.approx(0.0, abs=1e-9)

    def test_tailing_trace_games_low(self, tailing_trace):
        res = optimal_window_gain(tailing_trace)
        assert res.gaming_gain < -0.05
        assert res.best_window.start > 0.5  # placed in the tail

    def test_worst_window_overstates(self, tailing_trace):
        res = optimal_window_gain(tailing_trace)
        assert res.worst_case_overstatement > 0.0
        assert res.worst_window.start < 0.3

    def test_best_window_is_legal(self, tailing_trace):
        res = optimal_window_gain(tailing_trace)
        assert is_legal_level1_window(
            res.best_window, tailing_trace.duration
        )

    def test_spread_is_worst_minus_best(self, tailing_trace):
        res = optimal_window_gain(tailing_trace)
        assert res.spread == pytest.approx(
            res.worst_case_overstatement - res.gaming_gain
        )

    def test_efficiency_inflation_positive_on_tail(self, tailing_trace):
        res = optimal_window_gain(tailing_trace)
        assert res.efficiency_inflation > 0.05
        # Consistency: inflation = truth/best − 1.
        assert res.efficiency_inflation == pytest.approx(
            res.true_average / res.best_average - 1.0
        )

    def test_longer_window_less_gameable(self, tailing_trace):
        short = optimal_window_gain(tailing_trace, window_fraction=0.16)
        long = optimal_window_gain(tailing_trace, window_fraction=0.6)
        assert abs(long.gaming_gain) < abs(short.gaming_gain)

    def test_full_core_window_ungameable(self, tailing_trace):
        res = optimal_window_gain(
            tailing_trace, window_fraction=0.8, within=(0.1, 0.9)
        )
        # Only one placement exists → zero spread.
        assert res.spread == pytest.approx(0.0, abs=1e-6)

    def test_unconstrained_beats_middle80(self, tailing_trace):
        guarded = optimal_window_gain(tailing_trace, within=(0.1, 0.9))
        free = optimal_window_gain(
            tailing_trace, window_fraction=0.16, within=(0.0, 1.0)
        )
        assert free.gaming_gain < guarded.gaming_gain

    def test_validation(self, tailing_trace):
        with pytest.raises(ValueError, match="does not fit"):
            optimal_window_gain(tailing_trace, window_fraction=0.9,
                                within=(0.1, 0.9))
        with pytest.raises(ValueError, match="positive duration"):
            optimal_window_gain(PowerTrace([0.0], [1.0]))

    def test_one_minute_floor_on_short_runs(self):
        # A 5-minute run: the minimum legal window is 60 s = 20%.
        t = np.linspace(0.0, 300.0, 301)
        tr = PowerTrace(t, 100.0 + t / 10.0)
        res = optimal_window_gain(tr)
        assert res.window_fraction == pytest.approx(0.2)
