"""Tests for repro.analysis.phases — core-phase detection."""

import numpy as np
import pytest

from repro.analysis.phases import detect_core_phase
from repro.traces.powertrace import PowerTrace
from repro.traces.synth import simulate_run
from repro.workloads.base import ConstantWorkload
from repro.workloads.hpl import HplWorkload


def step_trace(idle=100.0, plateau=1000.0, setup=60, core=600, teardown=30):
    watts = np.concatenate([
        np.full(setup, idle),
        np.full(core, plateau),
        np.full(teardown, idle),
    ])
    return PowerTrace.from_uniform(watts)


class TestDetectCorePhase:
    def test_clean_step(self):
        tr = step_trace()
        phase = detect_core_phase(tr)
        assert phase.start_s == pytest.approx(60.0, abs=2.0)
        assert phase.end_s == pytest.approx(659.0, abs=2.0)

    def test_against_synthesiser_ground_truth(self, small_system, cpu_hpl):
        run = simulate_run(small_system, cpu_hpl, dt=2.0)
        phase = detect_core_phase(run.trace)
        t0, t1 = run.core_window
        assert phase.overlap_fraction(t0, t1) > 0.95

    def test_gpu_run_with_tail(self, gpu_system, gpu_hpl):
        # The tail drops power substantially; the detector must not cut
        # the core phase short by more than a modest margin.
        run = simulate_run(gpu_system, gpu_hpl, dt=2.0)
        phase = detect_core_phase(run.trace, threshold_fraction=0.35)
        t0, t1 = run.core_window
        assert phase.overlap_fraction(t0, t1) > 0.80

    def test_flat_trace_rejected(self, flat_trace):
        with pytest.raises(ValueError, match="plateau"):
            detect_core_phase(flat_trace)

    def test_spike_not_mistaken_for_core(self):
        watts = np.full(1000, 100.0)
        watts[500:504] = 1000.0  # 4-second spike
        tr = PowerTrace.from_uniform(watts)
        with pytest.raises(ValueError, match="long enough"):
            detect_core_phase(tr, min_duration_fraction=0.05)

    def test_longest_region_wins(self):
        watts = np.concatenate([
            np.full(50, 100.0),
            np.full(100, 1000.0),   # short burst
            np.full(50, 100.0),
            np.full(500, 1000.0),   # the actual run
            np.full(50, 100.0),
        ])
        tr = PowerTrace.from_uniform(watts)
        phase = detect_core_phase(tr)
        assert phase.start_s == pytest.approx(200.0, abs=2.0)

    def test_validation(self):
        tr = step_trace()
        with pytest.raises(ValueError, match="threshold_fraction"):
            detect_core_phase(tr, threshold_fraction=1.0)
        with pytest.raises(ValueError, match="min_duration_fraction"):
            detect_core_phase(tr, min_duration_fraction=0.0)
        with pytest.raises(ValueError, match="too short"):
            detect_core_phase(PowerTrace([0.0, 1.0], [1.0, 2.0]))

    def test_overlap_fraction_validation(self):
        phase = detect_core_phase(step_trace())
        with pytest.raises(ValueError, match="true_start"):
            phase.overlap_fraction(10.0, 10.0)

    def test_duration_property(self):
        phase = detect_core_phase(step_trace())
        assert phase.duration_s == pytest.approx(
            phase.end_s - phase.start_s
        )


class TestEndToEndAudit:
    def test_detect_then_apply_window_rule(self, gpu_system):
        """A list auditor's pipeline: detect the core phase in a raw
        trace, then evaluate segment averages relative to it."""
        wl = HplWorkload.gpu_in_core(1800.0, setup_s=120.0, teardown_s=60.0)
        run = simulate_run(gpu_system, wl, dt=2.0)
        phase = detect_core_phase(run.trace, threshold_fraction=0.35)
        core = run.trace.window(phase.start_s, phase.end_s)
        first = core.fraction_window(0.0, 0.2).mean_power()
        last = core.fraction_window(0.8, 1.0).mean_power()
        # The tail-off is visible through the detected window too.
        assert first > last * 1.03
