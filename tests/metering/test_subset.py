"""Tests for repro.metering.subset."""

import numpy as np
import pytest

from repro.metering.subset import (
    contiguous_subset,
    power_screened_subset,
    random_subset,
    vid_screened_subset,
)


class TestRandomSubset:
    def test_size_and_uniqueness(self, rng):
        idx = random_subset(100, 10, rng)
        assert idx.shape == (10,)
        assert np.unique(idx).size == 10
        assert idx.min() >= 0 and idx.max() < 100

    def test_sorted(self, rng):
        idx = random_subset(100, 10, rng)
        assert np.all(np.diff(idx) > 0)

    def test_full_census(self, rng):
        idx = random_subset(10, 10, rng)
        np.testing.assert_array_equal(idx, np.arange(10))

    def test_bounds(self, rng):
        with pytest.raises(ValueError):
            random_subset(10, 0, rng)
        with pytest.raises(ValueError):
            random_subset(10, 11, rng)

    def test_unbiased(self, rng):
        # Every node appears with roughly equal frequency.
        counts = np.zeros(20)
        for _ in range(2000):
            counts[random_subset(20, 5, rng)] += 1
        expected = 2000 * 5 / 20
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))


class TestContiguousSubset:
    def test_contiguous(self, rng):
        idx = contiguous_subset(100, 10, rng)
        np.testing.assert_array_equal(np.diff(idx), 1)

    def test_within_range(self, rng):
        for _ in range(50):
            idx = contiguous_subset(30, 7, rng)
            assert idx.min() >= 0 and idx.max() < 30

    def test_full_fleet(self, rng):
        idx = contiguous_subset(10, 10, rng)
        np.testing.assert_array_equal(idx, np.arange(10))


class TestPowerScreened:
    def test_low_screen_minimises(self, small_system):
        idx = power_screened_subset(small_system, 8, prefer="low")
        watts = small_system.node_total_powers(0.95)
        assert watts[idx].mean() <= np.sort(watts)[:8].mean() + 1e-9

    def test_high_screen_maximises(self, small_system):
        idx = power_screened_subset(small_system, 8, prefer="high")
        watts = small_system.node_total_powers(0.95)
        assert watts[idx].mean() >= np.sort(watts)[-8:].mean() - 1e-9

    def test_bias_direction(self, small_system):
        lo = power_screened_subset(small_system, 8, prefer="low")
        hi = power_screened_subset(small_system, 8, prefer="high")
        watts = small_system.node_total_powers(0.95)
        assert watts[lo].mean() < watts.mean() < watts[hi].mean()

    def test_validation(self, small_system):
        with pytest.raises(ValueError, match="prefer"):
            power_screened_subset(small_system, 4, prefer="median")
        with pytest.raises(ValueError, match="1 <= n"):
            power_screened_subset(small_system, 0)


class TestVidScreened:
    def test_low_vids_selected(self, gpu_system):
        idx = vid_screened_subset(gpu_system, 8, prefer="low")
        vids = gpu_system._fleet().gpu_vids.mean(axis=1)
        assert vids[idx].mean() < vids.mean()

    def test_high_vids_selected(self, gpu_system):
        idx = vid_screened_subset(gpu_system, 8, prefer="high")
        vids = gpu_system._fleet().gpu_vids.mean(axis=1)
        assert vids[idx].mean() > vids.mean()

    def test_mid_selection_near_median(self, gpu_system):
        idx = vid_screened_subset(gpu_system, 8, prefer="mid")
        vids = gpu_system._fleet().gpu_vids.mean(axis=1)
        assert abs(vids[idx].mean() - np.median(vids)) < 1.0

    def test_low_vid_screen_biases_power_low(self, gpu_system):
        # The paper's Section 5 gaming vector: low-VID nodes run at
        # lower default voltage → lower power → flattering subset.
        idx = vid_screened_subset(gpu_system, 8, prefer="low")
        watts = gpu_system.node_total_powers(0.95)
        assert watts[idx].mean() < watts.mean()

    def test_cpu_system_rejected(self, small_system):
        with pytest.raises(ValueError, match="no GPUs"):
            vid_screened_subset(small_system, 4)

    def test_bad_prefer(self, gpu_system):
        with pytest.raises(ValueError, match="prefer"):
            vid_screened_subset(gpu_system, 4, prefer="best")
