"""Tests for repro.metering.hierarchy."""

import numpy as np
import pytest

from repro.metering.hierarchy import (
    TYPICAL_DELIVERY,
    ConversionStage,
    PowerDeliveryPath,
)


class TestConversionStage:
    def test_honest_datasheet_default(self):
        s = ConversionStage("psu", efficiency=0.9)
        assert s.claimed == 0.9

    def test_optimistic_datasheet(self):
        s = ConversionStage("psu", efficiency=0.9, datasheet_efficiency=0.94)
        assert s.claimed == 0.94

    def test_validation(self):
        with pytest.raises(ValueError, match="efficiency"):
            ConversionStage("x", efficiency=0.0)
        with pytest.raises(ValueError, match="datasheet"):
            ConversionStage("x", efficiency=0.9, datasheet_efficiency=1.5)


class TestPowerDeliveryPath:
    def test_upstream_power(self):
        path = PowerDeliveryPath(
            stages=(ConversionStage("a", 0.9), ConversionStage("b", 0.8))
        )
        assert path.upstream_power(72.0) == pytest.approx(100.0)

    def test_power_at_depth(self):
        path = PowerDeliveryPath(
            stages=(ConversionStage("a", 0.9), ConversionStage("b", 0.8))
        )
        # Upstream (depth 0) = 100, after stage a (depth 1) = 90, at the
        # load (depth 2) = 72.
        assert path.power_at_depth(72.0, 0) == pytest.approx(100.0)
        assert path.power_at_depth(72.0, 1) == pytest.approx(90.0)
        assert path.power_at_depth(72.0, 2) == pytest.approx(72.0)

    def test_reconstruction_with_true_efficiencies_exact(self):
        it = 500.0
        for depth in range(len(TYPICAL_DELIVERY.stages) + 1):
            measured = TYPICAL_DELIVERY.power_at_depth(it, depth)
            back = TYPICAL_DELIVERY.reconstruct_upstream(
                measured, depth, use_datasheet=False
            )
            assert back == pytest.approx(
                TYPICAL_DELIVERY.upstream_power(it), rel=1e-12
            )

    def test_datasheet_reconstruction_biased(self):
        # The PSU datasheet is optimistic, so a datasheet-based
        # reconstruction *understates* upstream power.
        it = 500.0
        depth = len(TYPICAL_DELIVERY.stages)
        measured = TYPICAL_DELIVERY.power_at_depth(it, depth)
        claimed = TYPICAL_DELIVERY.reconstruct_upstream(
            measured, depth, use_datasheet=True
        )
        true = TYPICAL_DELIVERY.upstream_power(it)
        assert claimed < true
        # The bias equals the datasheet optimism (~3%).
        assert (true - claimed) / true == pytest.approx(0.032, abs=0.01)

    def test_upstream_measurement_unbiased(self):
        # Metering at depth 0 needs no reconstruction at all.
        measured = TYPICAL_DELIVERY.power_at_depth(500.0, 0)
        assert TYPICAL_DELIVERY.reconstruct_upstream(
            measured, 0
        ) == pytest.approx(measured)

    def test_vectorised(self):
        w = np.array([100.0, 200.0])
        up = TYPICAL_DELIVERY.upstream_power(w)
        assert up.shape == (2,)
        assert np.all(up > w)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            PowerDeliveryPath(stages=())
        with pytest.raises(TypeError, match="ConversionStage"):
            PowerDeliveryPath(stages=("psu",))
        with pytest.raises(ValueError, match="depth"):
            TYPICAL_DELIVERY.power_at_depth(100.0, 9)
        with pytest.raises(ValueError, match="non-negative"):
            TYPICAL_DELIVERY.upstream_power(-1.0)

    def test_efficiency_through(self):
        eff_all = TYPICAL_DELIVERY.efficiency_through()
        eff_claimed = TYPICAL_DELIVERY.efficiency_through(claimed=True)
        assert 0.8 < eff_all < 1.0
        assert eff_claimed > eff_all  # optimistic datasheets
        assert TYPICAL_DELIVERY.efficiency_through(0) == 1.0
