"""Tests for repro.metering.aggregate — multi-meter banks."""

import numpy as np
import pytest

from repro.metering.aggregate import MeterBank, allocate_nodes_to_meters
from repro.metering.meter import MeterSpec
from repro.traces.synth import simulate_run
from repro.workloads.base import ConstantWorkload


@pytest.fixture()
def run(small_system):
    wl = ConstantWorkload(utilisation=0.9, core_s=600.0)
    return simulate_run(small_system, wl, dt=1.0, noise_cv=0.0)


class TestAllocation:
    def test_contiguous_partition(self):
        groups = allocate_nodes_to_meters(np.arange(10), 3)
        flat = np.concatenate(groups)
        np.testing.assert_array_equal(np.sort(flat), np.arange(10))
        # Contiguity: each group is an unbroken ID range.
        for g in groups:
            np.testing.assert_array_equal(np.diff(g), 1)

    def test_striped_partition(self):
        groups = allocate_nodes_to_meters(np.arange(9), 3, policy="striped")
        np.testing.assert_array_equal(groups[0], [0, 3, 6])
        np.testing.assert_array_equal(groups[1], [1, 4, 7])

    def test_partition_is_exact(self):
        for policy in ("contiguous", "striped"):
            groups = allocate_nodes_to_meters(
                np.arange(17), 4, policy=policy
            )
            flat = np.sort(np.concatenate(groups))
            np.testing.assert_array_equal(flat, np.arange(17))

    def test_validation(self):
        with pytest.raises(ValueError, match="no nodes"):
            allocate_nodes_to_meters(np.array([], dtype=int), 1)
        with pytest.raises(ValueError, match="n_meters"):
            allocate_nodes_to_meters(np.arange(3), 4)
        with pytest.raises(ValueError, match="policy"):
            allocate_nodes_to_meters(np.arange(4), 2, policy="random")


class TestMeterBank:
    def test_distinct_gains(self, rng):
        bank = MeterBank(MeterSpec(gain_error_cv=0.02), 8, rng)
        assert len(bank) == 8
        assert np.unique(bank.gains).size == 8

    def test_ideal_bank_exact(self, run, rng):
        bank = MeterBank(MeterSpec.ideal(), 4, rng)
        idx = np.arange(16)
        reading = bank.measure_subset(run, idx, 100.0, 500.0)
        truth = run.subset_trace(idx).window(100.0, 500.0).mean_power()
        assert reading.average_watts == pytest.approx(truth, rel=1e-9)

    def test_bank_matches_sum_of_groups(self, run, rng):
        spec = MeterSpec(gain_error_cv=0.03, sample_noise_cv=0.0)
        bank = MeterBank(spec, 2, np.random.default_rng(3))
        idx = np.arange(8)
        reading = bank.measure_subset(run, idx, 0.0, 600.0)
        manual = 0.0
        for meter, group in zip(
            bank.meters, allocate_nodes_to_meters(idx, 2)
        ):
            manual += meter.measure(
                run.subset_trace(group), 0.0, 600.0
            ).average_watts
        assert reading.average_watts == pytest.approx(manual, rel=1e-9)

    def test_more_meters_average_out_gain_error(self, run):
        # The g/sqrt(k) effect: the spread of the aggregate error over
        # many bank draws shrinks as instruments are added.
        spec = MeterSpec(gain_error_cv=0.03, sample_noise_cv=0.0)
        idx = np.arange(32)
        truth = run.subset_trace(idx).window(0.0, 600.0).mean_power()

        def error_spread(k: int, trials: int = 40) -> float:
            errors = []
            for t in range(trials):
                bank = MeterBank(spec, k, np.random.default_rng(100 + t))
                r = bank.measure_subset(run, idx, 0.0, 600.0)
                errors.append(r.average_watts / truth - 1.0)
            return float(np.std(errors))

        assert error_spread(8) < error_spread(1) * 0.7

    def test_effective_gain_weighted(self, rng):
        bank = MeterBank(MeterSpec(gain_error_cv=0.05), 2, rng)
        g = bank.gains
        weighted = bank.effective_gain(np.array([3.0, 1.0]))
        assert weighted == pytest.approx((3 * g[0] + g[1]) / 4)

    def test_effective_gain_validation(self, rng):
        bank = MeterBank(MeterSpec(), 2, rng)
        with pytest.raises(ValueError, match="length"):
            bank.effective_gain(np.array([1.0]))
        with pytest.raises(ValueError, match="non-negative"):
            bank.effective_gain(np.array([0.0, 0.0]))

    def test_bank_validation(self, rng):
        with pytest.raises(ValueError, match="n_meters"):
            MeterBank(MeterSpec(), 0, rng)
