"""Tests for repro.metering.campaign — executable Level 1/2/3."""

import numpy as np
import pytest

from repro.core.methodology import Level, check_submission
from repro.core.windows import MeasurementWindow
from repro.metering.campaign import MeasurementCampaign
from repro.metering.hierarchy import TYPICAL_DELIVERY
from repro.metering.meter import MeterSpec
from repro.traces.synth import simulate_run


@pytest.fixture()
def gpu_run(gpu_system, gpu_hpl):
    return simulate_run(gpu_system, gpu_hpl, dt=2.0, seed=42)


@pytest.fixture()
def campaign(gpu_run):
    return MeasurementCampaign(gpu_run, meter_spec=MeterSpec.ideal())


class TestLevel1:
    def test_produces_compliant_description(self, campaign):
        res = campaign.level1()
        assert res.level is Level.L1
        assert check_submission(res.description) == []

    def test_reported_power_plausible(self, campaign, gpu_run):
        res = campaign.level1()
        assert res.reported_watts == pytest.approx(
            gpu_run.true_core_average(), rel=0.30
        )

    def test_window_placement_changes_result(self, campaign):
        early = campaign.level1(window=MeasurementWindow(0.1, 0.26))
        late = campaign.level1(window=MeasurementWindow(0.74, 0.9))
        # GPU run tails off: the early window reads higher.
        assert early.reported_watts > late.reported_watts

    def test_error_spread_on_gpu_run(self, campaign):
        rng = np.random.default_rng(0)
        errors = [campaign.level1(rng=rng).relative_error for _ in range(30)]
        assert max(errors) - min(errors) > 0.05  # timing variation bites

    def test_explicit_subset(self, campaign, gpu_system):
        idx = np.arange(4)
        res = campaign.level1(node_indices=idx)
        np.testing.assert_array_equal(res.node_indices, idx)
        assert res.description.n_nodes_measured == 4

    def test_deterministic_with_rng(self, gpu_run):
        c = MeasurementCampaign(gpu_run, meter_spec=MeterSpec.ideal())
        a = c.level1(rng=np.random.default_rng(5)).reported_watts
        b = c.level1(rng=np.random.default_rng(5)).reported_watts
        assert a == b

    def test_str(self, campaign):
        assert "L1" in str(campaign.level1())


class TestLevel1MeterBank:
    def test_bank_measurement_runs(self, gpu_run):
        from repro.core.windows import full_core_window

        campaign = MeasurementCampaign(
            gpu_run, meter_spec=MeterSpec(gain_error_cv=0.02)
        )
        res = campaign.level1(
            window=full_core_window(),
            node_indices=np.arange(8),
            n_meters=4,
        )
        assert res.reported_watts > 0
        assert res.description.n_nodes_measured == 8

    def test_bank_averages_gain_error(self, gpu_run, gpu_system):
        from repro.core.windows import full_core_window

        idx = np.arange(gpu_system.n_nodes)
        window = full_core_window()

        def errors(n_meters: int) -> np.ndarray:
            out = []
            for seed in range(25):
                c = MeasurementCampaign(
                    gpu_run,
                    meter_spec=MeterSpec(gain_error_cv=0.03,
                                         sample_noise_cv=0.0),
                    seed=seed,
                )
                res = c.level1(window=window, node_indices=idx,
                               n_meters=n_meters)
                out.append(res.relative_error)
            return np.array(out)

        assert errors(8).std() < errors(1).std() * 0.7

    def test_bank_with_delivery_rejected(self, gpu_run):
        from repro.metering.hierarchy import TYPICAL_DELIVERY

        c = MeasurementCampaign(gpu_run, delivery=TYPICAL_DELIVERY)
        with pytest.raises(ValueError, match="cannot"):
            c.level1(n_meters=2)


class TestLevel2:
    def test_compliant(self, campaign):
        res = campaign.level2()
        assert check_submission(res.description) == []

    def test_accuracy_beats_level1(self, campaign):
        rng = np.random.default_rng(1)
        l1_errors = [
            abs(campaign.level1(rng=rng).relative_error) for _ in range(20)
        ]
        l2_err = abs(campaign.level2().relative_error)
        assert l2_err < np.mean(l1_errors)

    def test_covers_full_core(self, campaign):
        res = campaign.level2()
        assert res.window.start == 0.0 and res.window.end == 1.0

    def test_bad_n_windows(self, campaign):
        with pytest.raises(ValueError, match="n_windows"):
            campaign.level2(n_windows=0)


class TestLevel3:
    def test_compliant(self, campaign):
        res = campaign.level3()
        assert check_submission(res.description) == []

    def test_exact_with_ideal_meter(self, campaign):
        res = campaign.level3()
        assert res.relative_error == pytest.approx(0.0, abs=1e-9)

    def test_measures_all_nodes(self, campaign, gpu_system):
        res = campaign.level3()
        assert len(res.node_indices) == gpu_system.n_nodes

    def test_forces_integration(self, gpu_run):
        c = MeasurementCampaign(
            gpu_run, meter_spec=MeterSpec(integrating=False,
                                          gain_error_cv=0.0,
                                          sample_noise_cv=0.0)
        )
        res = c.level3()
        assert res.description.sample_interval_s is None or True
        assert res.relative_error == pytest.approx(0.0, abs=0.01)


class TestLevelOrdering:
    def test_error_hierarchy(self, gpu_run):
        # With a real (noisy) meter, average |error| strictly improves
        # with level on a tail-heavy GPU run.
        campaign = MeasurementCampaign(
            gpu_run, meter_spec=MeterSpec(gain_error_cv=0.01)
        )
        rng = np.random.default_rng(2)
        l1 = np.mean(
            [abs(campaign.level1(rng=rng).relative_error) for _ in range(25)]
        )
        l2 = abs(campaign.level2().relative_error)
        l3 = abs(campaign.level3().relative_error)
        assert l3 < l1
        assert l2 < l1


class TestDelivery:
    def test_l1_datasheet_bias(self, gpu_run):
        c = MeasurementCampaign(
            gpu_run,
            meter_spec=MeterSpec.ideal(),
            delivery=TYPICAL_DELIVERY,
            meter_depth=len(TYPICAL_DELIVERY.stages),
        )
        res = c.level1(window=MeasurementWindow(0.1, 0.9))
        # The optimistic PSU datasheet understates upstream power; the
        # truth here is IT-side, so the net effect is the conversion gap.
        assert res.description.measurement_point.name.startswith("DOWNSTREAM")

    def test_depth_validation(self, gpu_run):
        with pytest.raises(ValueError, match="meter_depth"):
            MeasurementCampaign(
                gpu_run, delivery=TYPICAL_DELIVERY, meter_depth=9
            )
