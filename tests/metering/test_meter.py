"""Tests for repro.metering.meter."""

import numpy as np
import pytest

from repro.metering.meter import MeterSpec, PowerMeter
from repro.traces.powertrace import PowerTrace


@pytest.fixture()
def ideal():
    return PowerMeter(MeterSpec.ideal(), np.random.default_rng(0))


class TestMeterSpec:
    def test_ideal_is_perfect(self):
        spec = MeterSpec.ideal()
        assert spec.gain_error_cv == 0.0
        assert spec.sample_noise_cv == 0.0
        assert spec.integrating

    def test_level3_grade_tight(self):
        assert MeterSpec.level3_grade().gain_error_cv <= 0.005

    def test_validation(self):
        with pytest.raises(ValueError, match="sample_interval"):
            MeterSpec(sample_interval_s=0.0)
        with pytest.raises(ValueError, match="noise"):
            MeterSpec(gain_error_cv=-0.1)


class TestGain:
    def test_gain_drawn_once(self):
        spec = MeterSpec(gain_error_cv=0.05)
        m = PowerMeter(spec, np.random.default_rng(1))
        assert m.gain != 1.0
        # Same meter, repeated measurements: same gain.
        tr = PowerTrace.constant(100.0, 60.0)
        a = m.measure(tr, 0.0, 60.0).average_watts
        b = m.measure(tr, 0.0, 60.0).average_watts
        assert a == pytest.approx(b, rel=0.02)

    def test_gain_spread_across_instruments(self):
        spec = MeterSpec(gain_error_cv=0.02)
        gains = [
            PowerMeter(spec, np.random.default_rng(i)).gain
            for i in range(500)
        ]
        assert np.std(gains) == pytest.approx(0.02, rel=0.2)

    def test_ideal_gain_is_one(self, ideal):
        assert ideal.gain == 1.0


class TestMeasure:
    def test_ideal_exact_on_flat(self, ideal, flat_trace):
        r = ideal.measure(flat_trace, 100.0, 500.0)
        assert r.average_watts == pytest.approx(100.0)
        assert r.energy_joules == pytest.approx(100.0 * 400.0)
        assert r.window_s == 400.0

    def test_ideal_exact_on_ramp(self, ideal, ramp_trace):
        r = ideal.measure(ramp_trace, 0.0, 100.0)
        assert r.average_watts == pytest.approx(50.0)

    def test_sampling_meter_close_on_smooth_signal(self):
        t = np.linspace(0.0, 600.0, 6001)
        tr = PowerTrace(t, 100.0 + 10.0 * np.sin(t / 30.0))
        m = PowerMeter(
            MeterSpec(sample_interval_s=1.0, gain_error_cv=0.0,
                      sample_noise_cv=0.0),
            np.random.default_rng(0),
        )
        r = m.measure(tr, 0.0, 600.0)
        assert r.average_watts == pytest.approx(
            tr.mean_power(), rel=0.002
        )

    def test_coarse_meter_aliases_fast_signal(self):
        # 10 s sampling on a 7 s-period signal: visible aliasing error.
        t = np.linspace(0.0, 600.0, 60_001)
        tr = PowerTrace(t, 100.0 + 50.0 * np.sin(2 * np.pi * t / 7.0))
        coarse = PowerMeter(
            MeterSpec(sample_interval_s=10.0, gain_error_cv=0.0,
                      sample_noise_cv=0.0),
            np.random.default_rng(0),
        )
        r = coarse.measure(tr, 0.0, 600.0)
        # Still near the mean but measurably off vs the ideal meter.
        assert abs(r.average_watts - tr.mean_power()) > 0.01

    def test_sample_noise_averages_away(self):
        tr = PowerTrace.constant(100.0, 3600.0)
        noisy = PowerMeter(
            MeterSpec(sample_noise_cv=0.05, gain_error_cv=0.0),
            np.random.default_rng(0),
        )
        r = noisy.measure(tr, 0.0, 3600.0)
        assert r.average_watts == pytest.approx(100.0, rel=0.005)

    def test_gain_biases_reading(self, flat_trace):
        spec = MeterSpec(gain_error_cv=0.05, sample_noise_cv=0.0)
        m = PowerMeter(spec, np.random.default_rng(7))
        r = m.measure(flat_trace, 0.0, 1000.0)
        assert r.average_watts == pytest.approx(100.0 * m.gain, rel=1e-6)

    def test_n_samples_counted(self, flat_trace):
        m = PowerMeter(MeterSpec(gain_error_cv=0.0), np.random.default_rng(0))
        r = m.measure(flat_trace, 0.0, 60.0)
        assert r.n_samples >= 60

    def test_bad_window(self, ideal, flat_trace):
        with pytest.raises(ValueError, match="t0 < t1"):
            ideal.measure(flat_trace, 50.0, 50.0)

    def test_reading_validation(self):
        from repro.metering.meter import MeterReading

        with pytest.raises(ValueError, match="non-negative"):
            MeterReading(-1.0, 0.0, 1.0, 1)
        with pytest.raises(ValueError, match="window"):
            MeterReading(1.0, 1.0, 0.0, 1)
