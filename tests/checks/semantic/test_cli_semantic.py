"""CLI regression tests for ``repro lint --semantic`` and friends."""

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def _copy_fixture(name: str, tmp_path: Path) -> Path:
    root = tmp_path / name
    shutil.copytree(FIXTURES / name, root)
    return root


class TestUnknownRuleIds:
    def test_select_unknown_id_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown rule id.*RPX999"):
            main(["lint", str(tmp_path), "--no-cache", "--select", "RPX999"])

    def test_ignore_unknown_id_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown rule id.*RPX042"):
            main(["lint", str(tmp_path), "--no-cache", "--ignore", "RPX042"])

    def test_error_lists_the_known_ids(self, tmp_path):
        with pytest.raises(SystemExit, match="RPX001.*RPX101"):
            main(["lint", str(tmp_path), "--no-cache", "--select", "RPXnope"])

    def test_semantic_ids_are_legal_selectors(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        rc = main(["lint", str(tmp_path), "--no-cache",
                   "--select", "RPX102,RPX103"])
        assert rc == 0

    def test_typo_in_a_list_is_caught(self, tmp_path):
        with pytest.raises(SystemExit, match="RPX10"):
            main(["lint", str(tmp_path), "--no-cache",
                  "--select", "RPX101,RPX10"])


class TestSemanticFlag:
    def test_cross_module_violation_fails_the_run(self, tmp_path, capsys):
        root = _copy_fixture("rpx102_fail", tmp_path)
        rc = main(["lint", str(root), "--no-cache", "--semantic",
                   "--select", "RPX102",
                   "--baseline", str(tmp_path / "baseline.json")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "RPX102" in out and "time.time_ns" in out

    def test_without_semantic_the_same_tree_passes(self, tmp_path, capsys):
        root = _copy_fixture("rpx102_fail", tmp_path)
        rc = main(["lint", str(root), "--no-cache", "--select", "RPX102"])
        assert rc == 0

    def test_write_baseline_then_rerun_is_clean(self, tmp_path, capsys):
        root = _copy_fixture("rpx102_fail", tmp_path)
        baseline = tmp_path / "baseline.json"
        rc = main(["lint", str(root), "--no-cache", "--semantic",
                   "--select", "RPX102", "--baseline", str(baseline),
                   "--write-baseline"])
        assert rc == 0
        assert "wrote 1 accepted finding" in capsys.readouterr().out
        data = json.loads(baseline.read_text())
        assert data["entries"][0]["rule"] == "RPX102"

        rc = main(["lint", str(root), "--no-cache", "--semantic",
                   "--select", "RPX102", "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 baseline-accepted finding(s) not shown" in out

    def test_no_baseline_reports_accepted_findings_again(self, tmp_path):
        root = _copy_fixture("rpx102_fail", tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["lint", str(root), "--no-cache", "--semantic",
              "--select", "RPX102", "--baseline", str(baseline),
              "--write-baseline"])
        rc = main(["lint", str(root), "--no-cache", "--semantic",
                   "--select", "RPX102", "--baseline", str(baseline),
                   "--no-baseline"])
        assert rc == 1

    def test_stale_baseline_entry_warns(self, tmp_path, capsys):
        (tmp_path / "clean.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": "1",
            "entries": [{"rule": "RPX102", "path": "gone.py",
                         "message": "fixed ages ago",
                         "justification": "obsolete"}],
        }))
        rc = main(["lint", str(tmp_path), "--no-cache", "--semantic",
                   "--select", "RPX102", "--baseline", str(baseline)])
        err = capsys.readouterr().err
        assert rc == 0
        assert "stale baseline entry" in err

    def test_write_baseline_requires_semantic(self, tmp_path):
        with pytest.raises(SystemExit, match="requires --semantic"):
            main(["lint", str(tmp_path), "--no-cache", "--write-baseline"])


class TestSarifOutput:
    def test_sarif_file_is_written_and_valid_json(self, tmp_path, capsys):
        root = _copy_fixture("rpx102_fail", tmp_path)
        sarif = tmp_path / "lint.sarif"
        rc = main(["lint", str(root), "--no-cache", "--semantic",
                   "--select", "RPX102",
                   "--baseline", str(tmp_path / "baseline.json"),
                   "--sarif", str(sarif)])
        assert rc == 1
        doc = json.loads(sarif.read_text())
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["RPX102"]
        assert results[0]["baselineState"] == "new"

    def test_sarif_includes_accepted_as_unchanged(self, tmp_path):
        root = _copy_fixture("rpx102_fail", tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["lint", str(root), "--no-cache", "--semantic",
              "--select", "RPX102", "--baseline", str(baseline),
              "--write-baseline"])
        sarif = tmp_path / "lint.sarif"
        rc = main(["lint", str(root), "--no-cache", "--semantic",
                   "--select", "RPX102", "--baseline", str(baseline),
                   "--sarif", str(sarif)])
        assert rc == 0
        results = json.loads(sarif.read_text())["runs"][0]["results"]
        assert [r["baselineState"] for r in results] == ["unchanged"]

    def test_sarif_without_semantic_covers_perfile_rules(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nv = np.random.rand(3)\n"
        )
        sarif = tmp_path / "lint.sarif"
        rc = main(["lint", str(tmp_path), "--no-cache",
                   "--sarif", str(sarif)])
        assert rc == 1
        doc = json.loads(sarif.read_text())
        assert any(
            r["ruleId"].startswith("RPX00")
            for r in doc["runs"][0]["results"]
        )


class TestSummaryCacheViaCli:
    def test_second_run_reports_cached_summaries(self, tmp_path, capsys):
        root = _copy_fixture("rpx103_pass", tmp_path)
        cache = tmp_path / "cache.json"
        main(["lint", str(root), "--semantic", "--cache-file", str(cache),
              "--baseline", str(tmp_path / "baseline.json")])
        capsys.readouterr()
        rc = main(["lint", str(root), "--semantic",
                   "--cache-file", str(cache),
                   "--baseline", str(tmp_path / "baseline.json")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "semantic summaries" in out and "cached" in out
