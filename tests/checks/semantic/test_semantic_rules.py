"""Fixture tests for the whole-project semantic rules (RPX101-RPX103).

Each rule ships a fixture *package tree* (not a single file — these
rules exist to see across module boundaries): a ``_fail`` tree whose
violating lines carry ``# expect: RPXnnn`` markers, and a ``_pass``
tree that is clean for that rule.  The tests assert the findings match
the markers exactly — rule id, file, and line.
"""

import re
import shutil
from pathlib import Path

import pytest

from repro.checks import LintConfig
from repro.checks.semantic import run_semantic_lint

FIXTURES = Path(__file__).parent / "fixtures"

SEMANTIC_IDS = ("RPX101", "RPX102", "RPX103")

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RPX\d{3})")

#: Configuration the fixture trees are analysed under: the ``pkg``
#: package plays the project, ``pkg/experiments`` the cached
#: experiments, ``pkg/goodrng.py`` the seed-threading module.
FIXTURE_CONFIG = LintConfig(
    units_modules=(),
    nondeterminism_exempt=(),
    experiments_packages=("pkg/experiments",),
    experiments_exempt=("__init__.py",),
    rng_modules=("pkg/goodrng.py",),
)


def expected_findings(root: Path) -> list[tuple[str, int, str]]:
    """(relative path, line, rule_id) triples from ``# expect:`` markers."""
    out = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            for match in _EXPECT_RE.finditer(line):
                out.append((rel, lineno, match.group(1)))
    return sorted(out)


def semantic_findings(
    root: Path, config: LintConfig = FIXTURE_CONFIG
) -> list[tuple[str, int, str]]:
    """Run the semantic pass; return (relative path, line, rule) triples."""
    report = run_semantic_lint([root], config=config)
    assert report.parse_errors == []
    out = []
    for f in report.findings:
        rel = Path(f.path).resolve().relative_to(root.resolve()).as_posix()
        out.append((rel, f.line, f.rule_id))
    return sorted(out)


@pytest.mark.parametrize("rule_id", SEMANTIC_IDS)
def test_fail_fixture_exact_locations(rule_id):
    root = FIXTURES / f"{rule_id.lower()}_fail"
    expected = expected_findings(root)
    assert expected, f"fixture for {rule_id} declares no expectations"
    assert all(rid == rule_id for _, _, rid in expected)
    assert semantic_findings(root) == expected


@pytest.mark.parametrize("rule_id", SEMANTIC_IDS)
def test_fail_fixture_spans_modules(rule_id):
    """The violation genuinely needs cross-module reasoning: the flagged
    file alone (plus the package inits) analyses clean."""
    root = FIXTURES / f"{rule_id.lower()}_fail"
    expected = expected_findings(root)
    flagged = {rel for rel, _, _ in expected}
    modules = {
        p.relative_to(root).as_posix()
        for p in root.rglob("*.py")
        if p.name != "__init__.py"
    }
    assert len(modules) >= 2, "fixture must span at least two modules"
    assert flagged < modules, "some module must exist only to set up taint"


@pytest.mark.parametrize("rule_id", SEMANTIC_IDS)
def test_pass_fixture_clean(rule_id):
    root = FIXTURES / f"{rule_id.lower()}_pass"
    assert semantic_findings(root) == []


@pytest.mark.parametrize("rule_id", SEMANTIC_IDS)
def test_noqa_suppresses_semantic_findings(rule_id, tmp_path):
    """``# repro: noqa RPXnnn`` on the reported line silences the rule."""
    src = FIXTURES / f"{rule_id.lower()}_fail"
    root = tmp_path / src.name
    shutil.copytree(src, root)
    for path in root.rglob("*.py"):
        path.write_text(
            _EXPECT_RE.sub(lambda m: f"# repro: noqa {m.group(1)}",
                           path.read_text())
        )
    assert semantic_findings(root) == []


@pytest.mark.parametrize("rule_id", SEMANTIC_IDS)
def test_select_filter_applies_to_semantic_rules(rule_id):
    root = FIXTURES / f"{rule_id.lower()}_fail"
    others = tuple(r for r in SEMANTIC_IDS if r != rule_id)
    config = LintConfig(
        **{
            **{f: getattr(FIXTURE_CONFIG, f)
               for f in FIXTURE_CONFIG.__dataclass_fields__},
            "select": others,
        }
    )
    assert semantic_findings(root, config) == []


def test_rpx101_names_the_call_path():
    root = FIXTURES / "rpx101_fail"
    report = run_semantic_lint([root], config=FIXTURE_CONFIG)
    [finding] = report.findings
    assert "call path:" in finding.message
    assert "pkg.experiments.trial.run" in finding.message


def test_rpx102_names_the_taint_source():
    root = FIXTURES / "rpx102_fail"
    report = run_semantic_lint([root], config=FIXTURE_CONFIG)
    [finding] = report.findings
    assert "time.time_ns" in finding.message


def test_rpx103_names_both_dimensions():
    root = FIXTURES / "rpx103_fail"
    report = run_semantic_lint([root], config=FIXTURE_CONFIG)
    messages = " | ".join(f.message for f in report.findings)
    assert "power" in messages and "time" in messages
