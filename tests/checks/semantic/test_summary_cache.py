"""Stability properties of the semantic cache key and noqa parsing.

The summary cache is only sound if its key is insensitive to edits
that cannot change a summary — comments, blank lines, whitespace — and
sensitive to any edit that can.  Hypothesis drives both directions.
The same stability contract matters for ``noqa_map``: the suppression
a comment requests must not depend on how it is spaced.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks import LintConfig, noqa_map
from repro.checks.engine import ImportMap
from repro.checks.semantic.summaries import (
    extract_module_summary,
    summary_cache_key,
)

BASE_SOURCE = """\
import numpy as np


def draw(n, seed=0):
    gen = np.random.default_rng(seed)
    values = gen.normal(size=n)
    return values


def total_j(power_w, runtime_s):
    return power_w * runtime_s
"""

CONFIG = LintConfig()

comments = st.text(
    alphabet=string.ascii_letters + string.digits + " ",
    min_size=0,
    max_size=30,
).map(lambda s: f"# {s}")


@st.composite
def commented_variants(draw):
    """BASE_SOURCE with comments/blank lines spliced between statements."""
    lines = BASE_SOURCE.splitlines()
    out = []
    for line in lines:
        if draw(st.booleans()):
            out.append(draw(comments))
        if draw(st.booleans()):
            out.append("")
        out.append(line)
        stripped = line.strip()
        if stripped and not stripped.startswith(("import", "def")):
            if draw(st.booleans()):
                indent = line[: len(line) - len(line.lstrip())]
                out.append(indent + draw(comments))
    return "\n".join(out) + "\n"


@settings(max_examples=50, deadline=None)
@given(variant=commented_variants())
def test_cache_key_stable_across_comment_edits(variant):
    assert summary_cache_key(variant, CONFIG) == summary_cache_key(
        BASE_SOURCE, CONFIG
    )


@settings(max_examples=50, deadline=None)
@given(variant=commented_variants())
def test_summaries_identical_across_comment_edits(variant):
    """The key is honest: equal keys really do mean equal summaries,
    up to the node locators that findings resolve per-run anyway."""
    import ast

    def summarise(source):
        tree = ast.parse(source)
        summary = extract_module_summary(
            "mod", tree, ImportMap(tree), CONFIG
        )
        data = summary.to_dict()

        def strip(obj):
            if isinstance(obj, dict):
                return {
                    k: strip(v) for k, v in obj.items() if k != "locator"
                }
            if isinstance(obj, list):
                return [strip(v) for v in obj]
            return obj

        return strip(data)

    assert summarise(variant) == summarise(BASE_SOURCE)


@settings(max_examples=30, deadline=None)
@given(name=st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True))
def test_cache_key_changes_when_code_changes(name):
    renamed = BASE_SOURCE.replace("values", f"renamed_{name}")
    assert summary_cache_key(renamed, CONFIG) != summary_cache_key(
        BASE_SOURCE, CONFIG
    )


def test_cache_key_depends_on_config():
    other = LintConfig(rng_modules=("elsewhere.py",))
    assert summary_cache_key(BASE_SOURCE, CONFIG) != summary_cache_key(
        BASE_SOURCE, other
    )


def test_cache_key_survives_syntax_errors():
    bad = "def broken(:\n"
    assert summary_cache_key(bad, CONFIG) == summary_cache_key(bad, CONFIG)
    assert summary_cache_key(bad, CONFIG) != summary_cache_key(
        bad + "# comment\n", CONFIG
    )


@settings(max_examples=60, deadline=None)
@given(
    pre=st.sampled_from(["", " ", "  "]),
    mid=st.sampled_from(["", " ", "  "]),
    sep=st.sampled_from([":", " ", ": ", "  "]),
    ids=st.lists(
        st.sampled_from(["RPX001", "RPX004", "RPX102"]),
        min_size=0,
        max_size=3,
        unique=True,
    ),
)
def test_noqa_map_insensitive_to_spacing(pre, mid, sep, ids):
    """Every whitespace spelling of a noqa comment parses identically."""
    canonical = "x = 1  # repro: noqa"
    variant = f"x = 1  #{pre}repro:{mid}noqa"
    if ids:
        canonical += " " + ", ".join(ids)
        variant += sep + " , ".join(ids)
    expected = noqa_map([canonical])
    assert noqa_map([variant]) == expected
    if ids:
        assert expected == {1: frozenset(ids)}
    else:
        assert expected == {1: None}
