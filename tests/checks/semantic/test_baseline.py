"""Baseline semantics: accepted findings gate out, new ones fail,
stale entries surface, and line numbers never matter."""

import json

import pytest

from repro.checks.engine import Finding
from repro.checks.semantic import Baseline


def _finding(rule="RPX101", path="src/repro/x.py", line=3, msg="boom"):
    return Finding(path=path, line=line, col=0, rule_id=rule, message=msg)


def test_missing_file_is_empty_baseline(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    match = baseline.apply([_finding()])
    assert len(match.new) == 1
    assert match.accepted == [] and match.stale == []


def test_malformed_file_is_an_error(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("[1, 2, 3]")
    with pytest.raises(ValueError, match="malformed"):
        Baseline.load(path)


def test_round_trip_accepts_exactly_the_recorded_findings(tmp_path):
    known = _finding(msg="known issue")
    fresh = _finding(msg="fresh issue")
    path = tmp_path / "baseline.json"
    Baseline.from_findings([known], "intentional: test").save(path)
    match = Baseline.load(path).apply([known, fresh])
    assert match.accepted == [known]
    assert match.new == [fresh]
    assert match.stale == []


def test_match_ignores_line_numbers(tmp_path):
    recorded = _finding(line=3)
    moved = _finding(line=97)  # same rule/path/message, file was edited
    path = tmp_path / "baseline.json"
    Baseline.from_findings([recorded]).save(path)
    match = Baseline.load(path).apply([moved])
    assert match.accepted == [moved] and match.new == []


def test_stale_entries_are_reported(tmp_path):
    gone = _finding(msg="fixed long ago")
    path = tmp_path / "baseline.json"
    Baseline.from_findings([gone], "was intentional").save(path)
    match = Baseline.load(path).apply([])
    assert [e["message"] for e in match.stale] == ["fixed long ago"]


def test_on_disk_form_is_stable_and_justified(tmp_path):
    findings = [_finding(msg="b"), _finding(msg="a")]
    path = tmp_path / "baseline.json"
    Baseline.from_findings(findings, "why it stays").save(path)
    data = json.loads(path.read_text())
    assert data["version"] == "1"
    messages = [e["message"] for e in data["entries"]]
    assert messages == sorted(messages), "entries must be sorted"
    assert all(e["justification"] == "why it stays" for e in data["entries"])
    # canonical form: rewriting an unchanged baseline is a no-op diff
    again = Baseline.load(path)
    assert again.render() == path.read_text()


def test_different_rule_same_location_is_not_accepted(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.from_findings([_finding(rule="RPX101")]).save(path)
    match = Baseline.load(path).apply([_finding(rule="RPX102")])
    assert match.new and not match.accepted
