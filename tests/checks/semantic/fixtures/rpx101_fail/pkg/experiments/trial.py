"""A cached experiment whose run() is secretly impure via pkg.clock."""

from pkg.clock import label


def run(params, seed=0):
    return {"tag": label("trial"), "seed": seed}
