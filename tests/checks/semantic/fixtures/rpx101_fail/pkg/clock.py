"""Impure helper: reads the wall clock two calls away from run()."""

import time


def stamp():
    return time.time()  # expect: RPX101


def label(prefix):
    return f"{prefix}@{stamp()}"
