"""Unit-annotated helper used correctly by pkg.report."""


def average_power_w(energy_j, runtime_s):
    return energy_j / runtime_s
