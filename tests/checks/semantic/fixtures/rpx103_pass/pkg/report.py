"""Dimension-consistent arithmetic across two modules."""

from pkg.power import average_power_w


def summarise(energy_j, runtime_s):
    avg_w = average_power_w(energy_j, runtime_s)
    total_j = avg_w * runtime_s
    return avg_w, total_j
