"""Sampling site one module away from the ambient seed."""

from pkg.seeds import fresh_generator


def draw(n):
    gen = fresh_generator()
    return gen.normal(size=n)  # expect: RPX102
