"""Generator factory seeded from the wall clock (the taint source)."""

import time

import numpy as np


def fresh_generator():
    return np.random.default_rng(time.time_ns())
