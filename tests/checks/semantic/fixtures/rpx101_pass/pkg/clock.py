"""Mixed helper module: one impure function, never reached from run()."""

import time


def now():
    # impure, but nothing on run()'s call path uses it
    return time.time()


def double(x):
    return 2 * x
