"""A cached experiment that only touches pure helpers."""

from pkg.clock import double


def run(params, seed=0):
    return {"value": double(params.get("x", 1)), "seed": seed}
