"""Mixed-dimension arithmetic and a cross-module argument mismatch."""

from pkg.power import average_power_w


def summarise(power_w, runtime_s):
    broken = power_w + runtime_s  # expect: RPX103
    avg = average_power_w(power_w, runtime_s)  # expect: RPX103
    return broken, avg
