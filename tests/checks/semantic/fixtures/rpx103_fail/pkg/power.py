"""Unit-annotated helper whose signature other modules must honour."""


def average_power_w(energy_j, runtime_s):
    return energy_j / runtime_s
