"""Sampling from explicitly seeded generators, local and cross-module."""

import numpy as np

from pkg.goodrng import stream


def draw(n, seed=0):
    gen = np.random.default_rng(seed)
    other = stream(123)
    return gen.normal(size=n) + other.random(n)
