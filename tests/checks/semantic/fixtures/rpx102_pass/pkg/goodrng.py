"""Configured rng module: factories here count as explicit-seed sources."""

import numpy as np


def stream(seed):
    return np.random.default_rng(seed)
