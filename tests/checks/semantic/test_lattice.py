"""Unit-lattice tests, including the wire layer's data/bandwidth units."""

from __future__ import annotations

from repro.checks.semantic.lattice import (
    SCALAR,
    UNKNOWN,
    dimension_of,
    join_units,
    unit_of_name,
    units_divide,
    units_multiply,
)


class TestNameInference:
    def test_power_time_energy_suffixes_still_work(self):
        assert unit_of_name("core_power_w") == "w"
        assert unit_of_name("duration_s") == "s"
        assert unit_of_name("energy_j") == "j"

    def test_wire_suffixes(self):
        assert unit_of_name("payload_bytes") == "b"
        assert unit_of_name("header_bits") == "bit"
        assert unit_of_name("node_bps") == "b/s"

    def test_wire_words(self):
        assert unit_of_name("bytes") == "b"
        assert unit_of_name("bits") == "bit"

    def test_short_b_tail_is_not_bytes(self):
        # ``rank_b`` means "the second of a pair", so no ``_b`` suffix.
        assert unit_of_name("rank_b") == UNKNOWN

    def test_dimensions(self):
        assert dimension_of("b") == "data"
        assert dimension_of("bit") == "data"
        assert dimension_of("b/s") == "bandwidth"


class TestWireAlgebra:
    def test_bytes_over_time_is_bandwidth(self):
        assert units_divide("b", "s") == "b/s"

    def test_bandwidth_times_time_is_bytes(self):
        assert units_multiply("b/s", "s") == "b"
        assert units_multiply("s", "b/s") == "b"

    def test_bytes_over_bandwidth_is_time(self):
        assert units_divide("b", "b/s") == "s"

    def test_bits_do_not_silently_mix_with_bytes(self):
        assert join_units("b", "bit") == UNKNOWN
        assert units_divide("bit", "s") == UNKNOWN

    def test_scalar_and_unknown_behave(self):
        assert units_multiply("b/s", SCALAR) == "b/s"
        assert units_divide("b", "b") == SCALAR
        assert units_multiply("b", UNKNOWN) == UNKNOWN
