"""SARIF 2.1.0 output validation.

The container has no network, so the test validates against a vendored
subset of the official ``sarif-schema-2.1.0.json`` constraints — the
required-property structure, enums, and types that CI ingestion
actually trips over — using ``jsonschema``.  A looser eyeball test
would let a malformed log rot until the first CI upload failed.
"""

import json

import jsonschema
import pytest

from repro.checks.engine import Finding
from repro.checks.semantic import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
    sarif_document,
)

#: Subset of the official SARIF 2.1.0 schema: every property our
#: documents emit, with the spec's required fields, types, and enums.
#: ``additionalProperties: false`` keeps us honest — emitting a
#: property this subset doesn't know about fails the test, forcing the
#: subset to grow with the emitter.
SARIF_21_SUBSET = {
    "type": "object",
    "required": ["version", "runs"],
    "additionalProperties": False,
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool"],
                "additionalProperties": False,
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "additionalProperties": False,
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {
                                        "type": "string",
                                        "format": "uri",
                                    },
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "additionalProperties": False,
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                    "properties": {
                                                        "text": {
                                                            "type": "string"
                                                        }
                                                    },
                                                },
                                                "helpUri": {
                                                    "type": "string",
                                                    "format": "uri",
                                                },
                                                "defaultConfiguration": {
                                                    "type": "object",
                                                    "properties": {
                                                        "level": {
                                                            "enum": [
                                                                "none",
                                                                "note",
                                                                "warning",
                                                                "error",
                                                            ]
                                                        }
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "originalUriBaseIds": {"type": "object"},
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "additionalProperties": False,
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "baselineState": {
                                    "enum": [
                                        "new",
                                        "unchanged",
                                        "updated",
                                        "absent",
                                    ]
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            },
                                                            "uriBaseId": {
                                                                "type": "string"
                                                            },
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def _finding(rule="RPX101", path="src/repro/x.py", line=3, col=0, msg="boom"):
    return Finding(path=path, line=line, col=col, rule_id=rule, message=msg)


RULES = [
    ("RPX101", "purity"),
    ("RPX102", "seed taint"),
    ("RPX103", "unit dimensions"),
]


@pytest.mark.parametrize(
    "findings,accepted",
    [
        ([], None),
        ([_finding()], None),
        ([_finding()], []),
        ([_finding()], [_finding(rule="RPX103", msg="old")]),
    ],
)
def test_document_validates_against_schema_subset(findings, accepted):
    doc = sarif_document(findings, RULES, accepted)
    jsonschema.validate(
        doc,
        SARIF_21_SUBSET,
        format_checker=jsonschema.FormatChecker(),
    )


def test_version_and_schema_uri():
    doc = sarif_document([], RULES)
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert "2.1.0" in SARIF_SCHEMA_URI


def test_every_result_references_a_declared_rule():
    findings = [_finding(rule="RPX101"), _finding(rule="RPX103")]
    doc = sarif_document(findings, RULES, accepted=[_finding(rule="RPX102")])
    run = doc["runs"][0]
    declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
    used = {r["ruleId"] for r in run["results"]}
    assert used <= declared


def test_baseline_state_split():
    new = [_finding(msg="fresh")]
    accepted = [_finding(rule="RPX102", msg="known")]
    doc = sarif_document(new, RULES, accepted)
    states = {
        r["message"]["text"]: r["baselineState"]
        for r in doc["runs"][0]["results"]
    }
    assert states == {"fresh": "new", "known": "unchanged"}


def test_no_baseline_means_no_baseline_state():
    doc = sarif_document([_finding()], RULES, accepted=None)
    assert "baselineState" not in doc["runs"][0]["results"][0]


def test_line_zero_is_clamped_to_one():
    doc = sarif_document([_finding(line=0)], RULES)
    region = doc["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"
    ]["region"]
    assert region["startLine"] == 1
    assert region["startColumn"] == 1  # 0-based AST col -> 1-based SARIF


def test_render_round_trips():
    text = render_sarif([_finding()], RULES, [])
    doc = json.loads(text)
    jsonschema.validate(
        doc, SARIF_21_SUBSET, format_checker=jsonschema.FormatChecker()
    )
