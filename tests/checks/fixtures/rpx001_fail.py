"""Fail fixture: global NumPy random state (RPX001)."""

import numpy as np
from numpy.random import seed  # expect: RPX001

np.random.seed(1234)  # expect: RPX001
x = np.random.rand(4)  # expect: RPX001
y = np.random.choice([1, 2, 3])  # expect: RPX001
state = np.random.RandomState(7)  # expect: RPX001
