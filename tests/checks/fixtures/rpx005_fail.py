"""Fail fixture: experiment-contract violations (RPX005)."""  # expect: RPX005


def run_sweep(seed):  # expect: RPX005
    """A seed parameter with no default is not runnable headlessly."""
    return seed


def run_extra(*, rng=object()):  # expect: RPX005
    """A computed default could reach OS entropy."""
    return rng
