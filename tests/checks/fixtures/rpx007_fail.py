"""Fail fixture: OS-entropy generator construction (RPX007)."""

import numpy as np

gen = np.random.default_rng()  # expect: RPX007
seq = np.random.SeedSequence()  # expect: RPX007
explicit_none = np.random.default_rng(None)  # expect: RPX007
