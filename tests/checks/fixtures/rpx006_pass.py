"""Pass fixture: __all__ matches the public surface (RPX006)."""

__all__ = ["helper"]


def helper():
    """The only public definition."""
    return 1


def _private():
    """Underscore-prefixed names need no export."""
    return 2
