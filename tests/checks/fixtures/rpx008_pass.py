"""Pass fixture: recovery paths that account for what they catch."""

import warnings


def retry_read(meter, retries):
    """Specific exception type, counted and bounded."""
    for attempt in range(retries):
        try:
            return meter.read()
        except TimeoutError:
            continue
    raise TimeoutError(f"meter dead after {retries} attempts")


def next_batch(source):
    """A specific, expected condition may be silently absorbed."""
    try:
        return next(source)
    except StopIteration:
        return None


def lookup(cache, key):
    """Broad catch is fine when the handler records the fault."""
    try:
        return cache[key]
    except Exception as exc:
        warnings.warn(f"cache lookup failed: {exc}", RuntimeWarning)
        return None
