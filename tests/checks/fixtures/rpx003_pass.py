"""Pass fixture: tolerances for floats, exact equality for ints."""

import math


def check(a, b):
    """Tolerance-based comparison."""
    return math.isclose(a / b, 0.25, rel_tol=1e-9)


def is_last(i, n):
    """Integer index arithmetic is fine."""
    return i == n - 1


def is_empty(values):
    """Integer equality is fine."""
    return len(values) == 0
