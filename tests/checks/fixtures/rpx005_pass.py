"""Pass fixture: a well-formed experiment module (RPX005)."""


def run(*, seed=None, n=10):
    """Entry point with a deterministic seed default."""
    return n if seed is None else seed


def run_variant(*, seed=0):
    """Secondary runner, also seeded by constant."""
    return seed
