"""Pass fixture: explicitly seeded generators (RPX007)."""

import numpy as np

from repro.rng import default_rng

gen = np.random.default_rng(1234)
named = default_rng(None)
