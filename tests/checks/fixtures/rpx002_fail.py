"""Fail fixture: magic unit literals and unit-less parameters (RPX002)."""


def to_hours(seconds_total):
    """Convert with a magic hour constant."""
    return seconds_total / 3600.0  # expect: RPX002


def report_kw(watts):
    """Convert with a bare scientific scale factor."""
    return watts / 1e3  # expect: RPX002


def integrate(power, dt_s):  # expect: RPX002
    """Parameter named after a quantity with no unit suffix."""
    return power * dt_s
