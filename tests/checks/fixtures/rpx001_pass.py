"""Pass fixture: generators threaded explicitly (RPX001)."""

import numpy as np

__all__ = ["draw"]


def draw(rng: np.random.Generator) -> float:
    """Draw one sample from an explicitly threaded generator."""
    return float(rng.normal())
