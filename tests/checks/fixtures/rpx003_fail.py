"""Fail fixture: exact equality on computed floats (RPX003)."""


def check(a, b):
    """Compare computed floats exactly."""
    if a == 0.5:  # expect: RPX003
        return True
    return a / b == 0.25  # expect: RPX003


def drift(x):
    """FMA contraction makes this platform-dependent."""
    return x * 2.0 != x + x  # expect: RPX003
