"""Pass fixture: library code as a pure function of (inputs, seed)."""

from repro.rng import default_rng


def jitter(seed):
    """Deterministic noise from a threaded generator."""
    return float(default_rng(seed).normal())
