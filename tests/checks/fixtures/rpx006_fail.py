"""Fail fixture: __all__ inconsistencies (RPX006)."""

__all__ = ["missing_name", "helper"]  # expect: RPX006


def helper():
    """Exported and defined — fine."""
    return 1


def orphan():  # expect: RPX006
    """Public but not exported."""
    return 2
