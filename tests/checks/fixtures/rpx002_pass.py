"""Pass fixture: conversions via repro.units, suffixed parameters."""

from repro.units import SECONDS_PER_HOUR, watts_to_kilowatts


def to_hours(seconds_total):
    """Convert using the named constant."""
    return seconds_total / SECONDS_PER_HOUR


def report_kw(power_w):
    """Convert through the units helper."""
    return watts_to_kilowatts(power_w)


def node_count():
    """A decimal 1000.0 is a quantity, not a unit prefix."""
    return 1000.0
