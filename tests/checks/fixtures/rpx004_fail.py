"""Fail fixture: ambient state in library code (RPX004)."""

import random
import time
from datetime import datetime
from os import urandom  # expect: RPX004


def jitter():
    """stdlib random is hidden global entropy."""
    return random.random()  # expect: RPX004


def stamp():
    """Wall-clock read."""
    return time.time()  # expect: RPX004


def label():
    """Wall-clock read via datetime."""
    return datetime.now().isoformat()  # expect: RPX004
