"""Fail fixture: silent fault swallowing in recovery code (RPX008)."""


def retry_read(meter):
    """Bare except: swallows every fault, even KeyboardInterrupt."""
    try:
        return meter.read()
    except:  # expect: RPX008
        return None


def drain(queue):
    """Catch-everything with a pass body leaves no trace of the fault."""
    try:
        return queue.get()
    except Exception:  # expect: RPX008
        pass


def flush(sink):
    """Broad type inside a tuple, still silent."""
    try:
        sink.flush()
    except (ValueError, BaseException):  # expect: RPX008
        ...
