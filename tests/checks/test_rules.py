"""Per-rule fixture tests for the repro.checks lint rules.

Every rule ships a pass-fixture (clean for that rule) and a
fail-fixture whose violating lines carry ``# expect: RPXnnn`` markers.
The tests assert the findings match the markers exactly (rule id *and*
line number), and that rewriting each marker into ``# repro: noqa
RPXnnn`` suppresses the corresponding finding.
"""

import re
from pathlib import Path

import pytest

from repro.checks import LintConfig, check_source, rule_index

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id → virtual path the fixture is linted "as" (path-scoped rules
#: like the experiment contract key off the module's location).
VIRTUAL_PATHS = {
    "RPX005": "src/repro/experiments/fixture_exp.py",
}
DEFAULT_PATH = "src/repro/lib/fixture_mod.py"

RULE_IDS = sorted(rule_index())

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RPX\d{3})")


def expected_findings(source: str) -> list[tuple[int, str]]:
    """(line, rule_id) pairs declared by ``# expect:`` markers."""
    out = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        for match in _EXPECT_RE.finditer(line):
            out.append((lineno, match.group(1)))
    return sorted(out)


def lint_with(rule_id: str, source: str) -> list[tuple[int, str]]:
    """Lint ``source`` with a single rule; return (line, rule_id) pairs."""
    rule = rule_index()[rule_id]
    path = VIRTUAL_PATHS.get(rule_id, DEFAULT_PATH)
    findings = check_source(source, path, [rule], LintConfig())
    return sorted((f.line, f.rule_id) for f in findings)


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_fail_fixture_exact_lines(rule_id):
    source = (FIXTURES / f"{rule_id.lower()}_fail.py").read_text()
    expected = expected_findings(source)
    assert expected, f"fixture for {rule_id} declares no expectations"
    assert lint_with(rule_id, source) == expected


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_pass_fixture_clean(rule_id):
    source = (FIXTURES / f"{rule_id.lower()}_pass.py").read_text()
    assert lint_with(rule_id, source) == []


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_noqa_suppresses_every_finding(rule_id):
    source = (FIXTURES / f"{rule_id.lower()}_fail.py").read_text()
    suppressed = _EXPECT_RE.sub(lambda m: f"# repro: noqa {m.group(1)}", source)
    assert lint_with(rule_id, suppressed) == []


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_bare_noqa_suppresses_too(rule_id):
    source = (FIXTURES / f"{rule_id.lower()}_fail.py").read_text()
    suppressed = _EXPECT_RE.sub("# repro: noqa", source)
    assert lint_with(rule_id, suppressed) == []


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_noqa_for_other_rule_does_not_suppress(rule_id):
    source = (FIXTURES / f"{rule_id.lower()}_fail.py").read_text()
    other = "RPX999"
    partially = _EXPECT_RE.sub(f"# repro: noqa {other}", source)
    assert lint_with(rule_id, partially) == [
        (line, rid) for line, rid in expected_findings(source)
    ]


class TestRuleScoping:
    """Path-scoped behaviour that fixtures alone can't show."""

    def test_units_module_may_define_unit_constants(self):
        source = "SECONDS_PER_HOUR = 3600.0\n__all__ = ['SECONDS_PER_HOUR']\n"
        rule = rule_index()["RPX002"]
        clean = check_source(source, "src/repro/units.py", [rule], LintConfig())
        assert clean == []
        dirty = check_source(source, DEFAULT_PATH, [rule], LintConfig())
        assert [f.rule_id for f in dirty] == ["RPX002"]

    def test_cli_module_may_read_wall_clock(self):
        source = "import time\n\nelapsed = time.time()\n"
        rule = rule_index()["RPX004"]
        clean = check_source(source, "src/repro/cli.py", [rule], LintConfig())
        assert clean == []
        dirty = check_source(source, DEFAULT_PATH, [rule], LintConfig())
        assert [f.rule_id for f in dirty] == ["RPX004"]

    def test_experiment_contract_skips_infrastructure_modules(self):
        source = "X = 1\n"
        rule = rule_index()["RPX005"]
        for basename in ("__init__.py", "base.py", "runner.py"):
            path = f"src/repro/experiments/{basename}"
            assert check_source(source, path, [rule], LintConfig()) == []
        assert check_source(source, DEFAULT_PATH, [rule], LintConfig()) == []

    def test_missing_run_is_reported_on_line_one(self):
        source = '"""An experiment module with no entry point."""\n'
        rule = rule_index()["RPX005"]
        findings = check_source(
            source, VIRTUAL_PATHS["RPX005"], [rule], LintConfig()
        )
        assert [(f.rule_id, f.line) for f in findings] == [("RPX005", 1)]

    def test_modules_without_all_are_not_flagged(self):
        source = "def public():\n    return 1\n"
        rule = rule_index()["RPX006"]
        assert check_source(source, DEFAULT_PATH, [rule], LintConfig()) == []
