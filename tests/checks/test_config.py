"""Tests for [tool.repro.lint] loading and path matching."""

from repro.checks import LintConfig, load_config, path_matches


class TestPathMatches:
    def test_tail_match(self):
        assert path_matches("src/repro/units.py", "repro/units.py")

    def test_full_glob(self):
        assert path_matches("tests/checks/fixtures/x.py", "*/fixtures/*")

    def test_basename_match(self):
        assert path_matches("deep/nested/conftest.py", "conftest.py")

    def test_no_match(self):
        assert not path_matches("src/repro/core/sampling.py", "repro/units.py")


class TestLoadConfig:
    def test_missing_pyproject_gives_defaults(self, tmp_path):
        assert load_config(tmp_path) == LintConfig()

    def test_reads_table_with_dashed_keys(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\n"
            'ignore = ["RPX006"]\n'
            'units-modules = ["mylib/units.py"]\n'
            "jobs = 2\n"
        )
        config = load_config(tmp_path)
        assert config.ignore == ("RPX006",)
        assert config.units_modules == ("mylib/units.py",)
        assert config.jobs == 2

    def test_unknown_keys_ignored(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\nfuture-option = true\n"
        )
        assert load_config(tmp_path) == LintConfig()

    def test_walks_up_to_parent(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.repro.lint]\nignore = ["RPX001"]\n'
        )
        nested = tmp_path / "src" / "pkg"
        nested.mkdir(parents=True)
        assert load_config(nested).ignore == ("RPX001",)

    def test_malformed_toml_gives_defaults(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("not [valid toml")
        assert load_config(tmp_path) == LintConfig()


class TestRuleEnabled:
    def test_select_empty_means_all(self):
        assert LintConfig().rule_enabled("RPX001")

    def test_select_filters(self):
        config = LintConfig(select=("RPX002",))
        assert config.rule_enabled("RPX002")
        assert not config.rule_enabled("RPX001")

    def test_ignore_wins_over_select(self):
        config = LintConfig(select=("RPX002",), ignore=("RPX002",))
        assert not config.rule_enabled("RPX002")

    def test_fingerprint_tracks_fields(self):
        assert LintConfig().fingerprint() != LintConfig(jobs=3).fingerprint()
