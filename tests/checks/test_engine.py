"""Engine-level tests: noqa parsing, caching, parallel scan, reports."""

import json
from pathlib import Path

from repro.checks import (
    PARSE_ERROR_ID,
    Finding,
    LintCache,
    LintConfig,
    cache_key,
    check_source,
    default_rules,
    iter_python_files,
    noqa_map,
    run_lint,
)

CLEAN = '"""A clean module."""\n\n__all__ = ["f"]\n\n\ndef f(x):\n    """Double."""\n    return 2 * x\n'
DIRTY = '"""A module with one violation."""\n\nHOUR = 3600.0\n'


class TestNoqaParsing:
    def test_bare_noqa_means_all(self):
        assert noqa_map(["x = 1  # repro: noqa"]) == {1: None}

    def test_single_and_multiple_ids(self):
        mapping = noqa_map(
            ["a  # repro: noqa RPX001", "b  # repro: noqa RPX002, RPX003"]
        )
        assert mapping[1] == frozenset({"RPX001"})
        assert mapping[2] == frozenset({"RPX002", "RPX003"})

    def test_colon_separator_accepted(self):
        assert noqa_map(["a  # repro: noqa: RPX004"])[1] == frozenset({"RPX004"})

    def test_unrelated_comments_ignored(self):
        assert noqa_map(["x = 1  # a comment", "y = 2"]) == {}


class TestCheckSource:
    def test_syntax_error_yields_parse_finding(self):
        findings = check_source("def broken(:\n", "bad.py", default_rules())
        assert len(findings) == 1
        assert findings[0].rule_id == PARSE_ERROR_ID

    def test_findings_sorted_by_position(self):
        src = "B = 3600.0\nA = 3600.0\n"
        findings = check_source(src, "m.py", default_rules())
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestFindingSerialisation:
    def test_roundtrip(self):
        f = Finding(path="a.py", line=3, col=7, rule_id="RPX002", message="m")
        assert Finding.from_dict(f.to_dict()) == f

    def test_format_shape(self):
        f = Finding(path="a.py", line=3, col=7, rule_id="RPX002", message="m")
        assert f.format() == "a.py:3:7: RPX002 m"


class TestRunLint:
    def make_tree(self, tmp_path):
        (tmp_path / "clean.py").write_text(CLEAN)
        (tmp_path / "dirty.py").write_text(DIRTY)
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "also_clean.py").write_text(CLEAN)
        return tmp_path

    def test_scans_directories_recursively(self, tmp_path):
        root = self.make_tree(tmp_path)
        report = run_lint([root])
        assert report.files_scanned == 3
        assert [f.rule_id for f in report.findings] == ["RPX002"]
        assert report.findings[0].path.endswith("dirty.py")

    def test_parallel_and_serial_agree(self, tmp_path):
        root = self.make_tree(tmp_path)
        serial = run_lint([root], jobs=1)
        parallel = run_lint([root], jobs=4)
        assert serial.findings == parallel.findings

    def test_exclude_patterns(self, tmp_path):
        root = self.make_tree(tmp_path)
        config = LintConfig(exclude=("dirty.py",))
        report = run_lint([root], config=config)
        assert report.ok
        assert report.files_scanned == 2

    def test_single_file_target(self, tmp_path):
        root = self.make_tree(tmp_path)
        report = run_lint([root / "dirty.py"])
        assert not report.ok
        assert report.files_scanned == 1

    def test_json_report_parses(self, tmp_path):
        root = self.make_tree(tmp_path)
        payload = json.loads(run_lint([root]).render_json())
        assert payload["files_scanned"] == 3
        assert payload["findings"][0]["rule"] == "RPX002"


class TestCache:
    def test_second_run_hits_cache(self, tmp_path):
        (tmp_path / "dirty.py").write_text(DIRTY)
        cache_path = tmp_path / "cache.json"
        first = run_lint([tmp_path], cache=LintCache(cache_path))
        assert first.cache_hits == 0
        assert cache_path.exists()
        second = run_lint([tmp_path], cache=LintCache(cache_path))
        assert second.cache_hits == second.files_scanned
        assert second.findings == first.findings

    def test_content_change_invalidates(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(DIRTY)
        cache_path = tmp_path / "cache.json"
        run_lint([tmp_path], cache=LintCache(cache_path))
        target.write_text(CLEAN)
        report = run_lint([tmp_path], cache=LintCache(cache_path))
        assert report.cache_hits == 0
        assert report.ok

    def test_key_depends_on_rules_and_config(self):
        rules = default_rules()
        base = cache_key(b"x = 1\n", rules, LintConfig())
        assert cache_key(b"x = 2\n", rules, LintConfig()) != base
        assert cache_key(b"x = 1\n", rules[:1], LintConfig()) != base
        assert cache_key(b"x = 1\n", rules, LintConfig(ignore=("RPX001",))) != base

    def test_corrupt_cache_degrades_gracefully(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        (tmp_path / "mod.py").write_text(CLEAN)
        report = run_lint([tmp_path / "mod.py"], cache=LintCache(cache_path))
        assert report.ok


class TestRuleSelection:
    def test_select_restricts(self):
        rules = default_rules(LintConfig(select=("RPX001", "RPX003")))
        assert sorted(r.rule_id for r in rules) == ["RPX001", "RPX003"]

    def test_ignore_removes(self):
        rules = default_rules(LintConfig(ignore=("RPX006",)))
        assert "RPX006" not in [r.rule_id for r in rules]

    def test_iter_python_files_skips_non_python(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.txt").write_text("not python")
        files = iter_python_files([tmp_path], LintConfig())
        assert [p.name for p in files] == ["a.py"]
