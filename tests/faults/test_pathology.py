"""Correlated pathology models: identity, exactness, disjointness.

The contracts under test:

* **identity** (hypothesis): an always-on meter (duty 1.0), zero device
  spread and constant input entropy are *bit-identical* to the
  unfaulted path for arbitrary matrices — not merely close.
* **exact accounting**: every injected watt of correlated bias is in
  the ledger and the per-cell ``bias_w`` matrix, to summation order.
* **disjointness / ordering**: an aliasing meter refuses cells another
  model claimed, and ambient pathologies refuse to run after any
  claiming model — with errors that say so.
* **stacking**: correlated + independent models in one plan still
  reconcile exactly through the full recovery harness.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.models import (
    FaultPlan,
    SampleDropout,
    SpikeGlitch,
    StuckAtLastValue,
    TruncatedTail,
)
from repro.faults.pathology import (
    AliasingMeter,
    DeviceSpreadModel,
    EntropyPowerModel,
    PathologyScenario,
    run_pathology,
    standard_scenarios,
)

#: Arbitrary-ish run shapes and seeds for the identity properties.
shapes = st.tuples(
    st.integers(min_value=2, max_value=48),  # n_ticks
    st.integers(min_value=1, max_value=6),   # n_nodes
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _matrix(n_ticks: int, n_nodes: int, seed: int):
    rng = np.random.default_rng(seed)
    times = np.arange(n_ticks) * 2.0
    base = 200.0 + 40.0 * rng.random(n_nodes)
    trend = 1.0 + 0.3 * np.sin(np.linspace(0.0, 3.0, n_ticks))
    watts = base[None, :] * trend[:, None] + rng.random((n_ticks, n_nodes))
    return times, watts


class TestIdentityProperties:
    """Duty 1.0 / zero spread / constant entropy == the unfaulted path."""

    @settings(max_examples=40, deadline=None)
    @given(shapes, seeds, st.integers(min_value=1, max_value=16),
           st.integers(min_value=0, max_value=7))
    def test_always_on_meter_is_identity(self, shape, seed, period, phase):
        times, watts = _matrix(*shape, seed)
        plan = FaultPlan.canonical(
            [AliasingMeter(
                period_ticks=period, duty_frac=1.0, phase_ticks=phase
            )],
            seed,
        )
        out = plan.apply(times, watts)
        assert np.array_equal(out.watts, watts)
        assert not out.aliased_mask.any()
        assert not np.abs(out.bias_w).any()
        assert out.ledger.samples_aliased == 0

    @settings(max_examples=40, deadline=None)
    @given(shapes, seeds)
    def test_zero_spread_is_identity(self, shape, seed):
        times, watts = _matrix(*shape, seed)
        plan = FaultPlan.canonical([DeviceSpreadModel(spread_frac=0.0)], seed)
        out = plan.apply(times, watts)
        assert np.array_equal(out.watts, watts)
        assert not np.abs(out.bias_w).any()
        assert out.ledger.nodes_spread == 0

    @settings(max_examples=40, deadline=None)
    @given(shapes, seeds,
           st.floats(min_value=0.0, max_value=50.0,
                     allow_nan=False, allow_infinity=False),
           st.floats(min_value=0.0, max_value=1.0,
                     allow_nan=False, allow_infinity=False))
    def test_constant_entropy_is_identity(self, shape, seed, amp, level):
        times, watts = _matrix(*shape, seed)
        plan = FaultPlan.canonical(
            [EntropyPowerModel(
                amplitude_w=amp, segment_ticks=5,
                entropy_lo=level, entropy_hi=level,
            )],
            seed,
        )
        out = plan.apply(times, watts)
        assert np.array_equal(out.watts, watts)
        assert not np.abs(out.bias_w).any()
        assert out.ledger.samples_entropy_shifted == 0

    @settings(max_examples=25, deadline=None)
    @given(shapes, seeds)
    def test_all_three_identities_stack(self, shape, seed):
        times, watts = _matrix(*shape, seed)
        plan = FaultPlan.canonical(
            [
                AliasingMeter(period_ticks=8, duty_frac=1.0),
                EntropyPowerModel(amplitude_w=0.0, segment_ticks=4),
                DeviceSpreadModel(spread_frac=0.0),
            ],
            seed,
        )
        out = plan.apply(times, watts)
        assert np.array_equal(out.watts, watts)
        assert not out.ledger.any_correlated


class TestAliasingMeter:
    def test_holds_last_on_window_reading(self):
        times = np.arange(8) * 1.0
        watts = np.arange(8.0)[:, None] * 10.0 + np.array([[100.0, 200.0]])
        plan = FaultPlan.canonical(
            [AliasingMeter(period_ticks=4, duty_frac=0.5)], seed=1
        )
        out = plan.apply(times, watts)
        # Ticks 0,1 on; 2,3 hold tick 1; 4,5 on; 6,7 hold tick 5.
        expected = watts.copy()
        expected[2] = expected[3] = watts[1]
        expected[6] = expected[7] = watts[5]
        assert np.array_equal(out.watts, expected)
        assert out.aliased_mask.sum() == 4 * 2
        assert np.array_equal(out.aliased_mask.any(axis=1),
                              np.array([0, 0, 1, 1, 0, 0, 1, 1], bool))

    def test_bias_is_exact_per_cell(self):
        times, watts = _matrix(30, 3, seed=9)
        plan = FaultPlan.canonical(
            [AliasingMeter(period_ticks=5, duty_frac=0.4, phase_ticks=2)],
            seed=7,
        )
        out = plan.apply(times, watts)
        assert np.allclose(out.bias_w, out.watts - watts)
        assert out.ledger.samples_aliased == int(out.aliased_mask.sum())
        assert out.ledger.aliasing_bias_w_sum == pytest.approx(
            float((out.watts - watts).sum())
        )
        assert out.ledger.samples_biased == out.ledger.samples_aliased
        assert out.ledger.any_correlated

    def test_phase_shifts_the_window(self):
        times = np.arange(6) * 1.0
        watts = np.arange(6.0)[:, None] + np.array([[50.0]])
        out = FaultPlan.canonical(
            [AliasingMeter(period_ticks=3, duty_frac=1 / 3, phase_ticks=1)],
            seed=0,
        ).apply(times, watts)
        # On ticks satisfy (t + 1) % 3 == 0, i.e. t = 2, 5; ticks before
        # the first on-tick are untouched (no reading to hold yet).
        assert np.array_equal(
            out.aliased_mask[:, 0],
            np.array([0, 0, 0, 1, 1, 0], bool),
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="duty_frac"):
            AliasingMeter(period_ticks=4, duty_frac=0.0)
        with pytest.raises(ValueError, match="duty_frac"):
            AliasingMeter(period_ticks=4, duty_frac=1.5)
        with pytest.raises(ValueError, match="period_ticks"):
            AliasingMeter(period_ticks=0, duty_frac=0.5)
        with pytest.raises(ValueError, match="phase_ticks"):
            AliasingMeter(period_ticks=4, duty_frac=0.5, phase_ticks=-1)


class TestEntropyPowerModel:
    def test_offset_is_common_mode_and_segment_constant(self):
        times, watts = _matrix(40, 4, seed=3)
        plan = FaultPlan.canonical(
            [EntropyPowerModel(amplitude_w=25.0, segment_ticks=10)], seed=11
        )
        out = plan.apply(times, watts)
        offsets = out.watts - watts
        # Common-mode: every node in a tick shifts identically.
        assert np.allclose(offsets, offsets[:, :1])
        # Segment-constant: one offset per 10-tick block.
        per_tick = offsets[:, 0]
        for k in range(4):
            block = per_tick[10 * k: 10 * (k + 1)]
            assert np.allclose(block, block[0])
        assert np.allclose(out.bias_w, offsets)
        assert out.ledger.entropy_bias_w_sum == pytest.approx(
            float(offsets.sum())
        )

    def test_offsets_span_plus_minus_amplitude(self):
        times, watts = _matrix(400, 1, seed=5)
        out = FaultPlan.canonical(
            [EntropyPowerModel(amplitude_w=30.0, segment_ticks=4)], seed=2
        ).apply(times, watts)
        offs = (out.watts - watts)[:, 0]
        assert np.abs(offs).max() <= 30.0
        assert offs.min() < 0.0 < offs.max()

    def test_validation(self):
        with pytest.raises(ValueError, match="amplitude_w"):
            EntropyPowerModel(amplitude_w=-1.0)
        with pytest.raises(ValueError, match="segment_ticks"):
            EntropyPowerModel(amplitude_w=1.0, segment_ticks=0)
        with pytest.raises(ValueError, match="entropy_hi"):
            EntropyPowerModel(amplitude_w=1.0, entropy_lo=0.8, entropy_hi=0.2)


class TestDeviceSpreadModel:
    def test_factor_is_persistent_per_node(self):
        times, watts = _matrix(50, 5, seed=21)
        out = FaultPlan.canonical(
            [DeviceSpreadModel(spread_frac=0.05)], seed=13
        ).apply(times, watts)
        factors = out.watts / watts
        # One multiplicative factor per node, constant over the run.
        assert np.allclose(factors, factors[:1, :])
        assert out.ledger.nodes_spread == 5
        assert out.ledger.spread_max_abs_frac == pytest.approx(
            float(np.abs(factors[0] - 1.0).max())
        )
        assert np.allclose(out.bias_w, out.watts - watts)

    def test_clip_bounds_the_worst_node(self):
        times, watts = _matrix(10, 200, seed=1)
        out = FaultPlan.canonical(
            [DeviceSpreadModel(spread_frac=0.1, clip_sigma=2.0)], seed=3
        ).apply(times, watts)
        factors = out.watts[0] / watts[0]
        assert np.abs(factors - 1.0).max() <= 0.2 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError, match="spread_frac"):
            DeviceSpreadModel(spread_frac=0.5)
        with pytest.raises(ValueError, match="spread_frac"):
            DeviceSpreadModel(spread_frac=-0.01)
        with pytest.raises(ValueError, match="clip_sigma"):
            DeviceSpreadModel(spread_frac=0.1, clip_sigma=0.0)


class TestDisjointnessAndOrdering:
    def test_aliasing_rejects_cells_claimed_earlier(self):
        times, watts = _matrix(40, 3, seed=2)
        # Non-canonical order on purpose: stuck claims cells first,
        # then the meter wants whole rows — must refuse loudly.
        plan = FaultPlan(
            models=(
                StuckAtLastValue(rate=0.2, mean_ticks=4.0),
                AliasingMeter(period_ticks=4, duty_frac=0.5),
            ),
            seed=17,
        )
        with pytest.raises(ValueError, match="already claimed"):
            plan.apply(times, watts)

    @pytest.mark.parametrize(
        "ambient",
        [
            EntropyPowerModel(amplitude_w=10.0, segment_ticks=5),
            DeviceSpreadModel(spread_frac=0.05),
        ],
    )
    def test_ambient_models_refuse_claimed_matrices(self, ambient):
        times, watts = _matrix(40, 3, seed=2)
        plan = FaultPlan(
            models=(SampleDropout(rate=0.3), ambient), seed=23
        )
        with pytest.raises(ValueError, match="must run before"):
            plan.apply(times, watts)

    def test_canonical_order_pathologies_first(self):
        plan = FaultPlan.canonical(
            [
                SampleDropout(rate=0.1),
                AliasingMeter(period_ticks=4, duty_frac=0.5),
                SpikeGlitch(rate=0.01),
                DeviceSpreadModel(spread_frac=0.02),
                TruncatedTail(frac=0.1),
                EntropyPowerModel(amplitude_w=5.0),
            ],
            seed=1,
        )
        order = [type(m).__name__ for m in plan.models]
        assert order == [
            "TruncatedTail",
            "DeviceSpreadModel",
            "EntropyPowerModel",
            "AliasingMeter",
            "SpikeGlitch",
            "SampleDropout",
        ]

    def test_canonical_stack_applies_cleanly(self):
        times, watts = _matrix(60, 4, seed=8)
        plan = FaultPlan.canonical(
            [
                SampleDropout(rate=0.05),
                SpikeGlitch(rate=0.01, factor=8.0),
                AliasingMeter(period_ticks=6, duty_frac=0.5),
                DeviceSpreadModel(spread_frac=0.03),
                EntropyPowerModel(amplitude_w=8.0, segment_ticks=10),
            ],
            seed=31,
        )
        out = plan.apply(times, watts)
        # Disjointness held: spikes and dropout landed only outside the
        # meter's held rows.
        assert not (out.aliased_mask & out.spike_mask).any()
        assert not (out.aliased_mask & out.missing_mask).any()
        # All three pathologies left their ledger marks.
        assert out.ledger.samples_aliased > 0
        assert out.ledger.samples_entropy_shifted > 0
        assert out.ledger.nodes_spread > 0


class TestStackedReconciliation:
    def test_stacked_pathology_reconciles_exactly(self, small_run):
        scenario = PathologyScenario(
            name="stacked",
            aliasing_period_ticks=10,
            aliasing_duty_frac=0.6,
            entropy_amplitude_w=15.0,
            entropy_segment_ticks=30,
            spread_frac=0.02,
            dropout_rate=0.03,
            spike_rate=0.004,
        )
        out = run_pathology(
            small_run, scenario, seed=42,
            node_indices=np.arange(12), detect=False,
        )
        assert out.reconciled, out.reconciliation
        assert out.mean_within_bound and out.cv_within_bound
        assert out.report.samples_missing > 0
        assert out.report.samples_spiked > 0
        assert out.report.correlated_models == (
            "AliasingMeter", "EntropyPowerModel", "DeviceSpreadModel"
        )
        # Stacking must not sneak the independence note back in.
        assert (
            out.report.INDEPENDENCE_NOTE not in out.report.stated_notes
        )

    def test_pure_pathology_bounds_tight_but_honest(self, small_run):
        scenario = standard_scenarios(
            ("aliasing",), intensity="high"
        )[0]
        out = run_pathology(
            small_run, scenario, seed=42,
            node_indices=np.arange(12), detect=False,
        )
        assert out.ok()
        assert out.independent_bound_mean_violated


class TestScenarioValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown pathology kind"):
            standard_scenarios(("aliasing", "bogus"))

    def test_bad_intensity_rejected(self):
        with pytest.raises(ValueError, match="intensity"):
            standard_scenarios(("aliasing",), intensity="extreme")

    def test_any_pathology_flag(self):
        assert not PathologyScenario(name="off").any_pathology
        assert PathologyScenario(
            name="on", spread_frac=0.01
        ).any_pathology
        assert not PathologyScenario(
            name="duty-one", aliasing_period_ticks=10,
            aliasing_duty_frac=1.0,
        ).any_pathology
