"""Tests for repro.faults.recovery: retry, detect, repair, quarantine."""

import numpy as np
import pytest

from repro.faults.recovery import (
    GAP_POLICIES,
    FlakySource,
    MaskedRunningMoments,
    RecoveryPipeline,
    ResilientIngestLoop,
    RetryPolicy,
    TransientMeterError,
)
from repro.rng import stream
from repro.stream.ingest import IngestLoop, SampleBatch, SimClock


def _batches(watts_rows, *, per=4, dt_s=2.0):
    """Chunk a (ticks, nodes) array into SampleBatch objects."""
    watts = np.asarray(watts_rows, dtype=float)
    times = np.arange(watts.shape[0]) * dt_s
    ids = np.arange(watts.shape[1], dtype=np.int64)
    return [
        SampleBatch(times=times[lo: lo + per], watts=watts[lo: lo + per],
                    node_ids=ids)
        for lo in range(0, watts.shape[0], per)
    ]


class TestRetryPolicy:
    def test_backoff_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=2.0, jitter_frac=0.1)
        rng = stream(0, "test-retry")
        for attempt in range(4):
            d = policy.delay_s(attempt, rng)
            nominal = 2.0 ** attempt
            assert 0.9 * nominal <= d <= 1.1 * nominal

    def test_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError, match="base_delay_s"):
            RetryPolicy(base_delay_s=0.0)
        with pytest.raises(ValueError, match="factor"):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError, match="jitter_frac"):
            RetryPolicy(jitter_frac=1.0)
        policy = RetryPolicy()
        with pytest.raises(ValueError, match="attempt"):
            policy.delay_s(-1, stream(0, "x"))


class TestFlakySource:
    def test_failures_are_deterministic(self):
        batches = _batches(np.ones((12, 2)))
        a = FlakySource(iter(batches), failure_rate=0.5, seed=7)
        b = FlakySource(iter(batches), failure_rate=0.5, seed=7)

        def drain(src):
            out = []
            while True:
                try:
                    out.append(next(src))
                except TransientMeterError:
                    out.append("fail")
                except StopIteration:
                    return out

        assert [
            x if x == "fail" else float(x.t0_s) for x in drain(a)
        ] == [x if x == "fail" else float(x.t0_s) for x in drain(b)]
        assert a.failures_raised == b.failures_raised

    def test_plain_ingest_loop_dies_on_first_failure(self):
        # The motivation: the clean loop has no recovery path at all.
        source = FlakySource(
            iter(_batches(np.ones((12, 2)))), failure_rate=0.9, seed=1
        )
        loop = IngestLoop(source, lambda b: None)
        with pytest.raises(TransientMeterError):
            loop.run()

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_rate"):
            FlakySource(iter([]), failure_rate=1.0)


class TestResilientIngestLoop:
    def test_retries_absorb_every_failure(self):
        batches = _batches(np.ones((24, 3)))
        source = FlakySource(iter(batches), failure_rate=0.4, seed=3)
        seen = []
        loop = ResilientIngestLoop(
            source,
            seen.append,
            clock=SimClock(2.0),
            policy=RetryPolicy(max_retries=50),
            seed=3,
        )
        loop.run()
        assert loop.batches_ingested == len(batches)
        assert [float(b.t0_s) for b in seen] == [
            float(b.t0_s) for b in batches
        ]
        assert loop.retries == source.failures_raised > 0
        assert loop.batches_abandoned == 0
        assert loop.backoff_ticks >= loop.retries

    def test_retry_exhaustion_abandons_and_continues(self):
        batches = _batches(np.ones((40, 3)), per=4)
        source = FlakySource(iter(batches), failure_rate=0.75, seed=5)
        loop = ResilientIngestLoop(
            source,
            lambda b: None,
            clock=SimClock(2.0),
            policy=RetryPolicy(max_retries=1),
            seed=5,
        )
        loop.run()
        assert loop.batches_abandoned > 0
        assert len(loop.abandoned) == loop.batches_abandoned
        assert loop.samples_abandoned == sum(
            b.n_samples for b in loop.abandoned
        )
        # Nothing vanishes: every batch is either ingested or abandoned.
        assert loop.batches_ingested + loop.batches_abandoned == len(batches)

    def test_backoff_advances_the_sim_clock_only(self):
        source = FlakySource(
            iter(_batches(np.ones((8, 2)))), failure_rate=0.5, seed=9
        )
        clock = SimClock(2.0)
        loop = ResilientIngestLoop(
            source, lambda b: None, clock=clock, seed=9
        )
        loop.run()
        assert clock.tick == loop.backoff_ticks


class TestMaskedRunningMoments:
    def test_matches_numpy_on_a_holey_matrix(self):
        rng = stream(0, "masked-moments")
        values = rng.normal(100.0, 10.0, size=(200, 5))
        valid = rng.random((200, 5)) > 0.3
        mom = MaskedRunningMoments(5)
        for row, mask in zip(values, valid):
            mom.push_row(row, mask)
        masked = np.where(valid, values, np.nan)
        np.testing.assert_array_equal(mom.count, valid.sum(axis=0))
        np.testing.assert_allclose(
            mom.mean, np.nanmean(masked, axis=0), rtol=1e-12
        )
        np.testing.assert_allclose(
            mom.std, np.nanstd(masked, axis=0, ddof=1), rtol=1e-9
        )

    def test_push_value_equals_single_column_row(self):
        a = MaskedRunningMoments(3)
        b = MaskedRunningMoments(3)
        for k, v in enumerate([10.0, 12.0, 9.5]):
            a.push_value(1, v)
            row = np.zeros(3)
            row[1] = v
            valid = np.array([False, True, False])
            b.push_row(row, valid)
        np.testing.assert_array_equal(a.mean, b.mean)
        np.testing.assert_array_equal(a.count, b.count)

    def test_empty_components_are_nan(self):
        mom = MaskedRunningMoments(2)
        mom.push_value(0, 5.0)
        assert np.isnan(mom.mean[1])
        assert np.isnan(mom.variance[0])  # needs 2 samples

    def test_validation(self):
        with pytest.raises(ValueError, match="n_components"):
            MaskedRunningMoments(0)
        mom = MaskedRunningMoments(2)
        with pytest.raises(ValueError, match="shape"):
            mom.push_row(np.zeros(3), np.ones(3, dtype=bool))


def _feed(pipe, watts_rows, per=4):
    for batch in _batches(watts_rows, per=per):
        pipe.observe(batch)
    return pipe


class TestRecoveryPipelineDetection:
    def test_clean_stream_has_nothing_to_report(self):
        rows = 100.0 + np.arange(40)[:, None] * [0.1, 0.2, 0.3]
        pipe = _feed(RecoveryPipeline(), rows)
        rep = pipe.finalize(expected_ticks=40)
        assert rep.samples_missing == 0
        assert rep.samples_flagged == 0
        assert rep.samples_repaired == 0
        assert rep.effective_coverage == 1.0
        assert rep.effective_level == rep.original_level

    def test_stuck_run_detected_exactly(self):
        rows = 100.0 + np.arange(20)[:, None] * [0.1, 0.2]
        rows[5:9, 0] = rows[4, 0]  # meter latches for 4 ticks
        pipe = _feed(RecoveryPipeline(), rows)
        assert pipe.samples_stuck == 4
        assert pipe.samples_spiked == 0

    def test_spike_detected_and_isolated(self):
        rows = 100.0 + np.arange(20)[:, None] * [0.1, 0.2]
        rows[7, 1] *= 8.0
        pipe = _feed(RecoveryPipeline(spike_ratio=4.0), rows)
        assert pipe.samples_spiked == 1
        assert pipe.samples_stuck == 0

    def test_missing_counted_per_cell(self):
        rows = 100.0 + np.arange(20)[:, None] * [0.1, 0.2]
        rows[3:6, 0] = np.nan
        pipe = _feed(RecoveryPipeline(), rows)
        assert pipe.samples_missing == 3


class TestGapPolicies:
    def _gap_rows(self):
        rows = np.zeros((4, 2))
        rows[:, 0] = [100.0, np.nan, np.nan, 130.0]
        rows[:, 1] = [50.0, 50.5, 51.0, 51.5]  # healthy companion
        return rows

    def test_hold_repeats_last_trusted(self):
        pipe = _feed(RecoveryPipeline(gap_policy="hold"), self._gap_rows())
        rep = pipe.finalize(expected_ticks=4)
        assert rep.samples_held == 2
        assert rep.samples_interpolated == rep.samples_excluded == 0
        # Node 0's mean over (100, 100, 100, 130).
        assert pipe._moments.mean[0] == pytest.approx(107.5)

    def test_interpolate_fills_linearly_on_close(self):
        pipe = _feed(
            RecoveryPipeline(gap_policy="interpolate"), self._gap_rows()
        )
        rep = pipe.finalize(expected_ticks=4)
        assert rep.samples_interpolated == 2
        assert rep.samples_held == 0
        # Node 0's mean over (100, 110, 120, 130).
        assert pipe._moments.mean[0] == pytest.approx(115.0)

    def test_interpolate_tail_gap_falls_back_to_hold(self):
        rows = np.zeros((4, 2))
        rows[:, 0] = [100.0, 120.0, np.nan, np.nan]  # gap never closes
        rows[:, 1] = [50.0, 50.5, 51.0, 51.5]
        pipe = _feed(RecoveryPipeline(gap_policy="interpolate"), rows)
        rep = pipe.finalize(expected_ticks=4)
        assert rep.samples_held == 2
        assert rep.samples_interpolated == 0
        assert pipe._moments.mean[0] == pytest.approx(115.0)

    def test_exclude_excises_the_cells(self):
        pipe = _feed(RecoveryPipeline(gap_policy="exclude"), self._gap_rows())
        rep = pipe.finalize(expected_ticks=4)
        assert rep.samples_excluded == 2
        assert pipe._moments.count[0] == 2
        assert pipe._moments.mean[0] == pytest.approx(115.0)

    def test_repair_identity_holds_for_every_policy(self):
        rows = 100.0 + np.arange(60)[:, None] * [0.1, 0.2, 0.3]
        rows[10:14, 0] = np.nan
        rows[20:22, 1] = rows[19, 1]
        rows[30, 2] *= 9.0
        for policy in GAP_POLICIES:
            pipe = _feed(RecoveryPipeline(gap_policy=policy), rows.copy())
            rep = pipe.finalize(expected_ticks=60)
            assert rep.samples_repaired == (
                rep.samples_missing + rep.samples_flagged
            ), policy


class TestQuarantineAndBreaker:
    def test_sustained_outage_quarantines_the_node(self):
        rows = 100.0 + np.arange(50)[:, None] * [0.1, 0.2]
        rows[10:, 0] = np.nan  # node 0 goes dark for good
        pipe = _feed(
            RecoveryPipeline(quarantine_after=5, original_level=3), rows
        )
        rep = pipe.finalize(expected_ticks=50)
        assert rep.nodes_quarantined == (0,)
        assert rep.effective_level < 3  # breaker downgrades, never fails
        assert rep.downgraded()

    def test_quarantine_is_sticky(self):
        rows = 100.0 + np.arange(50)[:, None] * [0.1, 0.2]
        rows[10:30, 0] = np.nan  # long outage, then recovery
        pipe = _feed(RecoveryPipeline(quarantine_after=5), rows)
        rep = pipe.finalize(expected_ticks=50)
        assert rep.nodes_quarantined == (0,)

    def test_short_gap_stays_below_the_threshold(self):
        rows = 100.0 + np.arange(50)[:, None] * [0.1, 0.2]
        rows[10:14, 0] = np.nan
        pipe = _feed(RecoveryPipeline(quarantine_after=5), rows)
        assert pipe.finalize(expected_ticks=50).nodes_quarantined == ()


class TestLiveFeedAndValidation:
    def test_delivered_feed_is_finite_under_hold(self):
        rows = 100.0 + np.arange(40)[:, None] * [0.1, 0.2]
        rows[5:9, 0] = np.nan
        delivered = []
        pipe = RecoveryPipeline(gap_policy="hold", deliver=delivered.append)
        _feed(pipe, rows)
        watts = np.vstack([b.watts for b in delivered])
        assert np.isfinite(watts).all()
        assert watts.shape[0] == 40

    def test_node_set_change_rejected(self):
        pipe = RecoveryPipeline()
        batches = _batches(np.ones((8, 3)))
        pipe.observe(batches[0])
        bad = SampleBatch(
            times=batches[1].times,
            watts=batches[1].watts[:, :2],
            node_ids=batches[1].node_ids[:2],
        )
        with pytest.raises(ValueError, match="node_ids"):
            pipe.observe(bad)

    def test_finalize_guards(self):
        pipe = RecoveryPipeline()
        with pytest.raises(ValueError, match="no batches"):
            pipe.finalize(expected_ticks=10)
        _feed(pipe, np.ones((8, 2)) + np.arange(8)[:, None])
        with pytest.raises(ValueError, match="expected_ticks"):
            pipe.finalize(expected_ticks=4)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="gap_policy"):
            RecoveryPipeline(gap_policy="zero-fill")
        with pytest.raises(ValueError, match="spike_ratio"):
            RecoveryPipeline(spike_ratio=1.0)
        with pytest.raises(ValueError, match="quarantine_after"):
            RecoveryPipeline(quarantine_after=0)
