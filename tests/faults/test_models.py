"""Tests for repro.faults.models: determinism, disjointness, exactness."""

import numpy as np
import pytest

from repro.faults.models import (
    BurstDropout,
    ClockDrift,
    ClockJitter,
    FaultPlan,
    NodeLoss,
    SampleDropout,
    SpikeGlitch,
    StuckAtLastValue,
    TruncatedTail,
    inject_run,
)


def _everything_plan(seed=77) -> FaultPlan:
    return FaultPlan.canonical(
        [
            SampleDropout(rate=0.05),
            BurstDropout(rate=0.004),
            StuckAtLastValue(rate=0.01),
            SpikeGlitch(rate=0.01),
            ClockJitter(sd_s=0.05),
            ClockDrift(drift_frac=1e-4),
            NodeLoss(count=1, at_frac=0.5),
            TruncatedTail(frac=0.05),
        ],
        seed,
    )


class TestDeterminism:
    def test_same_plan_same_input_is_bit_identical(self, matrix):
        times, watts = matrix
        plan = _everything_plan()
        a = plan.apply(times, watts)
        b = plan.apply(times, watts)
        np.testing.assert_array_equal(a.times, b.times)
        np.testing.assert_array_equal(a.watts, b.watts)
        assert a.ledger == b.ledger

    def test_appending_a_model_never_perturbs_earlier_draws(self, matrix):
        times, watts = matrix
        base = FaultPlan(models=(SampleDropout(rate=0.1),), seed=3)
        extended = FaultPlan(
            models=(SampleDropout(rate=0.1), NodeLoss(count=1)), seed=3
        )
        a = base.apply(times, watts)
        b = extended.apply(times, watts)
        np.testing.assert_array_equal(a.missing_mask, b.missing_mask & a.missing_mask)
        assert b.ledger.samples_dropped == a.ledger.samples_dropped

    def test_input_matrix_is_never_mutated(self, matrix):
        times, watts = matrix
        before = watts.copy()
        _everything_plan().apply(times, watts)
        np.testing.assert_array_equal(watts, before)


class TestDisjointnessAndLedger:
    def test_masks_are_mutually_exclusive(self, matrix):
        times, watts = matrix
        inj = _everything_plan().apply(times, watts)
        overlap = (
            (inj.missing_mask & inj.stuck_mask)
            | (inj.missing_mask & inj.spike_mask)
            | (inj.stuck_mask & inj.spike_mask)
        )
        assert not overlap.any()

    def test_ledger_counts_equal_mask_sums(self, matrix):
        times, watts = matrix
        inj = _everything_plan().apply(times, watts)
        led = inj.ledger
        assert inj.missing_mask.sum() == led.samples_missing_at_arrival
        assert inj.stuck_mask.sum() == led.samples_stuck
        assert inj.spike_mask.sum() == led.samples_spiked
        assert led.samples_corrupted == led.samples_stuck + led.samples_spiked
        assert led.samples_planned == watts.size
        assert led.samples_truncated == led.ticks_truncated * led.n_nodes
        assert inj.n_ticks == led.n_ticks_planned - led.ticks_truncated

    def test_nan_cells_are_exactly_the_missing_mask(self, matrix):
        times, watts = matrix
        inj = _everything_plan().apply(times, watts)
        np.testing.assert_array_equal(np.isnan(inj.watts), inj.missing_mask)


class TestIndividualModels:
    def test_dropout_rate_roughly_honoured(self, matrix):
        times, watts = matrix
        inj = FaultPlan((SampleDropout(rate=0.1),), seed=1).apply(times, watts)
        frac = inj.ledger.samples_dropped / watts.size
        assert 0.05 < frac < 0.15

    def test_stuck_cells_repeat_the_anchor_reading(self, matrix):
        times, watts = matrix
        inj = FaultPlan((StuckAtLastValue(rate=0.02),), seed=2).apply(
            times, watts
        )
        assert inj.ledger.samples_stuck > 0
        for t, j in np.argwhere(inj.stuck_mask):
            run_start = t
            while inj.stuck_mask[run_start - 1, j]:
                run_start -= 1
            assert inj.watts[t, j] == watts[run_start - 1, j]

    def test_spikes_scale_the_original_reading(self, matrix):
        times, watts = matrix
        inj = FaultPlan((SpikeGlitch(rate=0.02, factor=8.0),), seed=2).apply(
            times, watts
        )
        assert inj.ledger.samples_spiked > 0
        for t, j in np.argwhere(inj.spike_mask):
            assert inj.watts[t, j] == pytest.approx(8.0 * watts[t, j])
            assert not inj.spike_mask[t - 1, j]  # isolated

    def test_node_loss_blanks_the_column_tail(self, matrix):
        times, watts = matrix
        inj = FaultPlan(
            (NodeLoss(count=2, at_frac=0.5),), seed=9
        ).apply(times, watts)
        assert len(inj.ledger.nodes_lost) == 2
        fail_tick = watts.shape[0] // 2
        for node in inj.ledger.nodes_lost:
            j = int(np.flatnonzero(inj.node_ids == node)[0])
            assert np.isnan(inj.watts[fail_tick:, j]).all()
            assert np.isfinite(inj.watts[:fail_tick, j]).all()

    def test_truncation_shortens_everything_consistently(self, matrix):
        times, watts = matrix
        inj = FaultPlan((TruncatedTail(frac=0.25),), seed=0).apply(
            times, watts
        )
        keep = watts.shape[0] - inj.ledger.ticks_truncated
        assert inj.times.shape == (keep,)
        assert inj.watts.shape[0] == keep
        assert inj.missing_mask.shape[0] == keep

    def test_jitter_preserves_time_order(self, matrix):
        times, watts = matrix
        inj = FaultPlan((ClockJitter(sd_s=10.0),), seed=4).apply(times, watts)
        assert (np.diff(inj.times) > 0).all()
        assert inj.ledger.jittered_ticks == times.size
        assert inj.ledger.max_jitter_s > 0

    def test_drift_stretches_from_the_first_tick(self, matrix):
        times, watts = matrix
        inj = FaultPlan((ClockDrift(drift_frac=0.01),), seed=4).apply(
            times, watts
        )
        assert inj.times[0] == times[0]
        assert inj.times[-1] == pytest.approx(
            times[0] + (times[-1] - times[0]) * 1.01
        )


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError, match="rate"):
            SampleDropout(rate=1.0)
        with pytest.raises(ValueError, match="rate"):
            BurstDropout(rate=-0.1)
        with pytest.raises(ValueError, match="factor"):
            SpikeGlitch(rate=0.1, factor=1.0)
        with pytest.raises(ValueError, match="frac"):
            TruncatedTail(frac=1.0)
        with pytest.raises(ValueError, match="drift"):
            ClockDrift(drift_frac=0.6)

    def test_input_must_be_clean_and_2d(self, matrix):
        times, watts = matrix
        plan = FaultPlan((SampleDropout(rate=0.1),), seed=0)
        with pytest.raises(ValueError, match="2-D"):
            plan.apply(times, watts[:, 0])
        dirty = watts.copy()
        dirty[0, 0] = np.nan
        with pytest.raises(ValueError, match="fault-free"):
            plan.apply(times, dirty)
        with pytest.raises(ValueError, match="length"):
            plan.apply(times[:-1], watts)

    def test_cannot_lose_more_nodes_than_exist(self, matrix):
        times, watts = matrix
        plan = FaultPlan((NodeLoss(count=99),), seed=0)
        with pytest.raises(ValueError, match="cannot lose"):
            plan.apply(times, watts)


class TestPlanAndBatches:
    def test_canonical_order_puts_corruption_before_dropout(self):
        plan = _everything_plan()
        kinds = [type(m) for m in plan.models]
        assert kinds.index(StuckAtLastValue) < kinds.index(SampleDropout)
        assert kinds.index(SpikeGlitch) < kinds.index(BurstDropout)
        assert kinds.index(TruncatedTail) == 0

    def test_batches_reassemble_the_matrix(self, matrix):
        times, watts = matrix
        inj = _everything_plan().apply(times, watts)
        for per in (1, 7, 60, 10_000):
            chunks = list(inj.batches(per))
            np.testing.assert_array_equal(
                np.concatenate([c.times for c in chunks]), inj.times
            )
            np.testing.assert_array_equal(
                np.vstack([c.watts for c in chunks]), inj.watts
            )
        with pytest.raises(ValueError, match="ticks_per_batch"):
            next(inj.batches(0))


class TestInjectRun:
    def test_core_window_and_node_subset(self, small_run):
        idx = np.arange(8)
        inj = inject_run(
            small_run,
            FaultPlan((SampleDropout(rate=0.05),), seed=11),
            node_indices=idx,
        )
        t0_s, t1_s = small_run.core_window
        times, watts = small_run.node_power_matrix(t0_s, t1_s, idx)
        assert inj.n_nodes == 8
        assert inj.ledger.samples_planned == watts.size
        np.testing.assert_array_equal(inj.node_ids, idx)
        clean = ~inj.missing_mask
        np.testing.assert_array_equal(inj.watts[clean], watts[clean])
