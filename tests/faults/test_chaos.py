"""End-to-end chaos harness tests: inject, recover, reconcile, bound."""

import numpy as np
import pytest

from repro.faults.chaos import ChaosScenario, chaos_sweep, run_chaos
from repro.faults.recovery import GAP_POLICIES, RetryPolicy

ACCEPTANCE = ChaosScenario(
    name="acceptance", dropout_rate=0.05, node_loss=1
)


@pytest.fixture(scope="module")
def run():
    # Built from scratch (not the function-scoped conftest fixtures) so
    # one simulated run can be shared across this module's chaos trials.
    from repro.cluster.components import CpuModel, DramModel, FanModel, GpuModel
    from repro.cluster.node import NodeConfig
    from repro.cluster.system import SystemModel
    from repro.cluster.thermal import FanController
    from repro.cluster.variability import ManufacturingVariation
    from repro.traces.synth import simulate_run
    from repro.workloads.hpl import HplWorkload

    config = NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
        n_cpus=2,
        gpu=GpuModel(idle_watts=18.0, peak_watts=220.0),
        n_gpus=4,
        dram=DramModel.for_capacity(128.0),
        fan=FanModel(max_watts=150.0),
        other_watts=30.0,
    )
    system = SystemModel(
        "test-gpu",
        32,
        config,
        variation=ManufacturingVariation(sigma=0.02),
        fan_controller=FanController(
            fan_model=config.fan, reference_watts=1000.0
        ),
        seed=78,
    )
    workload = HplWorkload.gpu_in_core(1800.0, setup_s=60.0, teardown_s=30.0)
    return simulate_run(system, workload, dt=2.0, seed=5)


@pytest.fixture(scope="module")
def acceptance_outcome(run):
    return run_chaos(run, ACCEPTANCE, gap_policy="hold", seed=17)


class TestAcceptanceScenario:
    def test_reconciles_exactly_and_stays_in_bounds(self, acceptance_outcome):
        out = acceptance_outcome
        assert out.reconciled, out.reconciliation
        assert out.mean_within_bound
        assert out.cv_within_bound
        assert out.ok()

    def test_lost_node_is_quarantined(self, acceptance_outcome):
        out = acceptance_outcome
        assert out.ledger.nodes_lost != ()
        assert set(out.ledger.nodes_lost) <= set(
            out.report.nodes_quarantined
        )

    def test_label_reflects_the_degradation(self, acceptance_outcome):
        rep = acceptance_outcome.report
        assert rep.samples_missing > 0
        assert rep.effective_coverage < 1.0
        assert rep.downgraded()

    def test_every_gap_policy_reconciles(self, run):
        for policy in GAP_POLICIES:
            out = run_chaos(run, ACCEPTANCE, gap_policy=policy, seed=17)
            assert out.ok(), (policy, out.reconciliation)


class TestDeterminismAndInvariance:
    def test_bit_identical_replay(self, run, acceptance_outcome):
        again = run_chaos(run, ACCEPTANCE, gap_policy="hold", seed=17)
        assert again.to_dict() == acceptance_outcome.to_dict()

    def test_batch_size_never_changes_the_report(self, run):
        a = run_chaos(
            run, ACCEPTANCE, gap_policy="hold", seed=17, ticks_per_batch=60
        )
        b = run_chaos(
            run, ACCEPTANCE, gap_policy="hold", seed=17, ticks_per_batch=17
        )
        assert a.report == b.report

    def test_seed_changes_the_faults(self, run, acceptance_outcome):
        other = run_chaos(run, ACCEPTANCE, gap_policy="hold", seed=18)
        assert (
            other.report.samples_missing
            != acceptance_outcome.report.samples_missing
            or other.ledger.nodes_lost != acceptance_outcome.ledger.nodes_lost
        )


class TestCleanAndFlaky:
    def test_clean_scenario_is_a_perfect_label(self, run):
        out = run_chaos(
            run,
            ChaosScenario(name="clean"),
            seed=17,
            original_level=3,
        )
        rep = out.report
        assert rep.effective_coverage == 1.0
        assert rep.effective_level == rep.original_level == 3
        assert rep.samples_unusable == 0
        # Welford vs direct numpy summation: last-bit differences only.
        assert out.rel_err_fleet_mean == pytest.approx(0.0, abs=1e-12)
        assert out.rel_err_node_cv == pytest.approx(0.0, abs=1e-12)
        assert out.ok()

    def test_flaky_delivery_reconciles_through_abandonment(self, run):
        out = run_chaos(
            run,
            ChaosScenario(
                name="flaky",
                dropout_rate=0.05,
                delivery_failure_rate=0.55,
            ),
            gap_policy="exclude",
            seed=17,
            retry_policy=RetryPolicy(max_retries=2),
        )
        assert out.retries > 0
        assert out.batches_abandoned > 0
        assert out.report.samples_never_arrived > 0
        assert out.reconciled, out.reconciliation


class TestSweep:
    def test_escalation_degrades_monotonically(self, run):
        scenarios = [
            ChaosScenario(name=f"d{r:g}", dropout_rate=r)
            for r in (0.0, 0.10, 0.30)
        ]
        outs = chaos_sweep(
            run, scenarios, gap_policy="hold", seed=17, original_level=3
        )
        coverages = [o.report.effective_coverage for o in outs]
        levels = [o.report.effective_level for o in outs]
        assert coverages == sorted(coverages, reverse=True)
        assert levels == sorted(levels, reverse=True)
        assert all(o.reconciled for o in outs)

    def test_everything_at_once_still_reconciles(self, run):
        out = run_chaos(
            run,
            ChaosScenario(
                name="everything",
                dropout_rate=0.03,
                burst_rate=0.002,
                stuck_rate=0.002,
                spike_rate=0.002,
                jitter_sd_s=0.05,
                drift_frac=1e-4,
                node_loss=2,
                truncate_frac=0.03,
            ),
            gap_policy="interpolate",
            seed=23,
        )
        led = out.ledger
        assert led.samples_stuck > 0
        assert led.samples_spiked > 0
        assert led.ticks_truncated > 0
        assert len(led.nodes_lost) == 2
        assert out.ok(), (out.reconciliation, out.lines())
