"""Wire fault model tests: determinism, disjointness, exact ledgers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.wire import (
    FrameCorruption,
    FrameDrop,
    WireFaultPlan,
)
from repro.stream.ingest import SampleBatch
from repro.wire.framing import HEADER_LEN
from repro.wire.session import WireReader, WireWriter


@pytest.fixture(scope="module")
def frames():
    rng = np.random.default_rng(7)
    writer = WireWriter("raw64")
    n_ticks, n_nodes = 4, 6
    return writer.write_all(
        [
            SampleBatch(
                times=np.arange(i * n_ticks, (i + 1) * n_ticks) * 2.0,
                watts=300.0 + rng.standard_normal((n_ticks, n_nodes)),
                node_ids=np.arange(n_nodes, dtype=np.int64),
            )
            for i in range(40)
        ]
    )


class TestModels:
    def test_rates_are_validated(self):
        with pytest.raises(ValueError, match="drop rate"):
            FrameDrop(rate=1.5)
        with pytest.raises(ValueError, match="corruption rate"):
            FrameCorruption(rate=-0.1)
        with pytest.raises(ValueError, match="flips"):
            FrameCorruption(rate=0.1, flips=0)

    def test_labels_distinguish_tagged_instances(self):
        assert FrameDrop(rate=0.1).label == "FrameDrop"
        assert FrameDrop(rate=0.1, tag="a").label == "FrameDrop:a"


class TestPlan:
    def test_canonical_orders_corruption_before_drops(self):
        plan = WireFaultPlan.canonical(
            [FrameDrop(rate=0.1), FrameCorruption(rate=0.1)], seed=1
        )
        assert [type(m).__name__ for m in plan.models] == [
            "FrameCorruption",
            "FrameDrop",
        ]

    def test_empty_frame_sequence_is_refused(self, frames):
        plan = WireFaultPlan.canonical([FrameDrop(rate=0.5)], seed=1)
        with pytest.raises(ValueError, match="empty"):
            plan.apply([])

    def test_non_consecutive_seqs_are_refused(self, frames):
        plan = WireFaultPlan.canonical([FrameDrop(rate=0.5)], seed=1)
        with pytest.raises(ValueError, match="consecutive"):
            plan.apply([frames[0], frames[2]])

    def test_apply_is_bit_deterministic(self, frames):
        plan = WireFaultPlan.canonical(
            [FrameCorruption(rate=0.3), FrameDrop(rate=0.3)], seed=11
        )
        a, b = plan.apply(frames), plan.apply(frames)
        assert a.chunks == b.chunks
        assert a.ledger == b.ledger

    def test_disjointness_drop_and_corruption_never_overlap(self, frames):
        plan = WireFaultPlan.canonical(
            [FrameCorruption(rate=0.6), FrameDrop(rate=0.6)], seed=23
        )
        ledger = plan.apply(frames).ledger
        assert not set(ledger.dropped_seqs) & set(ledger.corrupted_seqs)
        assert (
            ledger.frames_dropped + ledger.frames_corrupted
            == len(ledger.dropped_seqs) + len(ledger.corrupted_seqs)
        )

    def test_ledger_arithmetic(self, frames):
        plan = WireFaultPlan.canonical(
            [FrameCorruption(rate=0.25), FrameDrop(rate=0.25)], seed=5
        )
        delivery = plan.apply(frames)
        ledger = delivery.ledger
        assert ledger.frames_sent == len(frames)
        assert (
            ledger.frames_delivered
            == len(frames) - ledger.frames_lost
        )
        assert ledger.samples_lost == ledger.ticks_lost * ledger.n_nodes
        # Dropped frames are absent, corrupted frames still ship bytes.
        assert len(delivery.chunks) == len(frames) - ledger.frames_dropped
        assert len(delivery.data) == sum(len(c) for c in delivery.chunks)

    def test_corruption_leaves_the_header_intact(self, frames):
        plan = WireFaultPlan.canonical([FrameCorruption(rate=1.0)], seed=9)
        delivery = plan.apply(frames)
        assert delivery.ledger.frames_corrupted == len(frames)
        for chunk, frame in zip(delivery.chunks, frames):
            assert chunk[:HEADER_LEN] == frame.data[:HEADER_LEN]
            assert chunk != frame.data

    def test_corrupted_frames_fail_crc_at_the_reader(self, frames):
        plan = WireFaultPlan.canonical([FrameCorruption(rate=1.0)], seed=9)
        delivery = plan.apply(frames)
        reader = WireReader(dt_s=2.0)
        reader.feed(delivery.data)
        reader.close()
        assert reader.crc_failures == len(frames)
        assert reader.frames_ok == 0

    def test_reader_counters_reconcile_against_the_ledger(self, frames):
        plan = WireFaultPlan.canonical(
            [FrameCorruption(rate=0.2), FrameDrop(rate=0.2)], seed=31
        )
        delivery = plan.apply(frames)
        reader = WireReader(dt_s=2.0)
        batches = reader.feed(delivery.data)
        batches.extend(reader.close())
        ledger = delivery.ledger
        assert reader.crc_failures == ledger.frames_corrupted
        assert reader.frames_ok == ledger.frames_delivered
        assert reader.garbage_bytes == 0
        # Gap rows delivered + trailing losses = everything the ledger
        # says was lost.
        nan_ticks = sum(
            int(np.isnan(b.watts).all(axis=1).sum()) for b in batches
        )
        trailing = ledger.ticks_lost - nan_ticks
        assert trailing >= 0
        assert nan_ticks + trailing == ledger.ticks_lost

    def test_zero_rates_are_a_clean_wire(self, frames):
        plan = WireFaultPlan.canonical([], seed=3)
        delivery = plan.apply(frames)
        assert delivery.ledger.frames_lost == 0
        assert delivery.data == b"".join(f.data for f in frames)
