"""Shared fixtures for the fault-injection subsystem tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.synth import SimulatedRun, simulate_run


@pytest.fixture()
def small_run(gpu_system, gpu_hpl) -> SimulatedRun:
    """A fast 32-node GPU HPL run (1800 s core at 2 s ticks)."""
    return simulate_run(gpu_system, gpu_hpl, dt=2.0, seed=5)


@pytest.fixture()
def matrix() -> tuple[np.ndarray, np.ndarray]:
    """A small, fully clean matrix with no exact repeats anywhere.

    Every cell is unique, so a stuck fault is the *only* way two
    consecutive readings can be equal — the detector's premise.
    """
    n_ticks, n_nodes = 120, 6
    times = np.arange(n_ticks) * 2.0
    t = np.arange(n_ticks)[:, None]
    j = np.arange(n_nodes)[None, :]
    watts = 200.0 + 7.0 * j + 0.013 * t + 0.0001 * t * j
    return times, watts
