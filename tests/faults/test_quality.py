"""Tests for repro.faults.quality: the provenance label and its bounds."""

import math

import pytest

from repro.faults.quality import COMPLIANCE_LEVELS, QualityReport


def _report(**overrides) -> QualityReport:
    """A plausible mildly degraded report; override what the test needs."""
    base = dict(
        samples_expected=10_000,
        samples_arrived=9_800,
        samples_missing=300,
        samples_never_arrived=200,
        samples_stuck=40,
        samples_spiked=10,
        samples_held=330,
        samples_interpolated=0,
        samples_excluded=20,
        nodes_quarantined=(7,),
        batches_retried=3,
        batches_abandoned=1,
        effective_coverage=0.93,
        original_level=3,
        effective_level=2,
        fleet_mean_w=1200.0,
        node_cv=0.04,
        sigma_node_w=48.0,
        sigma_tick_w=60.0,
        n_nodes_used=31,
    )
    base.update(overrides)
    return QualityReport(**base)


class TestAccountingIdentities:
    def test_derived_counts(self):
        rep = _report()
        assert rep.samples_flagged == 50
        assert rep.samples_repaired == 350
        assert rep.samples_unusable == 300 + 200 + 50
        assert rep.downgraded()

    def test_not_downgraded_when_levels_match(self):
        assert not _report(effective_level=3).downgraded()

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            _report(samples_expected=-1)
        with pytest.raises(ValueError, match="more samples"):
            _report(samples_arrived=10_001)
        with pytest.raises(ValueError, match="coverage"):
            _report(effective_coverage=1.5)
        with pytest.raises(ValueError, match="level"):
            _report(effective_level=5)
        assert COMPLIANCE_LEVELS == (3, 2, 1, 0)


class TestErrorBounds:
    def test_pristine_run_has_zero_bounds(self):
        rep = _report(
            samples_arrived=10_000,
            samples_missing=0,
            samples_never_arrived=0,
            samples_stuck=0,
            samples_spiked=0,
            samples_held=0,
            samples_excluded=0,
            nodes_quarantined=(),
            batches_retried=0,
            batches_abandoned=0,
            effective_coverage=1.0,
            effective_level=3,
            n_nodes_used=32,
        )
        assert rep.error_bound_fleet_mean() == 0.0
        assert rep.error_bound_node_cv() == 0.0

    def test_bounds_grow_with_degradation(self):
        mild = _report()
        worse = _report(
            samples_missing=2000,
            samples_never_arrived=1000,
            nodes_quarantined=(7, 9, 11),
        )
        assert worse.error_bound_fleet_mean() > mild.error_bound_fleet_mean()
        assert worse.error_bound_node_cv() > mild.error_bound_node_cv()

    def test_degenerate_runs_state_no_bound(self):
        assert _report(n_nodes_used=1).error_bound_node_cv() == math.inf
        assert _report(fleet_mean_w=0.0).error_bound_fleet_mean() == math.inf
        total_loss = _report(
            samples_missing=10_000,
            samples_held=0,
            samples_excluded=0,
            samples_stuck=0,
            samples_spiked=0,
        )
        assert total_loss.error_bound_fleet_mean() == math.inf


class TestRendering:
    def test_to_dict_carries_the_bounds(self):
        doc = _report().to_dict()
        assert doc["samples_expected"] == 10_000
        assert doc["nodes_quarantined"] == [7]
        assert doc["error_bound_fleet_mean"] == pytest.approx(
            _report().error_bound_fleet_mean()
        )
        assert "error_bound_node_cv" in doc

    def test_lines_mention_quarantine_and_downgrade(self):
        text = "\n".join(_report().lines())
        assert "quarantined nodes   7" in text
        assert "L3 -> L2" in text
        assert "stated error bound" in text

    def test_degenerate_bound_is_labelled_unavailable(self):
        text = "\n".join(_report(fleet_mean_w=0.0).lines())
        assert "unavailable" in text


class TestCorrelatedProvenance:
    def test_default_report_states_the_independence_assumption(self):
        rep = _report()
        assert rep.assumes_independence
        assert rep.stated_notes[-1] == QualityReport.INDEPENDENCE_NOTE
        # The computed view must not mutate the raw notes tuple — the
        # wire layer round-trips and compares `.notes` directly.
        assert QualityReport.INDEPENDENCE_NOTE not in rep.notes
        assert rep.to_dict()["notes"][-1] == QualityReport.INDEPENDENCE_NOTE
        assert any(
            "assume independent" in ln for ln in rep.lines()
        )

    def test_correlated_report_drops_the_caveat(self):
        rep = _report(
            correlated_bias_w=12.0,
            correlated_cv_extra=0.005,
            correlated_models=("AliasingMeter",),
        )
        assert not rep.assumes_independence
        assert QualityReport.INDEPENDENCE_NOTE not in rep.stated_notes
        text = "\n".join(rep.lines())
        assert "correlated faults   AliasingMeter" in text

    def test_mean_bound_widens_by_the_exact_bias_term(self):
        base = _report()
        rep = _report(
            correlated_bias_w=12.0, correlated_models=("AliasingMeter",)
        )
        # Observed mean 1200 W carries 12 W of bias; judged against the
        # clean truth of 1188 W the extra relative error is 12/1188.
        assert rep.error_bound_fleet_mean() == pytest.approx(
            base.error_bound_fleet_mean() + 12.0 / 1188.0
        )

    def test_cv_bound_widens_by_spread_and_bias_terms(self):
        base = _report()
        rep = _report(
            correlated_bias_w=12.0,
            correlated_cv_extra=0.01,
            correlated_models=("DeviceSpreadModel",),
        )
        # node_cv 0.04 carries 0.01 of persistent-bias spread and the
        # denominator carries the 12 W common-mode shift.
        expected_extra = 0.01 / (0.04 - 0.01) + 12.0 / 1188.0
        assert rep.error_bound_node_cv() == pytest.approx(
            base.error_bound_node_cv() + expected_extra
        )

    def test_exhausted_budgets_give_infinite_bounds(self):
        models = ("EntropyPowerModel",)
        assert (
            _report(
                correlated_bias_w=1200.0, correlated_models=models
            ).error_bound_fleet_mean()
            == math.inf
        )
        assert (
            _report(
                correlated_cv_extra=0.04, correlated_models=models
            ).error_bound_node_cv()
            == math.inf
        )

    def test_validation_of_correlated_terms(self):
        with pytest.raises(ValueError, match="non-negative"):
            _report(
                correlated_bias_w=-1.0, correlated_models=("AliasingMeter",)
            )
        with pytest.raises(ValueError, match="correlated_models"):
            _report(correlated_bias_w=5.0)
        with pytest.raises(ValueError, match="correlated_models"):
            _report(correlated_cv_extra=0.01)

    def test_to_dict_carries_correlated_fields(self):
        doc = _report(
            correlated_bias_w=3.0,
            correlated_cv_extra=0.002,
            correlated_models=("AliasingMeter", "DeviceSpreadModel"),
        ).to_dict()
        assert doc["correlated_bias_w"] == 3.0
        assert doc["correlated_cv_extra"] == 0.002
        assert doc["correlated_models"] == [
            "AliasingMeter", "DeviceSpreadModel"
        ]
