"""Correlated-excursion detectors: units, streaming, monitor plug-in.

Each detector is judged on synthetic series with known structure: a
duty-cycled hold pattern for :class:`AliasingDetector`, persistent
per-node ratios for :class:`PersistentOffsetDetector`, segment-constant
common-mode offsets for :class:`EntropyDriftDetector`.  The streaming
bundle must be invariant to batch chunking, and the monitor plug-in
must neither change detector-less reports nor survive shard merging.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.detectors import (
    AliasingDetector,
    CorrelatedDetectors,
    EntropyDriftDetector,
    PersistentOffsetDetector,
)
from repro.stream.ingest import SampleBatch
from repro.stream.monitor import ComplianceMonitor


def _held_series(n_ticks: int, period: int, on_ticks: int) -> np.ndarray:
    """Fleet-mean series under a duty-cycled sample-and-hold meter."""
    rng = np.random.default_rng(0)
    fresh = 300.0 + rng.random(n_ticks) * 10.0
    out = fresh.copy()
    last = fresh[0]
    for t in range(n_ticks):
        if t % period < on_ticks:
            last = fresh[t]
        else:
            out[t] = last
    return out


class TestAliasingDetector:
    def test_fires_on_held_series(self):
        series = _held_series(240, period=10, on_ticks=4)
        v = AliasingDetector().verdict(series)
        assert v.suspected
        # 6 held ticks per 10 → 60% repeat pairs, one stale run per
        # period → period estimate near 10.
        assert v.repeat_frac == pytest.approx(0.6, abs=0.05)
        assert v.period_est_ticks == pytest.approx(10.0, abs=1.0)
        assert v.stale_runs >= 20

    def test_quiet_on_fresh_series(self):
        rng = np.random.default_rng(1)
        series = 300.0 + rng.random(500) * 10.0
        v = AliasingDetector().verdict(series)
        assert not v.suspected
        assert v.repeat_frac == 0.0
        assert v.stale_runs == 0
        assert v.bias_w_est == 0.0

    def test_bias_estimate_is_raw_minus_fresh(self):
        # Rising ramp, holds repeating tick 5k+1 over ticks 2..4: per
        # period the delivered mean is (0+1+1+1+1)/5 = 0.8 above the
        # period base while the fresh-only mean is (0+1)/2 = 0.5, so
        # the estimate is exactly +0.3 W.
        n = 200
        ramp = 100.0 + np.arange(n) * 1.0
        out = ramp.copy()
        for t in range(n):
            if t % 5 >= 2:
                out[t] = out[5 * (t // 5) + 1]
        v = AliasingDetector().verdict(out)
        assert v.suspected
        assert v.bias_w_est == pytest.approx(0.3, abs=1e-9)

    def test_nan_tolerant(self):
        series = _held_series(120, period=8, on_ticks=3)
        series[::17] = np.nan
        v = AliasingDetector().verdict(series)
        assert v.suspected

    def test_validation(self):
        with pytest.raises(ValueError, match="repeat_threshold_frac"):
            AliasingDetector(repeat_threshold_frac=0.0)
        with pytest.raises(ValueError, match="max_period_ticks"):
            AliasingDetector(max_period_ticks=1)


class TestPersistentOffsetDetector:
    def test_fires_on_spread_fleet(self):
        rng = np.random.default_rng(2)
        factors = 1.0 + np.array([0.06, -0.05, 0.03, -0.04, 0.0, 0.02])
        ratios = factors[None, :] + rng.normal(0.0, 0.002, (8, 6))
        v = PersistentOffsetDetector().verdict(ratios)
        assert v.suspected
        assert v.persistent_nodes >= 4
        assert v.n_nodes == 6
        assert v.persistent_cv == pytest.approx(
            float((factors + 0.0).std(ddof=1)), abs=0.01
        )

    def test_quiet_on_homogeneous_fleet(self):
        rng = np.random.default_rng(3)
        ratios = 1.0 + rng.normal(0.0, 0.003, (10, 8))
        v = PersistentOffsetDetector().verdict(ratios)
        assert not v.suspected
        assert v.persistent_nodes == 0

    def test_sign_flipping_node_not_persistent(self):
        # Big ratios that alternate sign: offset but not persistent.
        ratios = np.ones((8, 1))
        ratios[::2, 0] = 1.05
        ratios[1::2, 0] = 0.95
        v = PersistentOffsetDetector().verdict(ratios)
        assert v.persistent_nodes == 0

    def test_degenerate_inputs(self):
        v = PersistentOffsetDetector().verdict(np.ones((1, 4)))
        assert not v.suspected and v.persistent_cv == 0.0
        v = PersistentOffsetDetector().verdict(np.empty((0, 0)))
        assert not v.suspected

    def test_validation(self):
        with pytest.raises(ValueError, match="min_offset_frac"):
            PersistentOffsetDetector(min_offset_frac=0.0)
        with pytest.raises(ValueError, match="persist_frac"):
            PersistentOffsetDetector(persist_frac=0.4)
        with pytest.raises(ValueError, match="cv_threshold"):
            PersistentOffsetDetector(cv_threshold=-1.0)


class TestEntropyDriftDetector:
    def _segmented(self, n_segments: int, segment: int, amp: float):
        rng = np.random.default_rng(4)
        offsets = rng.uniform(-amp, amp, n_segments)
        base = 300.0 + rng.random(n_segments * segment) * 0.5
        return base + np.repeat(offsets, segment)

    def test_fires_on_segment_offsets(self):
        series = self._segmented(12, 20, amp=25.0)
        v = EntropyDriftDetector(segment_ticks=20).verdict(series)
        assert v.suspected
        assert v.boundary_jump_w > 3.0 * v.interior_step_w

    def test_quiet_on_flat_series(self):
        rng = np.random.default_rng(5)
        series = 300.0 + rng.random(240) * 0.5
        v = EntropyDriftDetector(segment_ticks=20).verdict(series)
        assert not v.suspected
        assert v.jump_ratio < 3.0

    def test_interior_baseline_ignores_held_zero_steps(self):
        # Stacked aliasing holds flatten most interior steps to exactly
        # zero; the baseline must use only the non-zero ones or every
        # flat series would look like drift.
        series = self._segmented(10, 20, amp=25.0)
        for t in range(series.size):
            if t % 4 >= 2:
                series[t] = series[4 * (t // 4) + 1]
        v = EntropyDriftDetector(segment_ticks=20).verdict(series)
        assert v.interior_step_w > 0.05

    def test_short_series_is_a_non_verdict(self):
        v = EntropyDriftDetector(segment_ticks=20).verdict(np.ones(25))
        assert not v.suspected
        assert v.jump_ratio == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="segment_ticks"):
            EntropyDriftDetector(segment_ticks=1)
        with pytest.raises(ValueError, match="jump_ratio_threshold"):
            EntropyDriftDetector(jump_ratio_threshold=1.0)


def _batches(times, watts, node_ids, chunk):
    for lo in range(0, times.size, chunk):
        hi = min(times.size, lo + chunk)
        yield SampleBatch(
            times=times[lo:hi], watts=watts[lo:hi], node_ids=node_ids
        )


class TestCorrelatedDetectorsStreaming:
    def _fleet(self, n_ticks=180, n_nodes=5):
        rng = np.random.default_rng(6)
        times = np.arange(n_ticks) * 2.0
        watts = 280.0 + rng.random((n_ticks, n_nodes)) * 8.0
        # Persistent spread + held rows: two pathologies at once.
        watts *= (1.0 + np.linspace(-0.05, 0.05, n_nodes))[None, :]
        for t in range(n_ticks):
            if t % 6 >= 3:
                watts[t] = watts[6 * (t // 6) + 2]
        return times, watts, np.arange(n_nodes)

    def test_verdict_invariant_to_chunking(self):
        times, watts, nodes = self._fleet()
        verdicts = []
        for chunk in (1, 7, 60, 180):
            det = CorrelatedDetectors(segment_ticks=30)
            for b in _batches(times, watts, nodes, chunk):
                det.observe(b)
            verdicts.append(det.verdict().to_dict())
        assert all(v == verdicts[0] for v in verdicts[1:])
        assert verdicts[0]["aliasing"]["suspected"]
        assert verdicts[0]["offset"]["suspected"]

    def test_verdict_is_pure(self):
        times, watts, nodes = self._fleet()
        det = CorrelatedDetectors(segment_ticks=30)
        batches = list(_batches(times, watts, nodes, 45))
        for b in batches[:2]:
            det.observe(b)
        mid = det.verdict().to_dict()
        assert det.verdict().to_dict() == mid  # repeatable
        for b in batches[2:]:
            det.observe(b)  # observing can continue after a verdict
        assert det.ticks_seen == times.size

    def test_partial_trailing_segment_counts(self):
        times, watts, nodes = self._fleet(n_ticks=75)
        det = CorrelatedDetectors(segment_ticks=30)
        for b in _batches(times, watts, nodes, 75):
            det.observe(b)
        # 2 full segments + a 15-tick partial → 3 ratio rows judged.
        v = det.verdict()
        assert v.offset.n_nodes == 5

    def test_for_run_validation(self):
        with pytest.raises(ValueError, match="dt_s"):
            CorrelatedDetectors.for_run(dt_s=0.0)

    def test_lines_render(self):
        times, watts, nodes = self._fleet()
        det = CorrelatedDetectors(segment_ticks=30)
        for b in _batches(times, watts, nodes, 60):
            det.observe(b)
        lines = det.verdict().lines()
        assert len(lines) == 3
        assert any("aliasing" in ln for ln in lines)


class TestMonitorPlugIn:
    def _stream(self, n_ticks=120, n_nodes=4):
        rng = np.random.default_rng(7)
        times = np.arange(n_ticks) * 0.5
        watts = 250.0 + rng.random((n_ticks, n_nodes)) * 5.0
        return times, watts, np.arange(n_nodes)

    def test_report_carries_verdict(self):
        times, watts, nodes = self._stream()
        mon = ComplianceMonitor(
            (0.0, 60.0),
            correlated_detectors=CorrelatedDetectors(segment_ticks=20),
        )
        for b in _batches(times, watts, nodes, 30):
            mon.observe(b)
        rep = mon.report()
        assert rep.correlated is not None
        assert rep.correlated["any_suspected"] is False
        assert "correlated" in rep.to_dict()
        assert any("correlated pathology" in ln for ln in rep.lines())

    def test_detectorless_report_is_unchanged(self):
        times, watts, nodes = self._stream()
        mon = ComplianceMonitor((0.0, 60.0))
        for b in _batches(times, watts, nodes, 30):
            mon.observe(b)
        rep = mon.report()
        assert rep.correlated is None
        assert "correlated" not in rep.to_dict()
        assert not any("correlated" in ln for ln in rep.lines())

    def test_rejects_non_detector_object(self):
        with pytest.raises(TypeError, match="observe"):
            ComplianceMonitor(
                (0.0, 60.0), correlated_detectors=object()
            )

    def test_merge_shards_rejects_detector_monitors(self):
        times, watts, nodes = self._stream()
        shards = []
        for lo, hi in ((0, 2), (2, 4)):
            mon = ComplianceMonitor(
                (0.0, 60.0),
                correlated_detectors=CorrelatedDetectors(segment_ticks=20),
            )
            fleet = watts.mean(axis=1)
            mon.observe(
                SampleBatch(
                    times=times, watts=watts[:, lo:hi],
                    node_ids=nodes[lo:hi],
                ),
                fleet_w=fleet,
            )
            shards.append(mon)
        with pytest.raises(ValueError, match="not column-separable"):
            ComplianceMonitor.merge_shards(shards)
