"""Shared fixtures for the test suite.

Heavy objects (calibrated registry systems, simulated runs) are
session-scoped: the registry's ``lru_cache`` already memoises them per
process, and the fixtures make that sharing explicit for tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.components import CpuModel, DramModel, FanModel, GpuModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.thermal import FanController
from repro.cluster.variability import ManufacturingVariation
from repro.traces.powertrace import PowerTrace
from repro.workloads.hpl import HplWorkload


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture()
def cpu_config() -> NodeConfig:
    """A small CPU-only node design."""
    return NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
        n_cpus=2,
        dram=DramModel.for_capacity(32.0),
        fan=FanModel(max_watts=40.0),
        other_watts=20.0,
    )


@pytest.fixture()
def gpu_config() -> NodeConfig:
    """A 4-GPU node design (L-CSC-like)."""
    return NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
        n_cpus=2,
        gpu=GpuModel(idle_watts=18.0, peak_watts=220.0),
        n_gpus=4,
        dram=DramModel.for_capacity(128.0),
        fan=FanModel(max_watts=150.0),
        other_watts=30.0,
    )


@pytest.fixture()
def small_system(cpu_config) -> SystemModel:
    """A 64-node CPU system with typical variability."""
    return SystemModel(
        "test-cpu",
        64,
        cpu_config,
        variation=ManufacturingVariation(sigma=0.02),
        fan_controller=FanController(fan_model=cpu_config.fan,
                                     reference_watts=300.0),
        seed=77,
    )


@pytest.fixture()
def gpu_system(gpu_config) -> SystemModel:
    """A 32-node GPU system."""
    return SystemModel(
        "test-gpu",
        32,
        gpu_config,
        variation=ManufacturingVariation(sigma=0.02),
        fan_controller=FanController(fan_model=gpu_config.fan,
                                     reference_watts=1000.0),
        seed=78,
    )


@pytest.fixture()
def flat_trace() -> PowerTrace:
    """A constant 100 W trace over 1000 s at 1 Hz."""
    return PowerTrace.constant(100.0, 1000.0)


@pytest.fixture()
def ramp_trace() -> PowerTrace:
    """A linear 0→100 W ramp over 100 s."""
    t = np.linspace(0.0, 100.0, 101)
    return PowerTrace(t, t)


@pytest.fixture()
def gpu_hpl() -> HplWorkload:
    """A short in-core GPU HPL workload with a visible tail-off."""
    return HplWorkload.gpu_in_core(1800.0, setup_s=60.0, teardown_s=30.0)


@pytest.fixture()
def cpu_hpl() -> HplWorkload:
    """A flat out-of-core CPU HPL workload."""
    return HplWorkload.cpu_out_of_core(3600.0, setup_s=60.0, teardown_s=30.0)
