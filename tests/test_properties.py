"""Cross-cutting property-based tests (hypothesis).

These encode the invariants DESIGN.md commits to, across module
boundaries: trace algebra, estimator/statistics consistency, campaign
linearity, and methodology monotonicity.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.confidence import mean_confidence_interval
from repro.core.estimators import extrapolate_full_system
from repro.core.methodology import Level, machine_fraction_nodes
from repro.core.sampling import achieved_accuracy, recommend_sample_size
from repro.traces.ops import resample, segment_average, split_fractions
from repro.traces.powertrace import PowerTrace

watt_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=3, max_value=120),
    elements=st.floats(min_value=0.0, max_value=1e5),
)

positive_watt_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=4, max_value=120),
    elements=st.floats(min_value=1.0, max_value=1e5),
)


class TestTraceAlgebra:
    @given(watt_arrays, st.floats(min_value=0.05, max_value=60.0))
    def test_energy_partition(self, watts, interval):
        """Splitting a trace conserves energy exactly."""
        tr = PowerTrace.from_uniform(watts, interval_s=interval)
        parts = split_fractions(tr, [0.25, 0.5, 0.75])
        assert sum(p.energy() for p in parts) == pytest.approx(
            tr.energy(), rel=1e-9, abs=1e-6
        )

    @given(watt_arrays, st.floats(min_value=0.0, max_value=1e4))
    def test_scale_linearity(self, watts, factor):
        """Scaling power scales mean and energy linearly."""
        tr = PowerTrace.from_uniform(watts)
        scaled = tr.scale(factor)
        assert scaled.energy() == pytest.approx(
            tr.energy() * factor, rel=1e-9, abs=1e-6
        )

    @given(watt_arrays)
    def test_shift_invariance(self, watts):
        """Time shifts change no power statistic."""
        tr = PowerTrace.from_uniform(watts)
        sh = tr.shift(1234.5)
        assert sh.mean_power() == pytest.approx(tr.mean_power(), rel=1e-12)
        assert sh.energy() == pytest.approx(tr.energy(), rel=1e-12, abs=1e-9)

    @given(watt_arrays, st.floats(min_value=0.3, max_value=5.0))
    def test_resample_preserves_bounds(self, watts, interval):
        """Linear resampling cannot create new extremes."""
        tr = PowerTrace.from_uniform(watts)
        assume(tr.duration > interval)
        rs = resample(tr, interval)
        assert rs.max_power() <= tr.max_power() + 1e-9
        assert rs.min_power() >= tr.min_power() - 1e-9

    @given(
        watt_arrays,
        st.floats(min_value=0.0, max_value=0.6),
        st.floats(min_value=0.05, max_value=0.4),
    )
    def test_segment_average_convexity(self, watts, f0, length):
        """Any window average lies within the trace's power range."""
        tr = PowerTrace.from_uniform(watts)
        f1 = min(f0 + length, 1.0)
        assume(f1 > f0)
        avg = segment_average(tr, f0, f1)
        assert tr.min_power() - 1e-9 <= avg <= tr.max_power() + 1e-9

    @given(watt_arrays)
    def test_sum_decomposition(self, watts):
        """sum_traces(a, b) has the energy of a plus b."""
        a = PowerTrace.from_uniform(watts)
        b = PowerTrace.from_uniform(watts[::-1].copy())
        s = PowerTrace.sum_traces([a, b])
        assert s.energy() == pytest.approx(
            a.energy() + b.energy(), rel=1e-9, abs=1e-6
        )


class TestEstimatorProperties:
    @given(positive_watt_arrays, st.integers(min_value=1, max_value=50))
    def test_extrapolation_scale_equivariance(self, watts, factor):
        """Extrapolating k·watts gives k times the estimate."""
        base = extrapolate_full_system(watts, watts.size * 2)
        scaled = extrapolate_full_system(watts * factor, watts.size * 2)
        assert scaled.total_watts == pytest.approx(
            base.total_watts * factor, rel=1e-9
        )

    @given(positive_watt_arrays)
    def test_interval_contains_point_estimate(self, watts):
        est = extrapolate_full_system(watts, watts.size * 4)
        assert est.interval.contains(est.total_watts)

    @given(positive_watt_arrays, st.floats(min_value=0.5, max_value=0.99))
    def test_wider_confidence_wider_interval(self, watts, conf):
        assume(np.std(watts) > 0)
        lo = mean_confidence_interval(watts, confidence=conf)
        hi = mean_confidence_interval(watts, confidence=min(conf + 0.009, 0.999))
        assert hi.half_width >= lo.half_width - 1e-12


class TestMethodologyMonotonicity:
    @given(
        st.integers(min_value=1, max_value=100_000),
        st.floats(min_value=10.0, max_value=5000.0),
    )
    def test_levels_monotone_in_required_nodes(self, n_nodes, node_power):
        """Higher levels never require fewer nodes."""
        l1 = machine_fraction_nodes(Level.L1, n_nodes, node_power)
        l2 = machine_fraction_nodes(Level.L2, n_nodes, node_power)
        l3 = machine_fraction_nodes(Level.L3, n_nodes, node_power)
        assert l1 <= l2 <= l3 == n_nodes

    @given(
        st.integers(min_value=16, max_value=100_000),
        st.floats(min_value=0.01, max_value=0.08),
    )
    @settings(max_examples=50)
    def test_plan_then_assess_consistent(self, n_nodes, cv):
        """The accuracy achieved at the planned n (z-method, matching
        the planning quantile) never misses the planned λ."""
        lam = 0.015
        plan = recommend_sample_size(n_nodes, cv, lam)
        assume(plan.n < n_nodes)  # census trivially achieves anything
        got = achieved_accuracy(plan.n, n_nodes, cv, method="z")
        assert got <= lam * 1.0001


class TestStratifiedProperties:
    @given(
        st.lists(st.integers(min_value=2, max_value=200), min_size=1,
                 max_size=6),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=80)
    def test_allocation_sums_and_bounds(self, sizes, extra):
        from repro.core.stratified import allocate_stratified

        total_pop = sum(sizes)
        n_total = min(2 * len(sizes) + extra, total_pop)
        alloc = allocate_stratified(sizes, n_total)
        assert alloc.sum() == n_total
        assert np.all(alloc >= np.minimum(2, sizes))
        assert np.all(alloc <= np.asarray(sizes))

    @given(hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_value=8, max_value=60),
        elements=st.floats(min_value=10.0, max_value=1e4),
    ))
    @settings(max_examples=50)
    def test_single_stratum_matches_plain_mean(self, watts):
        """With one stratum, stratified collapses to the ordinary
        estimator (same mean, same SE up to the shared FPC)."""
        from repro.core.stratified import stratified_estimate

        n_pop = watts.size * 4
        est = stratified_estimate([watts], [n_pop])
        assert est.mean == pytest.approx(float(watts.mean()), rel=1e-12)
        expected_se = np.sqrt(
            watts.var(ddof=1) / watts.size * (1 - watts.size / n_pop)
        )
        assert est.standard_error == pytest.approx(
            float(expected_se), rel=1e-9, abs=1e-12
        )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30)
    def test_census_has_zero_se(self, seed):
        from repro.core.stratified import stratified_estimate

        rng = np.random.default_rng(seed)
        a = rng.normal(100, 5, 12)
        b = rng.normal(300, 9, 20)
        est = stratified_estimate([a, b], [12, 20])
        assert est.standard_error == pytest.approx(0.0, abs=1e-9)
        assert est.mean == pytest.approx(
            float(np.concatenate([a, b]).mean())
        )


class TestCampaignLinearity:
    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.5, max_value=3.0))
    def test_reported_power_scales_with_machine(self, scale, ):
        """A uniformly scaled machine reports uniformly scaled power
        (ideal meter, pinned fans, fixed window/subset)."""
        from repro.cluster.components import CpuModel, DramModel, FanModel
        from repro.cluster.node import NodeConfig
        from repro.cluster.system import SystemModel
        from repro.cluster.thermal import FanPolicy
        from repro.core.windows import MeasurementWindow
        from repro.metering.campaign import MeasurementCampaign
        from repro.metering.meter import MeterSpec
        from repro.traces.synth import simulate_run
        from repro.workloads.base import ConstantWorkload

        # No fans: pinned fan power is a *constant* (it does not scale
        # with power_scale), which would break strict linearity.
        config = NodeConfig(
            cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
            n_cpus=2,
            dram=DramModel.for_capacity(32.0),
            fan=FanModel(max_watts=0.0),
            other_watts=15.0,
        )
        base = SystemModel("p", 16, config, seed=5).with_fan_policy(
            FanPolicy.PINNED
        )
        wl = ConstantWorkload(utilisation=0.9, core_s=300.0)
        window = MeasurementWindow(0.2, 0.6)
        idx = np.arange(4)

        def reported(system):
            run = simulate_run(system, wl, dt=1.0, noise_cv=0.0)
            campaign = MeasurementCampaign(
                run, meter_spec=MeterSpec.ideal()
            )
            return campaign.level1(
                window=window, node_indices=idx
            ).reported_watts

        r_base = reported(base)
        r_scaled = reported(base.with_power_scale(scale))
        assert r_scaled == pytest.approx(r_base * scale, rel=1e-6)
