"""Cross-layer integration tests.

Each test exercises a full pipeline the way a downstream user would:
cluster model → workload → trace → metering → statistics → verdict.
"""

import numpy as np
import pytest

from repro.core import (
    assess_accuracy,
    check_submission,
    extrapolate_full_system,
    recommend_sample_size,
    recommended_measurement_nodes,
)
from repro.core.methodology import Level
from repro.core.windows import MeasurementWindow, full_core_window
from repro.lists.submission import PowerSource, Submission
from repro.lists.validation import validate_submission
from repro.metering.campaign import MeasurementCampaign
from repro.metering.meter import MeterSpec
from repro.metering.subset import random_subset, vid_screened_subset
from repro.traces.synth import simulate_run
from repro.workloads.hpl import HplWorkload


class TestPlanMeasureAssess:
    """The paper's end-to-end workflow: plan a subset size from the
    σ/μ band, measure that many nodes, assess the achieved accuracy."""

    def test_planned_accuracy_achieved(self, small_system, rng):
        fleet = small_system.node_sample(0.95)
        cv = fleet.coefficient_of_variation()

        plan = recommend_sample_size(len(fleet), cv, accuracy=0.01)
        subset = fleet.random_subset(plan.n, rng)
        assessment = assess_accuracy(
            subset.watts, len(fleet), target_lambda=0.02
        )
        # The z-planned λ=1% needs a buffer when assessed with the
        # honest t-interval (Section 4.2's under-coverage point) and
        # against the subset's own cv estimate; 2× is comfortable at
        # the planned n (~10).
        assert plan.n >= 5
        assert assessment.meets_target

    def test_tiny_plans_blow_up_under_t(self, small_system, rng):
        # The paper's t-vs-z caveat at its sharpest: a z-planned n=3
        # subset assessed with the t-quantile (4.30 at 2 dof) reports
        # a dramatically worse accuracy than λ suggested.
        fleet = small_system.node_sample(0.95)
        cv = fleet.coefficient_of_variation()
        plan = recommend_sample_size(len(fleet), cv, accuracy=0.02)
        assert plan.n <= 4
        subset = fleet.random_subset(plan.n, rng)
        a_t = assess_accuracy(subset.watts, len(fleet), method="t")
        a_z = assess_accuracy(subset.watts, len(fleet), method="z")
        assert a_t.achieved_lambda > 1.5 * a_z.achieved_lambda

    def test_estimate_close_to_truth(self, small_system, rng):
        fleet = small_system.node_sample(0.95)
        plan = recommend_sample_size(
            len(fleet), fleet.coefficient_of_variation(), accuracy=0.02
        )
        errors = []
        for _ in range(100):
            subset = fleet.random_subset(plan.n, rng)
            est = extrapolate_full_system(subset.watts, len(fleet))
            errors.append(abs(est.total_watts - fleet.total()) / fleet.total())
        # ~95% of draws within the planned accuracy.
        within = np.mean(np.array(errors) <= 0.02)
        assert within >= 0.88


class TestOldVsNewRules:
    """The paper's central comparison, end to end on a GPU system."""

    @pytest.fixture()
    def run(self, gpu_system):
        wl = HplWorkload.gpu_in_core(1800.0, setup_s=30.0, teardown_s=15.0)
        return simulate_run(gpu_system, wl, dt=2.0, seed=11)

    def test_new_window_rule_kills_timing_error(self, run):
        campaign = MeasurementCampaign(run, meter_spec=MeterSpec.ideal())
        rng = np.random.default_rng(0)
        n_all = np.arange(run.system.n_nodes)

        old_errors = [
            campaign.level1(node_indices=n_all, rng=rng).relative_error
            for _ in range(20)
        ]
        new_error = campaign.level1(
            node_indices=n_all, window=full_core_window()
        ).relative_error
        assert max(old_errors) - min(old_errors) > 0.05
        assert abs(new_error) < 0.01

    def test_new_node_rule_more_nodes_than_old(self, run):
        n_old = 1  # 32/64 rounds up to 1 via the fraction arm
        n_new = recommended_measurement_nodes(run.system.n_nodes)
        assert n_new >= 16 > n_old

    def test_submission_validation_pipeline(self, run):
        campaign = MeasurementCampaign(run, meter_spec=MeterSpec.ideal())
        result = campaign.level1()
        assert check_submission(result.description) == []

        sub = Submission(
            "test-gpu", rmax_gflops=1e5,
            power_watts=result.reported_watts,
            source=PowerSource.MEASURED, level=Level.L1,
            description=result.description,
            true_power_watts=result.true_watts,
        )
        report = validate_submission(sub)
        assert report.complies_with_level
        assert not report.complies_with_new_rules  # old-style window


class TestAdversarialSubmitter:
    """Gaming vectors the paper documents, exercised end to end."""

    @pytest.fixture()
    def run(self, gpu_system):
        wl = HplWorkload.gpu_in_core(1800.0, setup_s=30.0, teardown_s=15.0)
        return simulate_run(gpu_system, wl, dt=2.0, seed=13)

    def test_tail_window_understates_power(self, run):
        campaign = MeasurementCampaign(run, meter_spec=MeterSpec.ideal())
        honest = campaign.level1(window=MeasurementWindow(0.42, 0.58))
        gamed = campaign.level1(window=MeasurementWindow(0.74, 0.90))
        assert gamed.reported_watts < honest.reported_watts
        # Both are legal under the old rules.
        assert check_submission(gamed.description) == []

    def test_vid_screening_understates_power(self, run, gpu_system):
        campaign = MeasurementCampaign(run, meter_spec=MeterSpec.ideal())
        rng = np.random.default_rng(1)
        honest_idx = random_subset(gpu_system.n_nodes, 8, rng)
        screened_idx = vid_screened_subset(gpu_system, 8, prefer="low")
        window = full_core_window()
        honest = campaign.level1(node_indices=honest_idx, window=window)
        screened = campaign.level1(node_indices=screened_idx, window=window)
        assert screened.reported_watts < honest.reported_watts * 1.001

    def test_mid_vid_mitigation_nearly_unbiased(self, run, gpu_system):
        campaign = MeasurementCampaign(run, meter_spec=MeterSpec.ideal())
        mid_idx = vid_screened_subset(gpu_system, 12, prefer="mid")
        res = campaign.level1(
            node_indices=mid_idx, window=full_core_window()
        )
        assert abs(res.relative_error) < 0.04


class TestBudgetEmpirically:
    def test_rss_budget_bounds_realised_error(self, rng):
        """The planning module's RSS budget must actually bound ~95% of
        realised campaign errors (plan → meter bank → extrapolate)."""
        from repro.cluster.components import CpuModel, DramModel, FanModel
        from repro.cluster.node import NodeConfig
        from repro.cluster.system import SystemModel
        from repro.cluster.variability import ManufacturingVariation
        from repro.core.planning import (
            InstrumentationConstraints,
            plan_measurement,
        )
        from repro.metering.aggregate import MeterBank
        from repro.metering.meter import MeterSpec
        from repro.metering.subset import random_subset
        from repro.traces.synth import simulate_run
        from repro.workloads.base import ConstantWorkload

        cv = 0.025
        n_nodes = 512
        constraints = InstrumentationConstraints(
            n_meters=2, channels_per_meter=24,
            meter_spec=MeterSpec(gain_error_cv=0.01),
        )
        plan = plan_measurement(n_nodes, cv, 0.03, constraints)
        assert plan.feasible

        config = NodeConfig(
            cpu=CpuModel(idle_watts=22.0, peak_watts=140.0), n_cpus=2,
            dram=DramModel.for_capacity(64.0),
            fan=FanModel(max_watts=45.0), other_watts=25.0,
        )
        system = SystemModel(
            "budget-check", n_nodes, config,
            variation=ManufacturingVariation(sigma=cv), seed=71,
        )
        run = simulate_run(
            system, ConstantWorkload(utilisation=0.9, core_s=600.0),
            dt=1.0, noise_cv=0.0,
        )
        truth = run.true_core_average()
        t0, t1 = run.core_window

        errors = []
        for trial in range(40):
            idx = random_subset(n_nodes, plan.n_nodes_to_measure, rng)
            bank = MeterBank(
                constraints.meter_spec, plan.n_meters_used,
                np.random.default_rng(900 + trial),
            )
            reading = bank.measure_subset(run, idx, t0, t1)
            reported = reading.average_watts * n_nodes / idx.size
            errors.append(abs(reported - truth) / truth)
        within = float(np.mean(np.array(errors) <= plan.budget.rss))
        assert within >= 0.85  # nominal ~95%, finite trials


class TestPilotWorkflow:
    def test_two_step_pilot_then_final(self, small_system, rng):
        from repro.core.sampling import two_step_pilot_plan

        fleet = small_system.node_sample(0.95)
        pilot = fleet.random_subset(10, rng)
        plan = two_step_pilot_plan(len(fleet), pilot.watts, accuracy=0.02)
        assert 2 <= plan.n <= len(fleet)
        final = fleet.random_subset(plan.n, rng)
        est = extrapolate_full_system(final.watts, len(fleet))
        assert est.total_watts == pytest.approx(fleet.total(), rel=0.05)
