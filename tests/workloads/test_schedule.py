"""Tests for repro.workloads.schedule."""

import numpy as np
import pytest

from repro.workloads.schedule import LoadSchedule, balanced, imbalanced


class TestBalanced:
    def test_all_ones(self):
        s = balanced(10)
        np.testing.assert_allclose(s.multipliers, 1.0)
        assert s.is_balanced()
        assert s.n_nodes == 10

    def test_apply(self):
        s = balanced(4)
        np.testing.assert_allclose(s.apply(0.9), 0.9)

    def test_skewness_zero(self):
        assert balanced(20).skewness() == 0.0

    def test_bad_n(self):
        with pytest.raises(ValueError):
            balanced(0)


class TestImbalanced:
    def test_spread(self, rng):
        s = imbalanced(1000, rng, spread=0.3)
        assert not s.is_balanced()
        assert s.multipliers.min() >= 0.7 - 1e-9
        assert s.multipliers.max() <= 1.0 + 1e-9

    def test_stragglers_create_skew(self, rng):
        s = imbalanced(5000, rng, spread=0.05, straggler_rate=0.05,
                       straggler_level=0.3)
        # Stragglers pull the left tail down → negative skew.
        assert s.skewness() < -1.0

    def test_no_stragglers_mild_skew(self, rng):
        s = imbalanced(5000, rng, spread=0.2, straggler_rate=0.0)
        assert abs(s.skewness()) < 0.5

    def test_deterministic(self):
        a = imbalanced(50, np.random.default_rng(1))
        b = imbalanced(50, np.random.default_rng(1))
        np.testing.assert_array_equal(a.multipliers, b.multipliers)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="spread"):
            imbalanced(10, rng, spread=1.0)
        with pytest.raises(ValueError, match="straggler_rate"):
            imbalanced(10, rng, straggler_rate=1.0)
        with pytest.raises(ValueError, match="straggler_level"):
            imbalanced(10, rng, straggler_level=0.0)


class TestLoadSchedule:
    def test_immutable(self):
        s = balanced(5)
        with pytest.raises(ValueError):
            s.multipliers[0] = 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            LoadSchedule(np.array([]))
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            LoadSchedule(np.array([0.0, 1.0]))
        with pytest.raises(ValueError, match=r"\(0, 1\]"):
            LoadSchedule(np.array([0.5, 1.2]))

    def test_apply_validation(self):
        with pytest.raises(ValueError, match="utilisation"):
            balanced(3).apply(1.5)
