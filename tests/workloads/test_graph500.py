"""Tests for repro.workloads.graph500."""

import numpy as np
import pytest

from repro.analysis.gaming import optimal_window_gain
from repro.traces.synth import simulate_run
from repro.workloads.graph500 import Graph500Workload
from repro.workloads.hpl import HplWorkload


class TestGraph500Shape:
    def test_bounds(self):
        wl = Graph500Workload()
        u = wl.utilisation(np.linspace(0, 1, 20_001))
        assert np.all((u >= 0.0) & (u <= 1.0))

    def test_bursty(self):
        # High temporal variance relative to the mean — unlike HPL.
        wl = Graph500Workload()
        u = wl.utilisation(np.linspace(0, 1, 20_001))
        assert u.std() / u.mean() > 0.3

    def test_periodic_across_searches(self):
        wl = Graph500Workload(n_searches=4, levels_per_search=8)
        x = np.linspace(0.0, 0.2499, 500)
        u1 = wl.utilisation(x)
        u2 = wl.utilisation(x + 0.25)
        np.testing.assert_allclose(u1, u2, atol=1e-9)

    def test_comm_phases_lower(self):
        wl = Graph500Workload(u_compute=0.9, u_comm=0.2)
        u = wl.utilisation(np.linspace(0, 1, 50_001))
        # Bimodal-ish: clear mass near both regimes.
        assert np.quantile(u, 0.9) > 2 * np.quantile(u, 0.1)

    def test_mean_moderate(self):
        wl = Graph500Workload()
        assert 0.3 < wl.mean_utilisation() < 0.75

    def test_validation(self):
        with pytest.raises(ValueError, match="search"):
            Graph500Workload(n_searches=0)
        with pytest.raises(ValueError, match="u_comm"):
            Graph500Workload(u_comm=0.9, u_compute=0.8)
        with pytest.raises(ValueError, match="frontier_peak"):
            Graph500Workload(frontier_peak_level=1.0)


class TestGraph500Measurement:
    def test_harder_to_measure_than_cpu_hpl(self, small_system):
        """Partial windows on BFS are even less representative than on
        flat CPU HPL — the generalisation the paper's full-core rule
        anticipates ('the lack of generalizability to workloads with
        more complex patterns')."""
        bfs = Graph500Workload(core_s=1800.0, n_searches=16)
        hpl = HplWorkload.cpu_out_of_core(1800.0)
        run_bfs = simulate_run(small_system, bfs, dt=1.0, noise_cv=0.0)
        run_hpl = simulate_run(small_system, hpl, dt=1.0, noise_cv=0.0)
        spread_bfs = optimal_window_gain(run_bfs.core_trace()).spread
        spread_hpl = optimal_window_gain(run_hpl.core_trace()).spread
        assert spread_bfs > 2 * spread_hpl

    def test_full_core_average_stable_across_seeds(self, small_system):
        bfs = Graph500Workload(core_s=900.0)
        a = simulate_run(small_system, bfs, dt=1.0, seed=1)
        b = simulate_run(small_system, bfs, dt=1.0, seed=2)
        ra = a.true_core_average()
        rb = b.true_core_average()
        assert ra == pytest.approx(rb, rel=0.02)
