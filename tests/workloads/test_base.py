"""Tests for repro.workloads.base."""

import numpy as np
import pytest

from repro.workloads.base import ConstantWorkload, PhaseTimings


class TestPhaseTimings:
    def test_totals(self):
        p = PhaseTimings(setup_s=60.0, core_s=3600.0, teardown_s=30.0)
        assert p.total_s == 3690.0
        assert p.core_start_s == 60.0
        assert p.core_end_s == 3660.0
        assert p.core_window() == (60.0, 3660.0)

    def test_zero_core_rejected(self):
        with pytest.raises(ValueError, match="core"):
            PhaseTimings(0.0, 0.0, 0.0)

    def test_negative_setup_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PhaseTimings(-1.0, 100.0, 0.0)


class TestConstantWorkload:
    def test_flat(self):
        wl = ConstantWorkload(utilisation=0.8, core_s=600.0)
        x = np.linspace(0, 1, 11)
        np.testing.assert_allclose(wl.utilisation(x), 0.8)

    def test_scalar_return(self):
        wl = ConstantWorkload()
        assert isinstance(wl.utilisation(0.5), float)

    def test_mean_utilisation(self):
        wl = ConstantWorkload(utilisation=0.7)
        assert wl.mean_utilisation() == pytest.approx(0.7)

    def test_core_runtime(self):
        wl = ConstantWorkload(core_s=1234.0)
        assert wl.core_runtime_s == 1234.0

    def test_out_of_range_fraction(self):
        with pytest.raises(ValueError, match="run_fraction"):
            ConstantWorkload().utilisation(1.5)

    def test_bad_utilisation(self):
        with pytest.raises(ValueError, match="utilisation"):
            ConstantWorkload(utilisation=1.2)

    def test_setup_teardown_utilisation_low(self):
        wl = ConstantWorkload(utilisation=0.95)
        assert wl.setup_utilisation() < 0.95
        assert wl.teardown_utilisation() < 0.95
