"""Tests for repro.workloads.stress and rodinia."""

import numpy as np
import pytest

from repro.workloads.rodinia import RodiniaCfdWorkload
from repro.workloads.stress import FirestarterWorkload, MPrimeWorkload


class TestFirestarter:
    def test_flat_at_level(self):
        wl = FirestarterWorkload(utilisation=0.99)
        x = np.linspace(0, 1, 50)
        np.testing.assert_allclose(wl.utilisation(x), 0.99)

    def test_near_peak_by_design(self):
        assert FirestarterWorkload().utilisation(0.5) > 0.95

    def test_low_setup_utilisation(self):
        assert FirestarterWorkload().setup_utilisation() < 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="utilisation"):
            FirestarterWorkload(utilisation=0.0)


class TestMPrime:
    def test_mean_near_level(self):
        wl = MPrimeWorkload(utilisation=0.95, ripple=0.02)
        assert wl.mean_utilisation() == pytest.approx(0.95, abs=0.005)

    def test_ripple_amplitude(self):
        wl = MPrimeWorkload(core_s=3600.0, utilisation=0.9, ripple=0.03,
                            cycle_s=600.0)
        u = wl.utilisation(np.linspace(0, 1, 10_001))
        half_amp = (u.max() - u.min()) / 2.0
        assert half_amp == pytest.approx(0.9 * 0.03, rel=0.05)

    def test_periodicity(self):
        wl = MPrimeWorkload(core_s=1200.0, cycle_s=600.0, ripple=0.02)
        # One full cycle apart → same utilisation.
        assert wl.utilisation(0.1) == pytest.approx(
            wl.utilisation(0.1 + 0.5), rel=1e-9
        )

    def test_zero_ripple_flat(self):
        wl = MPrimeWorkload(ripple=0.0)
        u = wl.utilisation(np.linspace(0, 1, 100))
        assert np.ptp(u) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="ripple"):
            MPrimeWorkload(ripple=-0.1)
        with pytest.raises(ValueError, match="exceeds 1"):
            MPrimeWorkload(utilisation=0.99, ripple=0.05)
        with pytest.raises(ValueError, match="cycle"):
            MPrimeWorkload(cycle_s=0.0)


class TestRodinia:
    def test_ramp_then_plateau(self):
        wl = RodiniaCfdWorkload(ramp_fraction=0.1, sawtooth=0.0)
        assert wl.utilisation(0.0) < wl.utilisation(0.5)
        assert wl.utilisation(0.5) == pytest.approx(
            wl.utilisation(0.9), rel=0.01
        )

    def test_sawtooth_present(self):
        wl = RodiniaCfdWorkload(sawtooth=0.05, iterations=100)
        u = wl.utilisation(np.linspace(0.5, 0.52, 200))
        assert np.ptp(u) > 0.01

    def test_bounds(self):
        wl = RodiniaCfdWorkload(utilisation=0.95, sawtooth=0.1)
        u = wl.utilisation(np.linspace(0, 1, 5001))
        assert np.all((u >= 0.0) & (u <= 1.0))

    def test_no_ramp(self):
        wl = RodiniaCfdWorkload(ramp_fraction=0.0, sawtooth=0.0)
        assert wl.utilisation(0.0) == pytest.approx(wl.utilisation(0.5))

    def test_validation(self):
        with pytest.raises(ValueError, match="iterations"):
            RodiniaCfdWorkload(iterations=0)
        with pytest.raises(ValueError, match="ramp_fraction"):
            RodiniaCfdWorkload(ramp_fraction=1.0)
