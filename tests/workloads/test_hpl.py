"""Tests for repro.workloads.hpl — the LU utilisation model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.hpl import HplWorkload


class TestConstruction:
    def test_presets(self):
        cpu = HplWorkload.cpu_out_of_core(3600.0)
        gpu = HplWorkload.gpu_in_core(3600.0)
        assert cpu.rho < gpu.rho
        assert cpu.name == "HPL-CPU"
        assert gpu.name == "HPL-GPU"

    def test_validation(self):
        with pytest.raises(ValueError, match="rho"):
            HplWorkload(100.0, rho=0.0)
        with pytest.raises(ValueError, match="u_max"):
            HplWorkload(100.0, u_max=1.5)
        with pytest.raises(ValueError, match="u_min"):
            HplWorkload(100.0, u_max=0.5, u_min=0.6)
        with pytest.raises(ValueError, match="warmup_fraction"):
            HplWorkload(100.0, warmup_fraction=1.0)
        with pytest.raises(ValueError, match="exceed -1"):
            HplWorkload(100.0, warmup_fraction=0.2, warmup_boost=-1.0)
        with pytest.raises(ValueError, match="needs a positive"):
            HplWorkload(100.0, warmup_boost=0.1)


class TestUtilisationShape:
    def test_starts_at_u_max(self):
        wl = HplWorkload(1000.0, rho=0.1, u_max=0.93)
        assert wl.utilisation(0.0) == pytest.approx(0.93, rel=1e-6)

    def test_monotone_decreasing_without_warmup(self):
        wl = HplWorkload(1000.0, rho=0.2)
        x = np.linspace(0, 1, 201)
        u = wl.utilisation(x)
        assert np.all(np.diff(u) <= 1e-12)

    def test_floor_respected(self):
        wl = HplWorkload(1000.0, rho=1.0, u_min=0.10, u_max=0.9)
        assert wl.utilisation(1.0) >= 0.10 - 1e-9

    def test_small_rho_flat(self):
        wl = HplWorkload(1000.0, rho=1e-4)
        # First 20% vs last 20% mean utilisation differ by well under 1%.
        x = np.linspace(0, 1, 2001)
        u = wl.utilisation(x)
        first = u[x <= 0.2].mean()
        last = u[x >= 0.8].mean()
        assert (first - last) / first < 0.01

    def test_large_rho_tails_off(self):
        wl = HplWorkload(1000.0, rho=0.4)
        x = np.linspace(0, 1, 2001)
        u = wl.utilisation(x)
        first = u[x <= 0.2].mean()
        last = u[x >= 0.8].mean()
        assert (first - last) / first > 0.15

    def test_warmup_boost_raises_start(self):
        base = HplWorkload(1000.0, rho=0.01)
        boosted = HplWorkload(
            1000.0, rho=0.01, warmup_fraction=0.25, warmup_boost=0.05,
            u_max=0.9,
        )
        assert boosted.utilisation(0.0) > base.utilisation(0.0) * 0.99

    def test_negative_warmup_dips_start(self):
        wl = HplWorkload(
            1000.0, rho=1e-4, warmup_fraction=0.25, warmup_boost=-0.05
        )
        assert wl.utilisation(0.0) < wl.utilisation(0.5)

    def test_warmup_decays_to_zero(self):
        wl = HplWorkload(
            1000.0, rho=1e-4, warmup_fraction=0.2, warmup_boost=0.1,
            u_max=0.8,
        )
        base = HplWorkload(1000.0, rho=1e-4, u_max=0.8)
        assert wl.utilisation(0.5) == pytest.approx(base.utilisation(0.5))

    def test_utilisation_clipped_to_one(self):
        wl = HplWorkload(
            1000.0, rho=0.01, u_max=0.98, warmup_fraction=0.3,
            warmup_boost=0.5,
        )
        assert wl.utilisation(0.0) <= 1.0

    @settings(max_examples=20)
    @given(st.floats(min_value=0.001, max_value=2.0))
    def test_utilisation_in_bounds_for_any_rho(self, rho):
        wl = HplWorkload(500.0, rho=rho)
        u = wl.utilisation(np.linspace(0, 1, 101))
        assert np.all(u >= 0.0) and np.all(u <= 1.0)


class TestTrailingFraction:
    def test_endpoints(self):
        wl = HplWorkload(1000.0, rho=0.1)
        assert wl.trailing_fraction_at(0.0) == pytest.approx(1.0)
        assert wl.trailing_fraction_at(1.0) == pytest.approx(0.0, abs=1e-6)

    def test_monotone(self):
        wl = HplWorkload(1000.0, rho=0.1)
        s = wl.trailing_fraction_at(np.linspace(0, 1, 101))
        assert np.all(np.diff(s) <= 1e-12)

    def test_cpu_spends_run_at_full_efficiency(self):
        # Out-of-core CPU runs: almost all wall-clock time is at
        # near-peak utilisation — the flat Figure 1 curves.
        wl = HplWorkload.cpu_out_of_core(3600.0)
        x = np.linspace(0, 1, 20_001)
        u = wl.utilisation(x)
        frac_degraded = float(np.mean(u < 0.9 * wl.u_max))
        assert frac_degraded < 0.03

    def test_gpu_spends_much_of_run_degraded(self):
        # In-core GPU runs: a large share of wall-clock time runs at
        # visibly reduced utilisation — the sloped Figure 1 curves.
        wl = HplWorkload.gpu_in_core(3600.0)
        x = np.linspace(0, 1, 20_001)
        u = wl.utilisation(x)
        frac_degraded = float(np.mean(u < 0.9 * wl.u_max))
        assert frac_degraded > 0.30

    def test_constant_rate_closed_form(self):
        # With efficiency ~1 everywhere (tiny rho), time ∝ work done, so
        # s(x) = (1 - x)^{1/3}.
        wl = HplWorkload(1000.0, rho=1e-6, u_min=0.0)
        for x in (0.2, 0.5, 0.8):
            assert wl.trailing_fraction_at(x) == pytest.approx(
                (1 - x) ** (1 / 3), abs=0.01
            )


class TestMeanUtilisation:
    def test_mean_below_start(self):
        wl = HplWorkload(1000.0, rho=0.3)
        assert wl.mean_utilisation() < wl.utilisation(0.0)

    def test_flat_mean_near_u_max(self):
        wl = HplWorkload(1000.0, rho=1e-5, u_max=0.9)
        assert wl.mean_utilisation() == pytest.approx(0.9, rel=0.02)
