"""`stream_run` must reproduce `node_power_matrix` cell-for-cell."""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.slab import SlabRing


def _collect(run, **kwargs):
    """Materialise a stream back into (times, watts) for comparison."""
    times, watts = [], []
    for batch in run.stream_run(**kwargs):
        times.append(batch.times.copy())
        watts.append(batch.watts.copy())
    return np.concatenate(times), np.vstack(watts)


class TestStreamRunEquality:
    def test_core_window_matches_serial_matrix(self, small_run):
        t0_s, t1_s = small_run.core_window
        ref_times, ref_watts = small_run.node_power_matrix(t0_s, t1_s)
        times, watts = _collect(small_run, ticks_per_batch=60)
        np.testing.assert_array_equal(times, ref_times)
        assert np.array_equal(watts, ref_watts)

    def test_full_run_matches_serial_matrix(self, small_run):
        ref_times, ref_watts = small_run.node_power_matrix()
        times, watts = _collect(
            small_run, ticks_per_batch=97, core_only=False
        )
        np.testing.assert_array_equal(times, ref_times)
        assert np.array_equal(watts, ref_watts)

    def test_node_subset_matches_serial_matrix(self, small_run):
        idx = np.array([1, 5, 30], dtype=np.int64)
        t0_s, t1_s = small_run.core_window
        _, ref_watts = small_run.node_power_matrix(
            t0_s, t1_s, node_indices=idx
        )
        _, watts = _collect(
            small_run, node_indices=idx, ticks_per_batch=13
        )
        assert np.array_equal(watts, ref_watts)

    def test_batch_size_never_changes_the_cells(self, small_run):
        _, ref_watts = _collect(small_run, ticks_per_batch=1_000_000)
        for ticks in (1, 7, 60, 901):
            _, watts = _collect(small_run, ticks_per_batch=ticks)
            assert np.array_equal(watts, ref_watts)

    def test_batches_carry_fleet_node_ids(self, small_run):
        idx = np.array([4, 9], dtype=np.int64)
        batch = next(
            small_run.stream_run(node_indices=idx, ticks_per_batch=8)
        )
        np.testing.assert_array_equal(batch.node_ids, idx)
        assert batch.n_ticks == 8


class TestStreamRunRing:
    def test_ring_path_is_bit_identical_and_zero_copy(self, small_run):
        _, ref_watts = _collect(small_run, ticks_per_batch=64)
        ring = SlabRing(64, small_run.system.n_nodes)
        chunks = []
        for batch in small_run.stream_run(ticks_per_batch=64, ring=ring):
            assert any(
                np.shares_memory(batch.watts, slab.watts)
                for slab in ring._slabs
            )
            chunks.append(batch.watts.copy())
        assert np.array_equal(np.vstack(chunks), ref_watts)
        assert ring.borrowed == 0

    def test_ring_views_stay_valid_for_one_step(self, small_run):
        # Double buffering: the previous batch must still hold its
        # values while the caller inspects the current one.
        ring = SlabRing(32, small_run.system.n_nodes)
        previous = None
        previous_copy = None
        for batch in small_run.stream_run(ticks_per_batch=32, ring=ring):
            if previous is not None:
                assert np.array_equal(previous.watts, previous_copy)
            previous = batch
            previous_copy = batch.watts.copy()


class TestStreamRunValidation:
    def test_bad_ticks_per_batch(self, small_run):
        with pytest.raises(ValueError):
            next(small_run.stream_run(ticks_per_batch=0))

    def test_bad_node_subsets(self, small_run):
        with pytest.raises(ValueError):
            next(small_run.stream_run(node_indices=np.array([], int)))
        with pytest.raises(ValueError):
            next(small_run.stream_run(node_indices=np.array([99], int)))
        with pytest.raises(ValueError):
            next(small_run.stream_run(node_indices=np.array([1, 1], int)))
