"""Slab storage: layout, zero-copy views, ring borrow discipline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.slab import ColumnBatch, Slab, SlabRing


class TestSlab:
    def test_validates_dimensions(self):
        with pytest.raises(ValueError):
            Slab(0, 4)
        with pytest.raises(ValueError):
            Slab(4, 0)

    def test_columns_are_c_contiguous_float64(self):
        slab = Slab(8, 3)
        assert slab.times.dtype == np.float64
        assert slab.watts.dtype == np.float64
        assert slab.watts.flags["C_CONTIGUOUS"]
        assert slab.watts.shape == (8, 3)
        assert slab.node_ids.dtype == np.int64
        assert slab.capacity_ticks == 8
        assert slab.n_nodes == 3
        assert not slab.shared
        assert slab.nbytes == 8 * 8 + 8 * 3 * 8 + 3 * 8

    def test_view_is_zero_copy(self):
        slab = Slab(8, 3)
        view = slab.view(5)
        assert isinstance(view, ColumnBatch)
        assert view.n_ticks == 5
        assert view.n_nodes == 3
        slab.watts[2, 1] = 42.0
        assert view.watts[2, 1] == 42.0
        assert np.shares_memory(view.watts, slab.watts)
        assert np.shares_memory(view.times, slab.times)

    def test_view_bounds_are_enforced(self):
        slab = Slab(8, 3)
        with pytest.raises(ValueError):
            slab.view(0)
        with pytest.raises(ValueError):
            slab.view(9)

    def test_as_batch_shares_slab_memory(self):
        slab = Slab(6, 2)
        slab.times[:] = np.arange(6.0)
        slab.node_ids[:] = [3, 7]
        slab.watts[:, :] = 1.5
        batch = slab.view(4).as_batch()
        assert batch.n_ticks == 4
        assert batch.n_nodes == 2
        assert np.shares_memory(batch.watts, slab.watts)
        np.testing.assert_array_equal(batch.node_ids, [3, 7])

    def test_private_close_is_a_noop(self):
        slab = Slab(4, 2)
        slab.close()
        slab.unlink()
        assert slab.watts is not None


class TestSharedSlab:
    def test_shared_segment_round_trips_and_unlinks(self):
        slab = Slab(5, 2, shared=True)
        assert slab.shared
        slab.times[:] = np.arange(5.0)
        slab.watts[:, :] = 7.25
        slab.node_ids[:] = [0, 1]
        view = slab.view(5)
        np.testing.assert_array_equal(view.times, np.arange(5.0))
        assert float(view.watts.min()) == 7.25
        assert np.shares_memory(view.watts, slab.watts)
        # The contract: drop every view before releasing the mapping.
        del view
        slab.unlink()
        assert not slab.shared
        assert slab.watts is None


class TestSlabRing:
    def test_depth_below_two_is_refused(self):
        with pytest.raises(ValueError):
            SlabRing(4, 2, depth=1)

    def test_round_robin_borrow_and_release(self):
        ring = SlabRing(4, 2, depth=2)
        a = ring.acquire()
        ring.release(a)
        b = ring.acquire()
        assert b is not a
        ring.release(b)
        c = ring.acquire()
        assert c is a
        assert ring.acquired_total == 3

    def test_acquiring_a_borrowed_slab_raises(self):
        ring = SlabRing(4, 2, depth=2)
        ring.acquire()
        ring.acquire()
        assert ring.borrowed == 2
        with pytest.raises(RuntimeError, match="still borrowed"):
            ring.acquire()

    def test_release_of_foreign_slab_raises(self):
        ring = SlabRing(4, 2, depth=2)
        with pytest.raises(ValueError):
            ring.release(Slab(4, 2))

    def test_double_release_raises(self):
        ring = SlabRing(4, 2, depth=2)
        slab = ring.acquire()
        ring.release(slab)
        with pytest.raises(RuntimeError, match="not borrowed"):
            ring.release(slab)
