"""Shard engine: bit-identity across shard counts, pools, and serial."""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.engine import fleet_reference, run_sharded, sharded_session
from repro.shard.plan import plan_shards
from repro.stream.estimators import P2Quantile
from repro.stream.session import stream_session


def _identity_view(result) -> dict:
    """The fields of a session result that must be shard-count
    invariant to the bit (everything except the approximate P² merge
    and the plan provenance)."""
    d = result.to_dict()
    return {
        "samples_ingested": d["samples_ingested"],
        "fleet_mean_w": d["fleet_mean_w"],
        "fleet_std_w": d["fleet_std_w"],
        "node_fleet_correlation": d["node_fleet_correlation"],
        "stopping": d["stopping"],
        "monitor": d["monitor"],
        "quality": d["quality"],
        "node_means": np.asarray(result.node_moments.mean).tolist(),
        "node_stds": np.asarray(result.node_moments.std()).tolist(),
    }


class TestFleetReference:
    def test_matches_the_serial_fleet_mean(self, tiny_run):
        t0_s, t1_s = tiny_run.core_window
        _, watts = tiny_run.node_power_matrix(t0_s, t1_s)
        ref_w = fleet_reference(tiny_run, ticks_per_batch=17)
        assert np.array_equal(ref_w, watts.mean(axis=1))


class TestShardCountInvariance:
    def test_sharded_equals_unsharded_bit_for_bit(self, tiny_run):
        baseline = _identity_view(
            sharded_session(tiny_run, n_shards=1, ticks_per_batch=16)
        )
        for k in (2, 5, 12):
            view = _identity_view(
                sharded_session(tiny_run, n_shards=k, ticks_per_batch=16)
            )
            assert view == baseline, f"{k} shards diverged from serial"

    def test_merge_caveat_is_stamped_only_when_merging(self, tiny_run):
        single = sharded_session(tiny_run, n_shards=1, ticks_per_batch=16)
        multi = sharded_session(tiny_run, n_shards=3, ticks_per_batch=16)
        assert single.notes == ()
        assert P2Quantile.MERGE_CAVEAT in multi.notes

    def test_single_node_shards_match_too(self, tiny_run):
        # The extreme partition: every node its own shard.  This is the
        # case that catches width-dependent reduction paths (numpy's
        # pairwise summation on single-column batches).
        n = tiny_run.system.n_nodes
        baseline = _identity_view(
            sharded_session(tiny_run, n_shards=1, ticks_per_batch=13)
        )
        extreme = _identity_view(
            sharded_session(tiny_run, n_shards=n, ticks_per_batch=13)
        )
        assert extreme == baseline


class TestPoolEquivalence:
    def test_fork_pool_matches_inline_exactly(self, tiny_run):
        inline = sharded_session(
            tiny_run, n_shards=4, ticks_per_batch=16, processes=0
        )
        pooled = sharded_session(
            tiny_run, n_shards=4, ticks_per_batch=16, processes=2
        )
        assert pooled.to_dict() == inline.to_dict()


class TestSerialCrossCheck:
    def test_matches_stream_session_state(self, small_run):
        serial = stream_session(small_run, ticks_per_batch=60)
        sharded = sharded_session(
            small_run, n_shards=3, ticks_per_batch=60
        )
        assert np.array_equal(
            np.asarray(sharded.node_moments.mean),
            np.asarray(serial.node_moments.mean),
        )
        assert np.array_equal(
            np.asarray(sharded.node_moments.std()),
            np.asarray(serial.node_moments.std()),
        )
        assert (
            sharded.node_fleet_correlation
            == serial.node_fleet_correlation
        )
        assert (
            sharded.monitor_report.to_dict()
            == serial.monitor_report.to_dict()
        )
        assert sharded.samples_ingested == serial.samples_ingested
        # The pooled fleet scalar is the one documented exception: the
        # serial session pushes samples in a different order, so it
        # agrees only to floating-point round-off, not to the bit.
        assert float(
            np.asarray(sharded.fleet_moments.mean)
        ) == pytest.approx(
            float(np.asarray(serial.fleet_moments.mean)), rel=1e-12
        )


class TestValidation:
    def test_plan_must_cover_the_fleet(self, tiny_run):
        plan = plan_shards(tiny_run.system.n_nodes - 1, 2)
        with pytest.raises(ValueError, match="plan covers"):
            run_sharded(tiny_run, plan)

    def test_reference_length_is_checked(self, tiny_run):
        plan = plan_shards(tiny_run.system.n_nodes, 2, ticks_per_batch=16)
        with pytest.raises(ValueError, match="reference series"):
            run_sharded(tiny_run, plan, reference_w=np.zeros(3))

    def test_negative_processes_and_bad_quantiles(self, tiny_run):
        plan = plan_shards(tiny_run.system.n_nodes, 2)
        with pytest.raises(ValueError):
            run_sharded(tiny_run, plan, processes=-1)
        with pytest.raises(ValueError, match="quantiles"):
            sharded_session(tiny_run, quantiles=(1.5,))

    def test_render_text_and_to_dict_are_complete(self, tiny_run):
        result = sharded_session(tiny_run, n_shards=2, ticks_per_batch=16)
        text = result.render_text()
        assert "sharded session (2 shards" in text
        assert "sequential stopping" in text
        d = result.to_dict()
        assert d["n_shards"] == 2
        assert set(d["quantiles_w"]) == {"0.5", "0.95"}
