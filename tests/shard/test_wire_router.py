"""Wire-to-slab routing: frames decode straight into shard storage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.plan import plan_shards
from repro.shard.wire import FrameShardRouter, RoutedBatch
from repro.wire.codecs import make_codec
from repro.wire.framing import encode_frame


def _frame(
    spec,
    times: np.ndarray,
    watts: np.ndarray,
    *,
    seq: int,
    codec_name: str = "raw64",
    node_lo: int | None = None,
    n_nodes: int | None = None,
    payload_override: bytes | None = None,
) -> bytes:
    codec = make_codec(codec_name)
    payload = (
        times.astype("<f8").tobytes() + codec.encode(watts)[0]
        if payload_override is None
        else payload_override
    )
    return encode_frame(
        codec_id=codec.codec_id,
        flags=0,
        seq=seq,
        node_lo=spec.node_lo if node_lo is None else node_lo,
        n_nodes=spec.n_nodes if n_nodes is None else n_nodes,
        n_ticks=times.size,
        tick=seq * times.size,
        payload=payload,
    )


@pytest.fixture()
def plan():
    return plan_shards(10, 2, ticks_per_batch=4, code_digest="d")


def _shard_data(spec, seq, n_ticks=4):
    rng = np.random.default_rng(100 + spec.shard_index * 13 + seq)
    times = np.arange(n_ticks, dtype=np.float64) + seq * n_ticks
    watts = rng.uniform(50.0, 500.0, size=(n_ticks, spec.n_nodes))
    return times, watts


class TestRouting:
    def test_frames_decode_into_the_right_shard_bit_exactly(self, plan):
        router = FrameShardRouter(plan)
        sent: dict[int, list[np.ndarray]] = {0: [], 1: []}
        stream = b""
        for seq in range(10):
            spec = plan.shards[seq % 2]
            times, watts = _shard_data(spec, seq)
            sent[spec.shard_index].append(watts)
            stream += _frame(spec, times, watts, seq=seq)
        got: dict[int, list[np.ndarray]] = {0: [], 1: []}
        # Feed in awkward chunk sizes to exercise the parser.
        for lo in range(0, len(stream), 97):
            for routed in router.feed(stream[lo : lo + 97]):
                assert isinstance(routed, RoutedBatch)
                got[routed.shard_index].append(routed.batch.watts.copy())
                np.testing.assert_array_equal(
                    routed.batch.node_ids,
                    plan.shards[routed.shard_index].node_indices,
                )
        assert router.frames_routed == 10
        assert router.frames_corrupt == 0
        for i in (0, 1):
            assert np.array_equal(
                np.vstack(got[i]), np.vstack(sent[i])
            )
        router.close()

    def test_routed_batch_is_a_slab_view(self, plan):
        router = FrameShardRouter(plan)
        spec = plan.shards[0]
        times, watts = _shard_data(spec, 0)
        (routed,) = list(router.feed(_frame(spec, times, watts, seq=0)))
        ring = router._rings[0]
        assert any(
            np.shares_memory(routed.batch.watts, slab.watts)
            for slab in ring._slabs
        )
        router.close()

    def test_feed_is_lazy_so_views_survive_until_consumed(self, plan):
        # Two frames to the SAME shard in one chunk: with an eager
        # router the first view would be recycled before the caller
        # ever saw it.  Lazily, each view is valid when yielded.
        router = FrameShardRouter(plan)
        spec = plan.shards[0]
        t0, w0 = _shard_data(spec, 0)
        t1, w1 = _shard_data(spec, 1)
        chunk = _frame(spec, t0, w0, seq=0) + _frame(spec, t1, w1, seq=1)
        seen = []
        for routed in router.feed(chunk):
            seen.append(routed.batch.watts.copy())
        assert np.array_equal(seen[0], w0)
        assert np.array_equal(seen[1], w1)
        router.close()

    def test_delta_varint_decodes_through_the_slab_path(self, plan):
        router = FrameShardRouter(plan)
        spec = plan.shards[1]
        times, watts = _shard_data(spec, 3)
        frame = _frame(spec, times, watts, seq=0, codec_name="delta-varint")
        (routed,) = list(router.feed(frame))
        grid = np.rint(watts * 1000.0) / 1000.0
        np.testing.assert_array_equal(routed.batch.watts, grid)
        assert router.error_bound_w >= 0.0005
        router.close()


class TestRoutingErrors:
    def test_unplanned_node_range_is_unroutable(self, plan):
        router = FrameShardRouter(plan)
        spec = plan.shards[0]
        times, watts = _shard_data(spec, 0)
        frame = _frame(spec, times, watts, seq=0, node_lo=1)
        assert list(router.feed(frame)) == []
        assert router.frames_unroutable == 1
        router.close()

    def test_oversized_batch_is_unroutable(self, plan):
        router = FrameShardRouter(plan)
        spec = plan.shards[0]
        times, watts = _shard_data(spec, 0, n_ticks=9)
        assert list(router.feed(_frame(spec, times, watts, seq=0))) == []
        assert router.frames_unroutable == 1
        router.close()

    def test_corrupt_frame_is_counted_not_raised(self, plan):
        router = FrameShardRouter(plan)
        spec = plan.shards[0]
        times, watts = _shard_data(spec, 0)
        frame = bytearray(_frame(spec, times, watts, seq=0))
        frame[len(frame) // 2] ^= 0xFF
        assert list(router.feed(bytes(frame))) == []
        assert router.frames_corrupt == 1
        assert router.frames_routed == 0
        router.close()

    def test_short_payload_is_undecodable(self, plan):
        router = FrameShardRouter(plan)
        spec = plan.shards[0]
        times, watts = _shard_data(spec, 0)
        frame = _frame(
            spec, times, watts, seq=0, payload_override=b"\x00" * 8
        )
        assert list(router.feed(frame)) == []
        assert router.frames_undecodable == 1
        router.close()

    def test_non_finite_times_are_undecodable(self, plan):
        router = FrameShardRouter(plan)
        spec = plan.shards[0]
        times, watts = _shard_data(spec, 0)
        times[2] = np.nan
        assert list(router.feed(_frame(spec, times, watts, seq=0))) == []
        assert router.frames_undecodable == 1
        # The slab was released, so the ring is fully available again.
        assert router._rings[0].borrowed == 0
        router.close()
