"""Shard planning: tiling invariants and content-address keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.shard.plan import ShardPlan, ShardSpec, plan_shards


class TestPlanShards:
    def test_near_equal_contiguous_tiling(self):
        plan = plan_shards(10, 3, code_digest="d")
        sizes = [spec.n_nodes for spec in plan]
        assert sizes == [4, 3, 3]
        assert plan.n_shards == 3
        assert len(plan) == 3
        lo = 0
        for spec in plan:
            assert spec.node_lo == lo
            lo = spec.node_hi
        assert lo == plan.n_nodes

    def test_single_shard_covers_everything(self):
        plan = plan_shards(7, 1, code_digest="d")
        (spec,) = list(plan)
        assert (spec.node_lo, spec.node_hi) == (0, 7)
        np.testing.assert_array_equal(
            spec.node_indices, np.arange(7, dtype=np.int64)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(0, 1)
        with pytest.raises(ValueError):
            plan_shards(4, 5)
        with pytest.raises(ValueError):
            plan_shards(4, 0)
        with pytest.raises(ValueError):
            plan_shards(4, 2, ticks_per_batch=0)

    def test_keys_are_deterministic_and_distinct(self):
        a = plan_shards(10, 3, code_digest="d")
        b = plan_shards(10, 3, code_digest="d")
        assert a.plan_key == b.plan_key
        assert [s.key for s in a] == [s.key for s in b]
        assert len({s.key for s in a}) == a.n_shards

    def test_keys_track_code_batching_and_coordinates(self):
        base = plan_shards(10, 3, code_digest="d")
        assert plan_shards(10, 3, code_digest="e").plan_key != base.plan_key
        assert (
            plan_shards(10, 3, code_digest="d", ticks_per_batch=7).plan_key
            != base.plan_key
        )
        assert plan_shards(10, 2, code_digest="d").plan_key != base.plan_key

    def test_default_digest_comes_from_the_import_closure(self):
        # No injected digest: the key must still be stable per process.
        assert plan_shards(6, 2).plan_key == plan_shards(6, 2).plan_key


class TestShardPlanValidation:
    def _spec(self, i, n, lo, hi):
        return ShardSpec(
            shard_index=i, n_shards=n, node_lo=lo, node_hi=hi, key=f"k{i}"
        )

    def test_gap_is_rejected(self):
        with pytest.raises(ValueError, match="tile"):
            ShardPlan(
                n_nodes=8,
                ticks_per_batch=4,
                shards=(self._spec(0, 2, 0, 3), self._spec(1, 2, 4, 8)),
                plan_key="p",
            )

    def test_short_coverage_is_rejected(self):
        with pytest.raises(ValueError, match="fleet has"):
            ShardPlan(
                n_nodes=8,
                ticks_per_batch=4,
                shards=(self._spec(0, 2, 0, 3), self._spec(1, 2, 3, 7)),
                plan_key="p",
            )

    def test_misordered_indices_are_rejected(self):
        with pytest.raises(ValueError, match="ordered"):
            ShardPlan(
                n_nodes=8,
                ticks_per_batch=4,
                shards=(self._spec(1, 2, 0, 4), self._spec(0, 2, 4, 8)),
                plan_key="p",
            )

    def test_empty_plan_is_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ShardPlan(
                n_nodes=8, ticks_per_batch=4, shards=(), plan_key="p"
            )

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            self._spec(2, 2, 0, 4)
        with pytest.raises(ValueError):
            self._spec(0, 2, 4, 4)

    def test_shard_for_range_is_exact_match_only(self):
        plan = plan_shards(10, 2, code_digest="d")
        first = plan.shard_for_range(0, 5)
        assert first is not None and first.shard_index == 0
        assert plan.shard_for_range(5, 5).shard_index == 1
        assert plan.shard_for_range(0, 10) is None
        assert plan.shard_for_range(1, 5) is None
        assert plan.shard_for_range(0, 4) is None
