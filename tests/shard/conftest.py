"""Shared fixtures for the shard-layer tests.

``small_run`` mirrors the streaming suite's 32-node GPU run for the
serial cross-checks; ``tiny_run`` is a deliberately cheap 12-node CPU
run the hypothesis properties can afford to re-shard many times per
test.
"""

from __future__ import annotations

import pytest

from repro.cluster.components import CpuModel, DramModel, FanModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.thermal import FanController
from repro.cluster.variability import ManufacturingVariation
from repro.traces.synth import SimulatedRun, simulate_run
from repro.workloads.hpl import HplWorkload


@pytest.fixture()
def small_run(gpu_system, gpu_hpl) -> SimulatedRun:
    """A fast 32-node GPU HPL run (1800 s core at 2 s ticks)."""
    return simulate_run(gpu_system, gpu_hpl, dt=2.0, seed=5)


@pytest.fixture(scope="session")
def tiny_run() -> SimulatedRun:
    """A 12-node CPU run small enough to re-shard per example."""
    config = NodeConfig(
        cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
        n_cpus=1,
        dram=DramModel.for_capacity(16.0),
        fan=FanModel(max_watts=30.0),
        other_watts=10.0,
    )
    system = SystemModel(
        "tiny-shard",
        12,
        config,
        variation=ManufacturingVariation(sigma=0.02),
        fan_controller=FanController(
            fan_model=config.fan, reference_watts=200.0
        ),
        seed=21,
    )
    workload = HplWorkload.cpu_out_of_core(
        240.0, setup_s=20.0, teardown_s=10.0
    )
    return simulate_run(system, workload, dt=2.0, seed=9)
