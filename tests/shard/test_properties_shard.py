"""Property-based shard invariants (hypothesis).

Three contracts the ISSUE pins down:

* shard-merge equivalence: for **any** contiguous partition of the
  fleet — not just the planner's near-equal one — and any merge-tree
  arity, the reduced fleet state is bit-identical to the single-shard
  state;
* the slab ring never aliases a live view, under arbitrary
  acquire/release schedules;
* ``stream_run`` reproduces ``node_power_matrix`` cell-for-cell for
  arbitrary batch sizes and node subsets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.engine import fleet_reference, run_shard
from repro.shard.plan import ShardPlan, ShardSpec
from repro.shard.reduce import concat_tree, reduce_states
from repro.shard.slab import SlabRing

TINY_NODES = 12
TICKS_PER_BATCH = 16

#: Sorted interior cut points making an arbitrary contiguous partition.
cut_sets = st.sets(
    st.integers(min_value=1, max_value=TINY_NODES - 1), max_size=5
)

arities = st.integers(min_value=2, max_value=5)


def _plan_from_cuts(cuts: set) -> ShardPlan:
    bounds = [0, *sorted(cuts), TINY_NODES]
    n = len(bounds) - 1
    shards = tuple(
        ShardSpec(
            shard_index=i,
            n_shards=n,
            node_lo=bounds[i],
            node_hi=bounds[i + 1],
            key=f"cut-{i}-{bounds[i]}-{bounds[i + 1]}",
        )
        for i in range(n)
    )
    return ShardPlan(
        n_nodes=TINY_NODES,
        ticks_per_batch=TICKS_PER_BATCH,
        shards=shards,
        plan_key="cuts",
    )


@pytest.fixture(scope="module")
def baseline(tiny_run):
    """Reference series plus the single-shard fleet state."""
    ref_w = fleet_reference(tiny_run, ticks_per_batch=TICKS_PER_BATCH)
    plan = _plan_from_cuts(set())
    state = run_shard(
        tiny_run,
        plan.shards[0],
        ticks_per_batch=TICKS_PER_BATCH,
        reference_w=ref_w,
    )
    fleet = reduce_states([state], plan)
    return ref_w, fleet


class TestArbitraryPartitions:
    @settings(max_examples=10, deadline=None)
    @given(cuts=cut_sets)
    def test_any_contiguous_partition_reduces_to_the_same_bits(
        self, tiny_run, baseline, cuts
    ):
        ref_w, reference = baseline
        plan = _plan_from_cuts(cuts)
        states = [
            run_shard(
                tiny_run,
                spec,
                ticks_per_batch=TICKS_PER_BATCH,
                reference_w=ref_w,
            )
            for spec in plan
        ]
        fleet = reduce_states(states, plan)
        assert np.array_equal(
            np.asarray(fleet.node_moments.mean),
            np.asarray(reference.node_moments.mean),
        )
        assert np.array_equal(
            np.asarray(fleet.node_moments.std()),
            np.asarray(reference.node_moments.std()),
        )
        assert np.array_equal(
            np.asarray(fleet.covar.correlation()),
            np.asarray(reference.covar.correlation()),
        )
        assert (
            fleet.monitor.report().to_dict()
            == reference.monitor.report().to_dict()
        )
        assert float(
            np.asarray(fleet.fleet_moments().mean)
        ) == float(np.asarray(reference.fleet_moments().mean))
        assert fleet.samples_ingested == reference.samples_ingested
        assert fleet.quantile_merge_approximate == (plan.n_shards > 1)


class TestConcatTree:
    @settings(max_examples=50)
    @given(
        parts=st.lists(
            st.lists(st.integers(), max_size=4), min_size=1, max_size=12
        ),
        arity=arities,
    )
    def test_tree_shape_never_changes_an_ordered_concatenation(
        self, parts, arity
    ):
        flat = [x for part in parts for x in part]

        def combine(chunk):
            return [x for part in chunk for x in part]

        assert concat_tree(parts, combine, arity=arity) == flat

    def test_rejects_empty_parts_and_degenerate_arity(self):
        with pytest.raises(ValueError):
            concat_tree([], lambda c: c)
        with pytest.raises(ValueError):
            concat_tree([[1]], lambda c: c, arity=1)


class TestRingAliasing:
    @settings(max_examples=60)
    @given(
        depth=st.integers(min_value=2, max_value=4),
        program=st.lists(st.booleans(), max_size=40),
    )
    def test_random_schedules_never_alias_a_live_view(
        self, depth, program
    ):
        """True = acquire, False = release oldest; checked against a
        reference model of the round-robin borrow state."""
        ring = SlabRing(4, 2, depth=depth)
        held: list = []
        cursor = 0
        for op in program:
            if op:
                next_is_live = any(
                    slot == cursor % depth for slot, _ in held
                )
                if next_is_live:
                    with pytest.raises(RuntimeError):
                        ring.acquire()
                else:
                    slab = ring.acquire()
                    assert all(s is not slab for _, s in held)
                    held.append((cursor % depth, slab))
                    cursor += 1
            elif held:
                _, slab = held.pop(0)
                ring.release(slab)
        assert ring.borrowed == len(held)


class TestStreamRunProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        ticks=st.integers(min_value=1, max_value=37),
        data=st.data(),
    )
    def test_stream_matches_matrix_for_any_batching_and_subset(
        self, tiny_run, ticks, data
    ):
        subset = data.draw(
            st.sets(
                st.integers(min_value=0, max_value=TINY_NODES - 1),
                min_size=1,
                max_size=TINY_NODES,
            )
        )
        idx = np.array(sorted(subset), dtype=np.int64)
        t0_s, t1_s = tiny_run.core_window
        _, ref_watts = tiny_run.node_power_matrix(
            t0_s, t1_s, node_indices=idx
        )
        chunks = [
            batch.watts.copy()
            for batch in tiny_run.stream_run(
                node_indices=idx, ticks_per_batch=ticks
            )
        ]
        assert np.array_equal(np.vstack(chunks), ref_watts)
