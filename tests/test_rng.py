"""Tests for repro.rng — determinism and stream independence."""

import numpy as np

from repro.rng import SeededStreams, default_rng, spawn, stream


class TestDefaultRng:
    def test_default_is_deterministic(self):
        a = default_rng().random(5)
        b = default_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_explicit_seed(self):
        a = default_rng(42).random(5)
        b = default_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(default_rng(1).random(5),
                                  default_rng(2).random(5))

    def test_none_maps_to_fixed_seed(self):
        # None must NOT mean OS entropy: reproducible by default.
        a = default_rng(None).random(3)
        b = default_rng(None).random(3)
        np.testing.assert_array_equal(a, b)


class TestStream:
    def test_same_label_same_stream(self):
        np.testing.assert_array_equal(
            stream(7, "alpha").random(8), stream(7, "alpha").random(8)
        )

    def test_different_labels_independent(self):
        a = stream(7, "alpha").random(1000)
        b = stream(7, "beta").random(1000)
        assert not np.array_equal(a, b)
        # Crude independence check: correlation near zero.
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            stream(1, "x").random(5), stream(2, "x").random(5)
        )

    def test_adding_consumer_does_not_shift_existing(self):
        # The draws of label "a" are independent of whether label "b"
        # was ever consumed (namespaced spawn keys).
        before = stream(3, "a").random(4)
        _ = stream(3, "b").random(100)
        after = stream(3, "a").random(4)
        np.testing.assert_array_equal(before, after)


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(default_rng(0), 5)
        assert len(children) == 5

    def test_spawned_streams_differ(self):
        children = spawn(default_rng(0), 3)
        draws = [c.random(10).tobytes() for c in children]
        assert len(set(draws)) == 3


class TestSeededStreams:
    def test_memoised(self):
        s = SeededStreams(seed=9)
        assert s["manufacturing"] is s["manufacturing"]

    def test_contains_and_iter(self):
        s = SeededStreams(seed=9)
        _ = s["meter"]
        assert "meter" in s
        assert "other" not in s
        assert list(iter(s)) == ["meter"]

    def test_reproducible_across_instances(self):
        a = SeededStreams(seed=4)["x"].random(6)
        b = SeededStreams(seed=4)["x"].random(6)
        np.testing.assert_array_equal(a, b)

    def test_seed_property(self):
        assert SeededStreams(seed=11).seed == 11

    def test_default_seed(self):
        s = SeededStreams()
        t = SeededStreams()
        np.testing.assert_array_equal(s["k"].random(3), t["k"].random(3))
