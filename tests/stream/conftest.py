"""Shared fixtures for the streaming subsystem tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.synth import SimulatedRun, simulate_run


@pytest.fixture()
def small_run(gpu_system, gpu_hpl) -> SimulatedRun:
    """A fast 32-node GPU HPL run (1800 s core at 2 s ticks)."""
    return simulate_run(gpu_system, gpu_hpl, dt=2.0, seed=5)


@pytest.fixture()
def core_matrix(small_run) -> tuple[np.ndarray, np.ndarray]:
    """Batch ground truth: (times, watts) over the core phase."""
    t0_s, t1_s = small_run.core_window
    return small_run.node_power_matrix(t0_s, t1_s)
