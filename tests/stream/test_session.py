"""Tests for repro.stream.session (end-to-end pipeline)."""

import json

import numpy as np
import pytest

from repro.stream.session import stream_session


@pytest.fixture()
def session_result(small_run, core_matrix):
    _, watts = core_matrix
    result = stream_session(
        small_run, accuracy=0.05, report_every_s=300.0
    )
    return result, watts


class TestStreamSession:
    def test_moments_match_batch(self, session_result):
        result, watts = session_result
        flat = watts.ravel()
        assert float(np.asarray(result.fleet_moments.mean)) == pytest.approx(
            flat.mean(), rel=1e-12
        )
        assert float(np.asarray(result.fleet_moments.std())) == pytest.approx(
            flat.std(ddof=1), rel=1e-12
        )
        assert result.samples_ingested == flat.size

    def test_node_moments_match_batch(self, session_result):
        result, watts = session_result
        np.testing.assert_allclose(
            np.asarray(result.node_moments.mean), watts.mean(axis=0),
            rtol=1e-12,
        )

    def test_quantiles_close_to_batch(self, session_result):
        result, watts = session_result
        flat = watts.ravel()
        for q, est in result.quantiles_w.items():
            assert est == pytest.approx(
                float(np.quantile(flat, q)), rel=0.03
            )

    def test_compliance_and_stopping(self, session_result):
        result, _ = session_result
        assert result.monitor_report.full_core_compliant
        assert result.monitor_report.interval_ok
        assert result.stopping.should_stop
        assert result.stopped_at_nodes is not None
        assert result.stopped_at_nodes <= 32

    def test_snapshots_cadence(self, session_result):
        result, _ = session_result
        assert len(result.snapshots) >= 4
        t = [s.t_s for s in result.snapshots]
        assert t == sorted(t)

    def test_everything_consumed_without_loss(self, session_result):
        result, watts = session_result
        assert result.queue_high_watermark >= 1
        assert result.fleet_moments.count == watts.size

    def test_subset_session(self, small_run):
        idx = np.arange(8)
        result = stream_session(
            small_run, node_indices=idx, accuracy=0.5,
            report_every_s=300.0,
        )
        assert result.node_moments.shape == (8,)
        assert result.stopping.n_observed == 8

    def test_invalid_arguments(self, small_run):
        with pytest.raises(ValueError, match="report_every_s"):
            stream_session(small_run, report_every_s=0.0)
        with pytest.raises(ValueError, match="quantiles"):
            stream_session(small_run, quantiles=(1.5,))

    def test_json_round_trip(self, session_result):
        result, _ = session_result
        text = json.dumps(result.to_dict(), default=float)
        parsed = json.loads(text)
        assert parsed["samples_ingested"] == result.samples_ingested
        assert "monitor" in parsed and "stopping" in parsed

    def test_render_text(self, session_result):
        result, _ = session_result
        text = result.render_text()
        assert "final stream state" in text
        assert "sequential stopping" in text
