"""SampleBatch construction: normalising default vs strict zero-copy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.ingest import SampleBatch


class TestNormalisingConstructor:
    def test_coerces_to_c_contiguous_float64(self):
        strided = np.asfortranarray(
            np.arange(12, dtype=np.float32).reshape(3, 4)
        )
        batch = SampleBatch(
            times=[0.0, 1.0, 2.0],
            watts=strided,
            node_ids=np.arange(4),
        )
        assert batch.watts.dtype == np.float64
        assert batch.watts.flags["C_CONTIGUOUS"]
        assert batch.times.dtype == np.float64
        np.testing.assert_array_equal(batch.watts, strided)

    def test_conforming_arrays_are_not_copied(self):
        watts = np.zeros((3, 4))
        batch = SampleBatch(
            times=np.zeros(3), watts=watts, node_ids=np.arange(4)
        )
        assert batch.watts is watts

    def test_shape_mismatches_raise(self):
        with pytest.raises(ValueError, match="2-D"):
            SampleBatch(
                times=np.zeros(3),
                watts=np.zeros(12),
                node_ids=np.arange(4),
            )
        with pytest.raises(ValueError, match="times length"):
            SampleBatch(
                times=np.zeros(2),
                watts=np.zeros((3, 4)),
                node_ids=np.arange(4),
            )
        with pytest.raises(ValueError, match="node_ids length"):
            SampleBatch(
                times=np.zeros(3),
                watts=np.zeros((3, 4)),
                node_ids=np.arange(5),
            )

    def test_float_node_ids_raise(self):
        with pytest.raises(ValueError, match="integers"):
            SampleBatch(
                times=np.zeros(3),
                watts=np.zeros((3, 4)),
                node_ids=np.arange(4.0),
            )


class TestFromColumns:
    def test_zero_copy_on_conforming_views(self):
        watts = np.zeros((3, 4))
        times = np.zeros(3)
        batch = SampleBatch.from_columns(
            times=times, watts=watts, node_ids=np.arange(4)
        )
        assert batch.watts is watts
        assert batch.times is times

    def test_refuses_wrong_dtype(self):
        with pytest.raises(ValueError, match="float64"):
            SampleBatch.from_columns(
                times=np.zeros(3),
                watts=np.zeros((3, 4), dtype=np.float32),
                node_ids=np.arange(4),
            )

    def test_refuses_non_contiguous_watts(self):
        with pytest.raises(ValueError, match="C-contiguous"):
            SampleBatch.from_columns(
                times=np.zeros(3),
                watts=np.asfortranarray(np.zeros((3, 4))),
                node_ids=np.arange(4),
            )

    def test_refuses_strided_times(self):
        with pytest.raises(ValueError, match="C-contiguous times"):
            SampleBatch.from_columns(
                times=np.zeros(6)[::2],
                watts=np.zeros((3, 4)),
                node_ids=np.arange(4),
            )
