"""Tests for repro.stream.stopping."""

import numpy as np
import pytest

from repro.core.sampling import recommend_sample_size
from repro.experiments.table5 import ACCURACIES, CVS, PAPER_TABLE5
from repro.stream.stopping import SequentialStopper


class TestSequentialTable5:
    @pytest.mark.parametrize("i,lam", list(enumerate(ACCURACIES)))
    def test_reproduces_table5_row(self, i, lam):
        # With the z-quantile and a known sigma/mu the sequential
        # boundary is algebraically Eq. 5, so the stop count must equal
        # the published cell exactly.
        for j, cv in enumerate(CVS):
            stopper = SequentialStopper(
                accuracy=lam,
                population=10_000,
                method="z",
                cv_override=cv,
                min_nodes=2,
            )
            stopped = stopper.scan(np.full(10_000, 250.0))
            assert stopped == int(PAPER_TABLE5[i, j])

    def test_matches_batch_recommendation(self):
        plan = recommend_sample_size(5000, 0.04, 0.015, 0.95)
        stopper = SequentialStopper(
            accuracy=0.015,
            population=5000,
            method="z",
            cv_override=0.04,
            min_nodes=2,
        )
        assert stopper.scan(np.full(5000, 100.0)) == plan.n


class TestSequentialBehaviour:
    def test_no_stop_before_min_nodes(self):
        stopper = SequentialStopper(
            accuracy=0.5, population=100, min_nodes=4
        )
        rng = np.random.default_rng(3)
        decisions = [
            stopper.update(float(w))
            for w in rng.normal(200.0, 2.0, size=3)
        ]
        assert not any(d.should_stop for d in decisions)

    def test_stops_on_tight_fleet(self):
        # Nearly identical nodes: a handful suffice at 1%.
        stopper = SequentialStopper(accuracy=0.01, population=1000)
        rng = np.random.default_rng(4)
        stopped = stopper.scan(rng.normal(200.0, 1.0, size=1000))
        assert stopped < 20
        assert stopper.stopped_at == stopped

    def test_t_needs_more_than_z(self):
        # The t-quantile is wider than z at small n, so the sequential
        # t rule can never stop earlier under the same known cv.
        kwargs = dict(
            accuracy=0.02, population=10_000, cv_override=0.05, min_nodes=2
        )
        n_z = SequentialStopper(method="z", **kwargs).scan(
            np.full(10_000, 100.0)
        )
        n_t = SequentialStopper(method="t", **kwargs).scan(
            np.full(10_000, 100.0)
        )
        assert n_t >= n_z

    def test_achieved_lambda_decreases(self):
        stopper = SequentialStopper(
            accuracy=1e-6, population=50, cv_override=0.05, method="z",
        )
        lams = []
        for w in np.full(50, 100.0):
            lams.append(stopper.update(float(w)).achieved_lambda)
        finite = [x for x in lams if np.isfinite(x)]
        assert finite == sorted(finite, reverse=True)
        # Full census: the finite-population correction zeroes the
        # sampling error.
        assert finite[-1] == pytest.approx(0.0, abs=1e-12)

    def test_update_validation(self):
        stopper = SequentialStopper(accuracy=0.01, population=10)
        with pytest.raises(ValueError, match="finite"):
            stopper.update(float("nan"))
        with pytest.raises(ValueError, match=">= 0"):
            stopper.update(-5.0)

    def test_population_exhausted(self):
        stopper = SequentialStopper(accuracy=1e-9, population=3, min_nodes=2)
        for w in (100.0, 101.0, 99.0):
            stopper.update(w)
        with pytest.raises(ValueError, match="population"):
            stopper.update(100.0)

    def test_scan_raises_when_unreachable(self):
        stopper = SequentialStopper(
            accuracy=1e-9, population=1000, cv_override=0.5, method="z",
        )
        with pytest.raises(ValueError, match="not reached"):
            stopper.scan(np.full(20, 100.0))

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="accuracy"):
            SequentialStopper(accuracy=0.0, population=10)
        with pytest.raises(ValueError, match="population"):
            SequentialStopper(accuracy=0.01, population=1)
        with pytest.raises(ValueError, match="method"):
            SequentialStopper(accuracy=0.01, population=10, method="w")
        with pytest.raises(ValueError, match="min_nodes"):
            SequentialStopper(accuracy=0.01, population=10, min_nodes=1)
