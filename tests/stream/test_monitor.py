"""Tests for repro.stream.monitor."""

import numpy as np
import pytest

from repro.stream.ingest import SampleBatch, replay_run
from repro.stream.monitor import ComplianceMonitor


def _monitor_for(run) -> ComplianceMonitor:
    return ComplianceMonitor(
        run.core_window, required_interval_s=max(run.dt, 1.0)
    )


class TestCompliance:
    def test_full_replay_is_compliant(self, small_run):
        mon = _monitor_for(small_run)
        for batch in replay_run(small_run, ticks_per_batch=64):
            mon.observe(batch)
        rep = mon.report()
        assert rep.interval_ok
        assert rep.full_core_compliant
        assert rep.window_fraction_covered == pytest.approx(1.0, abs=0.01)
        assert rep.legal_level1_window
        assert rep.nodes_seen == small_run.system.n_nodes

    def test_partial_coverage_not_full_core(self, small_run):
        mon = _monitor_for(small_run)
        batches = list(replay_run(small_run, ticks_per_batch=64))
        for batch in batches[: len(batches) // 4]:
            mon.observe(batch)
        rep = mon.report()
        assert not rep.full_core_compliant
        assert rep.window_fraction_covered < 0.5

    def test_sampling_gap_flags_violation(self, small_run):
        mon = _monitor_for(small_run)
        batches = list(replay_run(small_run, ticks_per_batch=64))
        mon.observe(batches[0])
        mon.observe(batches[2])  # skip one batch: a cadence gap
        rep = mon.report()
        assert not rep.interval_ok
        assert rep.worst_interval_s > rep.required_interval_s

    def test_node_set_change_rejected(self, small_run):
        mon = _monitor_for(small_run)
        batches = list(replay_run(small_run, ticks_per_batch=64))
        mon.observe(batches[0])
        bad = SampleBatch(
            times=batches[1].times,
            watts=batches[1].watts[:, :8],
            node_ids=batches[1].node_ids[:8],
        )
        with pytest.raises(ValueError, match="node set"):
            mon.observe(bad)


class TestAnomalyFlags:
    def test_clean_run_is_quiet(self, small_run):
        mon = _monitor_for(small_run)
        for batch in replay_run(small_run, ticks_per_batch=64):
            mon.observe(batch)
        rep = mon.report()
        assert not rep.excursion_nodes
        assert not rep.outlier_nodes

    def test_private_step_flags_one_node(self, small_run):
        # Fig. 4: one node's fan policy adds ~120 W for a stretch while
        # the fleet ramps; only that node should flag an excursion.
        mon = _monitor_for(small_run)
        t0_s, _ = small_run.core_window
        for batch in replay_run(small_run, ticks_per_batch=64):
            watts = batch.watts.copy()
            mask = (batch.times >= t0_s + 600.0) & (
                batch.times <= t0_s + 900.0
            )
            watts[mask, 3] += 120.0
            mon.observe(
                SampleBatch(
                    times=batch.times,
                    watts=watts,
                    node_ids=batch.node_ids,
                )
            )
        rep = mon.report()
        assert [f.node_id for f in rep.excursion_nodes] == [3]
        assert rep.excursion_nodes[0].excursion_count > 0

    def test_persistent_shift_flags_outlier(self, small_run):
        # A node running persistently hot shows up as a mean-level
        # outlier vs the fleet's node-to-node spread.
        mon = ComplianceMonitor(
            small_run.core_window,
            required_interval_s=max(small_run.dt, 1.0),
            outlier_z=3.0,
        )
        for batch in replay_run(small_run, ticks_per_batch=64):
            watts = batch.watts.copy()
            watts[:, 7] *= 1.25
            mon.observe(
                SampleBatch(
                    times=batch.times,
                    watts=watts,
                    node_ids=batch.node_ids,
                )
            )
        rep = mon.report()
        assert 7 in [f.node_id for f in rep.outlier_nodes]

    def test_validation(self, small_run):
        with pytest.raises(ValueError, match="duration"):
            ComplianceMonitor((10.0, 10.0))
        with pytest.raises(ValueError, match="positive"):
            ComplianceMonitor(
                small_run.core_window, required_interval_s=0.0
            )
        with pytest.raises(ValueError, match="thresholds"):
            ComplianceMonitor(small_run.core_window, outlier_z=-1.0)


class TestInsufficientData:
    """Degenerate windows must not manufacture a compliance verdict."""

    def test_no_samples_is_flagged_not_judged(self, small_run):
        rep = _monitor_for(small_run).report()
        assert rep.insufficient_data
        assert not rep.interval_ok
        assert not rep.full_core_compliant
        assert not rep.legal_level1_window
        assert rep.window_fraction_covered == 0.0
        assert rep.worst_interval_s == np.inf
        assert rep.nodes_seen == 0
        assert rep.lines() == [
            "insufficient data: no samples observed — no compliance verdict"
        ]
        assert rep.to_dict()["insufficient_data"] is True

    def test_empty_batch_is_a_no_op(self, small_run):
        mon = _monitor_for(small_run)
        empty = SampleBatch(
            times=np.empty(0),
            watts=np.empty((0, small_run.system.n_nodes)),
            node_ids=np.arange(small_run.system.n_nodes, dtype=np.int64),
        )
        mon.observe(empty)
        assert mon.report().insufficient_data

    def test_any_real_sample_clears_the_flag(self, small_run):
        mon = _monitor_for(small_run)
        mon.observe(next(iter(replay_run(small_run, ticks_per_batch=4))))
        rep = mon.report()
        assert not rep.insufficient_data
        assert "insufficient" not in "\n".join(rep.lines())
