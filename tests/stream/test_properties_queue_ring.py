"""Property-based edge-case tests for the backpressure primitives.

The fault layer leans on :class:`BoundedQueue` (the retry loop's
buffer) and the ring buffers (the monitor's rolling window) staying
correct in exactly the regimes faults push them into: capacity 1,
overflow under sustained backpressure, and draining after the source
is exhausted.  These hypothesis properties pin that behaviour against
straightforward reference models.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream.ingest import BoundedQueue, IngestLoop, SampleBatch
from repro.stream.ring import RingBuffer, TimeRing

#: A random put/get program: True = put the next integer, False = get.
op_programs = st.lists(st.booleans(), min_size=1, max_size=200)

capacities = st.integers(min_value=1, max_value=8)


def _batch(tick0: int, node_values) -> SampleBatch:
    values = np.asarray(node_values, dtype=float)
    return SampleBatch(
        times=np.array([float(tick0)]),
        watts=values.reshape(1, -1),
        node_ids=np.arange(values.size, dtype=np.int64),
    )


class TestBoundedQueueModel:
    @given(capacities, op_programs)
    def test_matches_reference_fifo(self, capacity, program):
        """The queue behaves as a capacity-capped FIFO, exactly."""
        queue = BoundedQueue(capacity)
        model: list[int] = []
        accepted = 0
        high = 0
        next_item = 0
        for do_put in program:
            if do_put:
                ok = queue.put(next_item)
                assert ok == (len(model) < capacity)
                assert ok != queue.full or capacity == len(model) + 1
                if ok:
                    model.append(next_item)
                    accepted += 1
                    high = max(high, len(model))
                next_item += 1
            elif model:
                assert queue.get() == model.pop(0)
            else:
                try:
                    queue.get()
                    raise AssertionError("get on empty must raise")
                except IndexError:
                    pass
            assert len(queue) == len(model)
            assert queue.full == (len(model) >= capacity)
        assert queue.total_accepted == accepted
        assert queue.high_watermark == high

    def test_capacity_one_alternation(self):
        """Capacity 1: every put is refused until the slot drains."""
        queue = BoundedQueue(1)
        assert queue.put("a")
        assert not queue.put("b")  # overflow refused, not dropped
        assert not queue.put("b")  # refusal is stable
        assert queue.get() == "a"
        assert queue.put("b")
        assert queue.get() == "b"
        assert queue.total_accepted == 2
        assert queue.high_watermark == 1


class TestIngestLoopBackpressure:
    @given(
        st.integers(min_value=1, max_value=30),
        capacities,
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_no_batch_lost_under_any_capacity(
        self, n_batches, capacity, drain_per_step
    ):
        """Every batch arrives, in order, for any queue sizing.

        Backpressure may stall the producer but must never drop or
        reorder; after the source is exhausted the queue drains to
        empty (the drain-after-exhaustion path).
        """
        source = [_batch(i, [float(i)]) for i in range(n_batches)]
        seen: list[float] = []
        loop = IngestLoop(
            iter(source),
            lambda b: seen.append(float(b.watts[0, 0])),
            queue_capacity=capacity,
            drain_per_step=drain_per_step,
        )
        loop.run()
        assert seen == [float(i) for i in range(n_batches)]
        assert loop.batches_ingested == n_batches
        assert len(loop.queue) == 0
        # A stall is only possible when the queue can actually fill.
        if capacity >= n_batches:
            assert loop.stalls == 0


class TestRingBufferModel:
    @given(
        capacities,
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6),
            min_size=0,
            max_size=64,
        ),
        st.data(),
    )
    def test_any_chunking_keeps_the_tail(self, capacity, samples, data):
        """values() is always the last ``capacity`` samples, in order,
        regardless of how pushes were chunked."""
        ring = RingBuffer(capacity)
        i = 0
        while i < len(samples):
            step = data.draw(
                st.integers(min_value=1, max_value=len(samples) - i),
                label="chunk",
            )
            chunk = samples[i: i + step]
            if len(chunk) == 1 and data.draw(st.booleans(), label="scalar"):
                ring.push(chunk[0])
            else:
                ring.push_batch(chunk)
            i += step
        expect = samples[-capacity:]
        assert ring.values().tolist() == expect
        assert len(ring) == len(expect)
        assert ring.full == (len(samples) >= capacity)
        if expect:
            # Summation order differs from np.mean; value must not.
            assert np.isclose(ring.mean(), np.mean(expect), rtol=1e-12)

    def test_drain_after_exhaustion_capacity_one(self):
        """A capacity-1 ring is 'last value wins' and stays usable."""
        ring = RingBuffer(1)
        ring.push_batch([1.0, 2.0, 3.0])
        assert ring.values().tolist() == [3.0]
        ring.push(4.0)
        assert ring.values().tolist() == [4.0]
        assert ring.mean() == 4.0


class TestTimeRingModel:
    @given(
        st.floats(min_value=0.1, max_value=50.0),
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=5.0),
                st.floats(min_value=-100.0, max_value=100.0),
            ),
            min_size=1,
            max_size=60,
        ),
    )
    def test_horizon_and_capacity_bounds(self, horizon_s, steps):
        """Retained samples are in-horizon (modulo the always-keep-one
        rule), ordered, and never exceed capacity."""
        ring = TimeRing(horizon_s, capacity=8)
        t = 0.0
        kept_model: list[tuple[float, float]] = []
        for dt, value in steps:
            t += dt
            ring.push(t, value)
            kept_model.append((t, value))
            kept_model = [
                (ts, v)
                for ts, v in kept_model
                if ts >= t - horizon_s - 1e-12
            ][-8:]
            if not kept_model:  # the ring always keeps the newest
                kept_model = [(t, value)]
            assert len(ring) == len(kept_model)
            assert ring.times().tolist() == [ts for ts, _ in kept_model]
            assert ring.values().tolist() == [v for _, v in kept_model]
            assert ring.span_s() <= horizon_s + 1e-9 or len(ring) == 1
