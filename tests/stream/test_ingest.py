"""Tests for repro.stream.ingest."""

import numpy as np
import pytest

from repro.stream.ingest import (
    BoundedQueue,
    IngestLoop,
    SampleBatch,
    SimClock,
    replay_run,
    replay_traces,
)
from repro.traces.powertrace import PowerTrace


def _batch(t0: float, n_ticks: int = 4, n_nodes: int = 3) -> SampleBatch:
    times = t0 + np.arange(n_ticks, dtype=float)
    watts = np.full((n_ticks, n_nodes), 100.0)
    return SampleBatch(
        times=times, watts=watts, node_ids=np.arange(n_nodes)
    )


class TestSimClock:
    def test_advances_deterministically(self):
        clock = SimClock(2.0, start_s=10.0)
        assert clock.now_s == pytest.approx(10.0)
        clock.advance(3)
        assert clock.now_s == pytest.approx(16.0)
        assert clock.tick == 3

    def test_rejects_backwards(self):
        clock = SimClock(1.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance(-1)

    def test_rejects_bad_dt(self):
        with pytest.raises(ValueError, match="positive"):
            SimClock(0.0)


class TestSampleBatch:
    def test_properties(self):
        b = _batch(100.0, n_ticks=5, n_nodes=2)
        assert b.n_ticks == 5
        assert b.n_nodes == 2
        assert b.n_samples == 10
        assert b.t0_s == pytest.approx(100.0)
        assert b.t1_s == pytest.approx(104.0)
        np.testing.assert_allclose(b.fleet_means(), 100.0)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            SampleBatch(
                times=np.zeros(3),
                watts=np.zeros(3),
                node_ids=np.zeros(1, dtype=np.int64),
            )
        with pytest.raises(ValueError, match="node_ids"):
            SampleBatch(
                times=np.zeros(3),
                watts=np.zeros((3, 2)),
                node_ids=np.zeros(5, dtype=np.int64),
            )


class TestBoundedQueue:
    def test_refuses_when_full(self):
        q = BoundedQueue(2)
        assert q.put(1)
        assert q.put(2)
        assert q.full
        assert not q.put(3)
        assert q.get() == 1
        assert q.put(3)
        assert q.total_accepted == 3
        assert q.high_watermark == 2

    def test_get_empty_raises(self):
        with pytest.raises(IndexError, match="empty"):
            BoundedQueue(1).get()

    def test_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            BoundedQueue(0)


class TestIngestLoop:
    def test_consumes_everything_in_order(self):
        batches = [_batch(10.0 * i) for i in range(20)]
        seen = []
        loop = IngestLoop(iter(batches), seen.append, queue_capacity=3)
        loop.run()
        assert [b.t0_s for b in seen] == [b.t0_s for b in batches]
        assert loop.batches_ingested == 20
        assert loop.samples_ingested == sum(b.n_samples for b in batches)

    def test_backpressure_stalls_counted(self):
        # Capacity 1 with no interleaved draining beyond the schedule:
        # every batch after the first must stall at least once.
        batches = [_batch(10.0 * i) for i in range(5)]
        loop = IngestLoop(
            iter(batches), lambda b: None, queue_capacity=1
        )
        loop.run()
        assert loop.batches_ingested == 5
        assert loop.stalls == 0  # drain_per_step=1 keeps pace exactly
        assert loop.queue.high_watermark == 1

    def test_slow_consumer_drain(self):
        # drain_per_step=1 but two batches offered per drain via a
        # generator that yields in bursts is not expressible here; use
        # capacity 1 and verify nothing is lost even when the producer
        # outpaces the consumer.
        batches = [_batch(10.0 * i) for i in range(7)]
        seen = []
        loop = IngestLoop(
            iter(batches), seen.append, queue_capacity=2, drain_per_step=1
        )
        loop.run()
        assert len(seen) == 7

    def test_bad_drain(self):
        with pytest.raises(ValueError, match="drain_per_step"):
            IngestLoop(iter([]), lambda b: None, drain_per_step=0)


class TestReplayRun:
    def test_batches_tile_the_core_phase(self, small_run, core_matrix):
        times, watts = core_matrix
        got_t, got_w = [], []
        for batch in replay_run(small_run, ticks_per_batch=64):
            assert batch.n_nodes == small_run.system.n_nodes
            got_t.append(batch.times)
            got_w.append(batch.watts)
        np.testing.assert_allclose(np.concatenate(got_t), times)
        np.testing.assert_allclose(np.vstack(got_w), watts)

    def test_subset_replay(self, small_run):
        idx = np.array([0, 5, 9])
        batches = list(
            replay_run(small_run, node_indices=idx, ticks_per_batch=128)
        )
        assert all(b.n_nodes == 3 for b in batches)
        np.testing.assert_array_equal(batches[0].node_ids, idx)

    def test_full_run_covers_setup_and_teardown(self, small_run):
        core = sum(
            b.n_ticks for b in replay_run(small_run, ticks_per_batch=256)
        )
        full = sum(
            b.n_ticks
            for b in replay_run(
                small_run, ticks_per_batch=256, core_only=False
            )
        )
        assert full > core

    def test_bad_ticks_per_batch(self, small_run):
        with pytest.raises(ValueError, match="ticks_per_batch"):
            next(replay_run(small_run, ticks_per_batch=0))


class TestReplayTraces:
    def test_stacks_aligned_traces(self):
        a = PowerTrace.constant(100.0, 10.0)
        b = PowerTrace.constant(200.0, 10.0)
        batches = list(replay_traces([a, b], ticks_per_batch=4))
        total = sum(bt.n_ticks for bt in batches)
        assert total == len(a)
        np.testing.assert_allclose(batches[0].watts[:, 0], 100.0)
        np.testing.assert_allclose(batches[0].watts[:, 1], 200.0)

    def test_misaligned_rejected(self):
        a = PowerTrace.constant(100.0, 10.0)
        b = PowerTrace.constant(100.0, 12.0)
        with pytest.raises(ValueError, match="align"):
            next(replay_traces([a, b]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            next(replay_traces([]))

    def test_node_ids_length_checked(self):
        a = PowerTrace.constant(100.0, 10.0)
        with pytest.raises(ValueError, match="node_ids"):
            next(replay_traces([a], node_ids=np.array([1, 2])))
