"""Tests for repro.stream.ring."""

import numpy as np
import pytest

from repro.stream.ring import RingBuffer, TimeRing


class TestRingBuffer:
    def test_fills_then_wraps(self):
        ring = RingBuffer(3)
        for v in (1.0, 2.0, 3.0, 4.0):
            ring.push(v)
        np.testing.assert_allclose(ring.values(), [2.0, 3.0, 4.0])
        assert ring.full
        assert len(ring) == 3

    def test_values_oldest_first_before_full(self):
        ring = RingBuffer(5)
        ring.push(1.0)
        ring.push(2.0)
        np.testing.assert_allclose(ring.values(), [1.0, 2.0])
        assert not ring.full

    def test_push_batch_equals_push_loop(self):
        data = np.arange(17, dtype=float)
        a, b = RingBuffer(7), RingBuffer(7)
        for v in data:
            a.push(float(v))
        b.push_batch(data)
        np.testing.assert_allclose(a.values(), b.values())

    def test_push_batch_larger_than_capacity(self):
        ring = RingBuffer(4)
        ring.push_batch(np.arange(100, dtype=float))
        np.testing.assert_allclose(ring.values(), [96.0, 97.0, 98.0, 99.0])

    def test_mean(self):
        ring = RingBuffer(3)
        ring.push_batch(np.array([1.0, 2.0, 3.0, 4.0]))
        assert ring.mean() == pytest.approx(3.0)

    def test_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            RingBuffer(0)


class TestTimeRing:
    def test_evicts_beyond_horizon(self):
        ring = TimeRing(10.0)
        for t in range(25):
            ring.push(float(t), float(t) * 2.0)
        times = ring.times()
        assert times.min() >= 24.0 - 10.0
        assert times.max() == pytest.approx(24.0)

    def test_mean_over_window(self):
        ring = TimeRing(5.0)
        for t in range(10):
            ring.push(float(t), 100.0)
        assert ring.mean() == pytest.approx(100.0)

    def test_span(self):
        ring = TimeRing(60.0)
        ring.push(0.0, 1.0)
        ring.push(12.0, 1.0)
        assert ring.span_s() == pytest.approx(12.0)

    def test_rejects_time_reversal(self):
        ring = TimeRing(10.0)
        ring.push(5.0, 1.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            ring.push(4.0, 1.0)

    def test_bad_horizon(self):
        with pytest.raises(ValueError, match="horizon"):
            TimeRing(0.0)
