"""Tests for repro.stream.estimators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.stream.estimators import P2Quantile, RunningCovariance, RunningMoments


@pytest.fixture()
def samples() -> np.ndarray:
    return np.random.default_rng(42).normal(200.0, 15.0, size=5000)


class TestRunningMoments:
    def test_matches_numpy(self, samples):
        m = RunningMoments()
        for x in samples:
            m.push(x)
        assert float(np.asarray(m.mean)) == pytest.approx(
            samples.mean(), rel=1e-12
        )
        assert float(np.asarray(m.variance())) == pytest.approx(
            samples.var(ddof=1), rel=1e-12
        )
        assert float(np.asarray(m.minimum)) == samples.min()
        assert float(np.asarray(m.maximum)) == samples.max()

    def test_push_batch_equals_push_loop(self, samples):
        a, b = RunningMoments(), RunningMoments()
        for x in samples:
            a.push(x)
        b.push_batch(samples)
        assert float(np.asarray(b.mean)) == pytest.approx(
            float(np.asarray(a.mean)), rel=1e-12
        )
        assert float(np.asarray(b.variance())) == pytest.approx(
            float(np.asarray(a.variance())), rel=1e-12
        )
        assert b.count == a.count

    def test_merge_exact(self, samples):
        left, right = RunningMoments(), RunningMoments()
        left.push_batch(samples[:1700])
        right.push_batch(samples[1700:])
        merged = left.merge(right)
        assert float(np.asarray(merged.mean)) == pytest.approx(
            samples.mean(), rel=1e-12
        )
        assert float(np.asarray(merged.variance())) == pytest.approx(
            samples.var(ddof=1), rel=1e-12
        )
        assert merged.count == samples.size

    def test_merge_with_empty(self, samples):
        m = RunningMoments()
        m.push_batch(samples)
        merged = m.merge(RunningMoments())
        assert merged.count == samples.size
        assert float(np.asarray(merged.mean)) == pytest.approx(
            samples.mean(), rel=1e-12
        )

    def test_vector_state_and_pooled(self, samples):
        mat = samples.reshape(-1, 4)
        m = RunningMoments()
        m.push_batch(mat)
        np.testing.assert_allclose(
            np.asarray(m.mean), mat.mean(axis=0), rtol=1e-12
        )
        pooled = m.pooled()
        assert float(np.asarray(pooled.mean)) == pytest.approx(
            samples.mean(), rel=1e-12
        )
        assert float(np.asarray(pooled.variance())) == pytest.approx(
            samples.var(ddof=1), rel=1e-12
        )

    def test_cv(self, samples):
        m = RunningMoments()
        m.push_batch(samples)
        assert float(np.asarray(m.cv())) == pytest.approx(
            samples.std(ddof=1) / samples.mean(), rel=1e-12
        )

    def test_variance_needs_two(self):
        m = RunningMoments()
        m.push(1.0)
        with pytest.raises(ValueError, match="more than"):
            m.variance()


class TestRunningCovariance:
    def test_matches_numpy(self, samples):
        y = 0.5 * samples + np.random.default_rng(7).normal(
            0.0, 5.0, samples.size
        )
        c = RunningCovariance()
        c.push_batch(samples, y)
        expected = np.cov(samples, y, ddof=1)[0, 1]
        assert float(np.asarray(c.covariance())) == pytest.approx(
            expected, rel=1e-10
        )
        expected_r = np.corrcoef(samples, y)[0, 1]
        assert float(np.asarray(c.correlation())) == pytest.approx(
            expected_r, rel=1e-10
        )

    def test_merge_exact(self, samples):
        y = samples[::-1].copy()
        a, b = RunningCovariance(), RunningCovariance()
        a.push_batch(samples[:2000], y[:2000])
        b.push_batch(samples[2000:], y[2000:])
        merged = a.merge(b)
        whole = RunningCovariance()
        whole.push_batch(samples, y)
        assert float(np.asarray(merged.covariance())) == pytest.approx(
            float(np.asarray(whole.covariance())), rel=1e-10
        )


#: Well-conditioned "node watts"-like values: positive, bounded spread,
#: so the exact-merge identities hold to ~1e-9 relative without being
#: swamped by catastrophic cancellation on adversarial floats.
_watt_streams = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=40),
    elements=st.floats(min_value=1.0, max_value=1e4),
)


def _moments(xs: np.ndarray) -> RunningMoments:
    m = RunningMoments()
    m.push_batch(xs)
    return m


def _close(a, b, rel=1e-9):
    assert float(np.asarray(a)) == pytest.approx(float(np.asarray(b)), rel=rel)


class TestMergeAlgebra:
    """Metamorphic determinism properties the parallel runner leans on:
    partial-stream merges must be associative and order-insensitive, or
    sharded telemetry would depend on which worker finished first."""

    @settings(max_examples=50, deadline=None)
    @given(_watt_streams, _watt_streams, _watt_streams)
    def test_moments_merge_associative(self, xs, ys, zs):
        left = _moments(xs).merge(_moments(ys)).merge(_moments(zs))
        right = _moments(xs).merge(_moments(ys).merge(_moments(zs)))
        assert left.count == right.count == xs.size + ys.size + zs.size
        _close(left.mean, right.mean)
        _close(left.minimum, right.minimum, rel=0)
        _close(left.maximum, right.maximum, rel=0)
        if left.count > 1:
            _close(left.variance(), right.variance(), rel=1e-8)

    @settings(max_examples=50, deadline=None)
    @given(_watt_streams, _watt_streams)
    def test_moments_merge_commutes(self, xs, ys):
        ab = _moments(xs).merge(_moments(ys))
        ba = _moments(ys).merge(_moments(xs))
        _close(ab.mean, ba.mean)
        if ab.count > 1:
            _close(ab.variance(), ba.variance(), rel=1e-8)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=60),
            elements=st.floats(min_value=1.0, max_value=1e4),
        ),
        st.randoms(use_true_random=False),
    )
    def test_moments_permutation_invariant(self, xs, shuffler):
        order = list(range(xs.size))
        shuffler.shuffle(order)
        direct = _moments(xs)
        shuffled = _moments(xs[np.asarray(order)])
        assert direct.count == shuffled.count
        _close(direct.mean, shuffled.mean)
        _close(direct.minimum, shuffled.minimum, rel=0)
        _close(direct.maximum, shuffled.maximum, rel=0)
        _close(direct.variance(), shuffled.variance(), rel=1e-8)

    @settings(max_examples=50, deadline=None)
    @given(_watt_streams, _watt_streams, _watt_streams)
    def test_covariance_merge_associative(self, xs, ys, zs):
        def cov_of(arr):
            c = RunningCovariance()
            c.push_batch(arr, np.sqrt(arr))
            return c

        left = cov_of(xs).merge(cov_of(ys)).merge(cov_of(zs))
        right = cov_of(xs).merge(cov_of(ys).merge(cov_of(zs)))
        assert left.count == right.count
        if left.count > 1:
            _close(left.covariance(), right.covariance(), rel=1e-8)

    @settings(max_examples=50, deadline=None)
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=2, max_value=60),
            elements=st.floats(min_value=1.0, max_value=1e4),
        ),
        st.randoms(use_true_random=False),
    )
    def test_covariance_permutation_invariant(self, xs, shuffler):
        ys = np.log(xs)
        order = list(range(xs.size))
        shuffler.shuffle(order)
        idx = np.asarray(order)
        direct = RunningCovariance()
        direct.push_batch(xs, ys)
        shuffled = RunningCovariance()
        shuffled.push_batch(xs[idx], ys[idx])
        _close(direct.covariance(), shuffled.covariance(), rel=1e-8)


class TestP2Quantile:
    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9, 0.95])
    def test_accuracy_on_stationary_stream(self, samples, q):
        est = P2Quantile(q)
        est.push_batch(samples)
        exact = np.quantile(samples, q)
        assert est.value == pytest.approx(exact, rel=0.01)

    def test_small_sample_exact(self):
        est = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            est.push(x)
        assert est.value == pytest.approx(3.0)

    def test_merge_approximation(self, samples):
        a, b = P2Quantile(0.5), P2Quantile(0.5)
        a.push_batch(samples[: samples.size // 2])
        b.push_batch(samples[samples.size // 2:])
        merged = a.merge(b)
        exact = np.quantile(samples, 0.5)
        assert merged.value == pytest.approx(exact, rel=0.01)
        assert merged.count == samples.size

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(0.0)
        with pytest.raises(ValueError, match="quantile"):
            P2Quantile(1.0)

    def test_empty_value_rejected(self):
        with pytest.raises(ValueError, match="no observations"):
            P2Quantile(0.5).value

    def test_mismatched_merge_rejected(self):
        a, b = P2Quantile(0.5), P2Quantile(0.95)
        a.push(1.0)
        b.push(1.0)
        with pytest.raises(ValueError, match="quantile"):
            a.merge(b)
