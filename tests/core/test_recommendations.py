"""Tests for repro.core.recommendations — the paper's new rules."""

import pytest

from repro.core.recommendations import (
    NEW_RULES,
    NewRules,
    meets_new_node_rule,
    meets_new_window_rule,
    recommended_measurement_nodes,
)
from repro.core.sampling import recommend_sample_size
from repro.core.windows import MeasurementWindow, full_core_window


class TestNodeRule:
    def test_sixteen_floor(self):
        # Large systems where 10% < ... wait: 10% of 100 = 10 < 16.
        assert recommended_measurement_nodes(100) == 16
        assert recommended_measurement_nodes(160) == 16

    def test_ten_percent_arm(self):
        assert recommended_measurement_nodes(210) == 21
        assert recommended_measurement_nodes(18_688) == 1869

    def test_capped_at_fleet(self):
        assert recommended_measurement_nodes(10) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            recommended_measurement_nodes(0)

    def test_meets(self):
        assert meets_new_node_rule(16, 100)
        assert not meets_new_node_rule(15, 100)
        assert meets_new_node_rule(21, 210)
        assert not meets_new_node_rule(16, 210)

    def test_sixteen_suffices_at_headroom_cv(self):
        # The paper chose 16 to reach the desired accuracy even at one
        # level greater variability (σ/μ = 5%) than observed: at the
        # observed band's 1.5% target accuracy, Eq. 5 agrees.
        need = recommend_sample_size(
            10_000, NEW_RULES.cv_headroom, accuracy=0.025
        )
        assert need.n <= NEW_RULES.min_nodes

    def test_paper_quoted_eleven_nodes(self):
        # "we find a measurement of at least 11 nodes to be reasonable
        # even for very large systems" — at cv=2.5%, λ=1.5%.
        need = recommend_sample_size(1_000_000, 0.025, accuracy=0.015)
        assert need.n == 11


class TestWindowRule:
    def test_full_core_passes(self):
        assert meets_new_window_rule(full_core_window())

    def test_partial_fails(self):
        assert not meets_new_window_rule(MeasurementWindow(0.1, 0.9))
        assert not meets_new_window_rule(MeasurementWindow(0.0, 0.99))


class TestCustomRules:
    def test_custom_fraction(self):
        rules = NewRules(min_nodes=8, node_fraction=0.25)
        assert recommended_measurement_nodes(100, rules) == 25
        assert recommended_measurement_nodes(20, rules) == 8
