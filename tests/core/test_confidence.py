"""Tests for repro.core.confidence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import (
    ConfidenceInterval,
    finite_population_correction,
    mean_confidence_interval,
    t_quantile,
    z_quantile,
)


class TestQuantiles:
    def test_z_95(self):
        assert z_quantile(0.95) == pytest.approx(1.959964, rel=1e-5)

    def test_z_80_99(self):
        assert z_quantile(0.80) == pytest.approx(1.281552, rel=1e-5)
        assert z_quantile(0.99) == pytest.approx(2.575829, rel=1e-5)

    def test_t_converges_to_z(self):
        assert t_quantile(0.95, 10_000) == pytest.approx(
            z_quantile(0.95), rel=1e-3
        )

    def test_t_exceeds_z(self):
        for dof in (1, 3, 14, 30):
            assert t_quantile(0.95, dof) > z_quantile(0.95)

    def test_t_at_14_dof(self):
        # The paper's n=15 case: t ≈ 2.1448, ~9% wider than z.
        t = t_quantile(0.95, 14)
        assert t == pytest.approx(2.1448, rel=1e-4)
        assert 1.0 - z_quantile(0.95) / t == pytest.approx(0.086, abs=0.005)

    def test_t_monotone_decreasing_in_dof(self):
        ts = [t_quantile(0.95, d) for d in (2, 5, 10, 50)]
        assert all(a > b for a, b in zip(ts, ts[1:]))

    def test_invalid_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            z_quantile(1.0)
        with pytest.raises(ValueError, match="confidence"):
            t_quantile(0.0, 5)

    def test_invalid_dof(self):
        with pytest.raises(ValueError, match="degrees of freedom"):
            t_quantile(0.95, 0)

    @given(st.floats(min_value=0.5, max_value=0.999))
    def test_z_monotone_in_confidence(self, c):
        assert z_quantile(min(c + 0.001, 0.9995)) > z_quantile(c)


class TestFpc:
    def test_full_census_zero(self):
        assert finite_population_correction(100, 100) == 0.0

    def test_tiny_sample_near_one(self):
        assert finite_population_correction(1, 10_000) == pytest.approx(
            1.0, abs=1e-4
        )

    def test_half_sample(self):
        # n = N/2: factor = sqrt((N/2)/(N-1)) ≈ sqrt(0.5).
        assert finite_population_correction(500, 1000) == pytest.approx(
            np.sqrt(500 / 999)
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="population"):
            finite_population_correction(1, 1)
        with pytest.raises(ValueError, match="1 <= n"):
            finite_population_correction(0, 10)
        with pytest.raises(ValueError, match="1 <= n"):
            finite_population_correction(11, 10)

    @given(st.integers(min_value=2, max_value=999))
    def test_fpc_in_unit_interval(self, n):
        f = finite_population_correction(n, 1000)
        assert 0.0 <= f <= 1.0


class TestConfidenceInterval:
    def test_bounds(self):
        ci = ConfidenceInterval(mean=100.0, half_width=5.0, confidence=0.95)
        assert ci.lower == 95.0
        assert ci.upper == 105.0
        assert ci.relative_half_width == pytest.approx(0.05)

    def test_contains(self):
        ci = ConfidenceInterval(100.0, 5.0, 0.95)
        assert ci.contains(100.0)
        assert ci.contains(95.0) and ci.contains(105.0)
        assert not ci.contains(94.9)

    def test_scaled(self):
        ci = ConfidenceInterval(100.0, 5.0, 0.95).scaled(64)
        assert ci.mean == 6400.0
        assert ci.half_width == 320.0
        assert ci.relative_half_width == pytest.approx(0.05)

    def test_str(self):
        s = str(ConfidenceInterval(100.0, 5.0, 0.95, "t"))
        assert "95%" in s and "t-CI" in s

    def test_validation(self):
        with pytest.raises(ValueError, match="half_width"):
            ConfidenceInterval(1.0, -0.1, 0.95)
        with pytest.raises(ValueError, match="method"):
            ConfidenceInterval(1.0, 0.1, 0.95, method="w")
        with pytest.raises(ValueError, match="undefined"):
            _ = ConfidenceInterval(0.0, 0.1, 0.95).relative_half_width


class TestMeanConfidenceInterval:
    def test_matches_formula(self, rng):
        x = rng.normal(200.0, 5.0, 25)
        ci = mean_confidence_interval(x, confidence=0.95, method="t")
        expected_hw = t_quantile(0.95, 24) * x.std(ddof=1) / np.sqrt(25)
        assert ci.mean == pytest.approx(x.mean())
        assert ci.half_width == pytest.approx(expected_hw)

    def test_z_narrower_than_t(self, rng):
        x = rng.normal(100.0, 3.0, 10)
        t_ci = mean_confidence_interval(x, method="t")
        z_ci = mean_confidence_interval(x, method="z")
        assert z_ci.half_width < t_ci.half_width

    def test_fpc_shrinks_interval(self, rng):
        x = rng.normal(100.0, 3.0, 50)
        plain = mean_confidence_interval(x)
        corrected = mean_confidence_interval(x, population=60)
        assert corrected.half_width < plain.half_width

    def test_width_shrinks_with_n(self, rng):
        base = rng.normal(100.0, 3.0, 400)
        small = mean_confidence_interval(base[:16])
        large = mean_confidence_interval(base)
        assert large.half_width < small.half_width

    def test_empirical_coverage(self, rng):
        # 95% t-intervals on normal data must cover ~95% of the time.
        hits = 0
        trials = 2000
        for _ in range(trials):
            x = rng.normal(50.0, 4.0, 12)
            ci = mean_confidence_interval(x, confidence=0.95)
            hits += ci.contains(50.0)
        assert hits / trials == pytest.approx(0.95, abs=0.02)

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="at least two"):
            mean_confidence_interval([5.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            mean_confidence_interval([1.0, float("nan")])

    def test_bad_method(self, rng):
        with pytest.raises(ValueError, match="method"):
            mean_confidence_interval(rng.normal(size=5), method="bayes")
