"""Tests for repro.core.planning — plans and error budgets."""

import pytest

from repro.core.planning import (
    ErrorBudget,
    InstrumentationConstraints,
    MeasurementPlan,
    plan_measurement,
)
from repro.metering.meter import MeterSpec


class TestErrorBudget:
    def test_rss_and_worst_case(self):
        b = ErrorBudget(sampling=0.03, instrument=0.04, window_bias=0.0,
                        conversion=0.0)
        assert b.rss == pytest.approx(0.05)
        assert b.worst_case == pytest.approx(0.07)

    def test_dominant_term(self):
        b = ErrorBudget(sampling=0.01, instrument=0.002, window_bias=0.12,
                        conversion=0.0)
        assert b.dominant_term() == "window_bias"

    def test_lines_render(self):
        b = ErrorBudget(0.01, 0.01, 0.0, 0.0)
        text = "\n".join(b.lines())
        assert "RSS" in text and "worst case" in text


class TestConstraints:
    def test_max_nodes(self):
        c = InstrumentationConstraints(n_meters=3, channels_per_meter=24)
        assert c.max_nodes == 72

    def test_validation(self):
        with pytest.raises(ValueError, match="n_meters"):
            InstrumentationConstraints(n_meters=0)
        with pytest.raises(ValueError, match="channels"):
            InstrumentationConstraints(channels_per_meter=0)
        with pytest.raises(ValueError, match="machine_class"):
            InstrumentationConstraints(machine_class="fpga")
        with pytest.raises(ValueError, match="conversion"):
            InstrumentationConstraints(conversion_modeling_error=-0.1)


class TestPlanMeasurement:
    def test_feasible_plan(self):
        c = InstrumentationConstraints(
            n_meters=4, channels_per_meter=24,
            meter_spec=MeterSpec(gain_error_cv=0.002),
        )
        plan = plan_measurement(10_000, cv=0.025, target_lambda=0.02,
                                constraints=c)
        assert plan.feasible
        assert plan.n_nodes_to_measure >= 16  # new-rule floor

    def test_meter_pool_caps_nodes(self):
        c = InstrumentationConstraints(n_meters=1, channels_per_meter=8)
        plan = plan_measurement(10_000, cv=0.05, target_lambda=0.005,
                                constraints=c)
        assert plan.n_nodes_to_measure == 8
        assert not plan.feasible  # can't reach ±0.5% with 8 nodes

    def test_partial_window_dominates_gpu_budget(self):
        c = InstrumentationConstraints(
            n_meters=4, channels_per_meter=24,
            full_core_window=False, machine_class="gpu",
        )
        plan = plan_measurement(10_000, cv=0.02, target_lambda=0.02,
                                constraints=c)
        assert plan.budget.dominant_term() == "window_bias"
        assert not plan.feasible

    def test_full_core_removes_window_term(self):
        c = InstrumentationConstraints(full_core_window=True,
                                       machine_class="gpu")
        plan = plan_measurement(10_000, cv=0.02, target_lambda=0.02,
                                constraints=c)
        assert plan.budget.window_bias == 0.0

    def test_better_meters_tighter_budget(self):
        coarse = InstrumentationConstraints(
            meter_spec=MeterSpec(gain_error_cv=0.015)
        )
        fine = InstrumentationConstraints(
            meter_spec=MeterSpec(gain_error_cv=0.002)
        )
        p_coarse = plan_measurement(10_000, 0.025, 0.02, coarse)
        p_fine = plan_measurement(10_000, 0.025, 0.02, fine)
        assert p_fine.budget.rss < p_coarse.budget.rss

    def test_more_meters_average_gain(self):
        one = InstrumentationConstraints(
            n_meters=1, channels_per_meter=64,
            meter_spec=MeterSpec(gain_error_cv=0.01),
        )
        four = InstrumentationConstraints(
            n_meters=4, channels_per_meter=16,
            meter_spec=MeterSpec(gain_error_cv=0.01),
        )
        p1 = plan_measurement(10_000, 0.02, 0.01, one)
        p4 = plan_measurement(10_000, 0.02, 0.01, four)
        assert p4.budget.instrument < p1.budget.instrument

    def test_conversion_term_included(self):
        c = InstrumentationConstraints(conversion_modeling_error=0.03)
        plan = plan_measurement(10_000, 0.02, 0.02, c)
        assert plan.budget.conversion == 0.03

    def test_summary_renders(self):
        plan = plan_measurement(1000, 0.02, 0.02)
        text = plan.summary()
        assert "error budget" in text
        assert "verdict" in text

    def test_small_fleet_capped(self):
        plan = plan_measurement(
            10, 0.02, 0.001,
            InstrumentationConstraints(n_meters=10, channels_per_meter=10),
        )
        assert plan.n_nodes_to_measure == 10

    def test_validation(self):
        with pytest.raises(ValueError, match="target_lambda"):
            plan_measurement(100, 0.02, 0.0)
