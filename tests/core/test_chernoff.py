"""Tests for the Chernoff-Hoeffding baseline rule (repro.core.sampling)."""

import math

import pytest

from repro.core.sampling import (
    chernoff_hoeffding_sample_size,
    recommend_sample_size,
)


class TestChernoffHoeffding:
    def test_closed_form(self):
        # n = (b-a)^2 ln(2/alpha) / (2 (λ μ)^2)
        n = chernoff_hoeffding_sample_size((300.0, 500.0), 400.0, 0.01)
        expected = (200.0**2) * math.log(2 / 0.05) / (2 * (0.01 * 400.0) ** 2)
        assert n == math.ceil(expected)

    def test_much_more_conservative_than_eq5(self):
        # The paper's Section 2.1 point, quantitatively.
        eq5 = recommend_sample_size(10_000, 0.025, 0.01).n
        ch = chernoff_hoeffding_sample_size((300.0, 550.0), 400.0, 0.01)
        assert ch > 50 * eq5

    def test_tighter_range_fewer_nodes(self):
        wide = chernoff_hoeffding_sample_size((200.0, 600.0), 400.0, 0.01)
        tight = chernoff_hoeffding_sample_size((380.0, 420.0), 400.0, 0.01)
        assert tight < wide

    def test_quadratic_in_accuracy(self):
        a = chernoff_hoeffding_sample_size((300.0, 500.0), 400.0, 0.01)
        b = chernoff_hoeffding_sample_size((300.0, 500.0), 400.0, 0.02)
        assert a / b == pytest.approx(4.0, rel=0.01)

    def test_higher_confidence_more_nodes(self):
        lo = chernoff_hoeffding_sample_size((300.0, 500.0), 400.0, 0.01,
                                            confidence=0.90)
        hi = chernoff_hoeffding_sample_size((300.0, 500.0), 400.0, 0.01,
                                            confidence=0.99)
        assert hi > lo

    def test_validation(self):
        with pytest.raises(ValueError, match="a < b"):
            chernoff_hoeffding_sample_size((500.0, 300.0), 400.0)
        with pytest.raises(ValueError, match="inside the power range"):
            chernoff_hoeffding_sample_size((300.0, 500.0), 600.0)
        with pytest.raises(ValueError, match="accuracy"):
            chernoff_hoeffding_sample_size((300.0, 500.0), 400.0, 0.0)
        with pytest.raises(ValueError, match="confidence"):
            chernoff_hoeffding_sample_size((300.0, 500.0), 400.0, 0.01,
                                           confidence=1.0)
