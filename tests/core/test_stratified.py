"""Tests for repro.core.stratified — the imbalanced-fleet repair."""

import numpy as np
import pytest

from repro.cluster.registry import get_system, workload_utilisation
from repro.core.stratified import (
    allocate_stratified,
    quantile_strata,
    stratified_estimate,
    stratified_sample,
)
from repro.workloads.schedule import imbalanced


class TestQuantileStrata:
    def test_labels_in_range(self, rng):
        x = rng.normal(size=100)
        lab = quantile_strata(x, 4)
        assert set(np.unique(lab)) <= {0, 1, 2, 3}

    def test_roughly_equal_strata(self, rng):
        x = rng.normal(size=1000)
        lab = quantile_strata(x, 5)
        counts = np.bincount(lab)
        assert counts.min() > 150

    def test_ordered_by_value(self, rng):
        x = rng.normal(size=500)
        lab = quantile_strata(x, 3)
        assert x[lab == 0].max() <= x[lab == 2].min() + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            quantile_strata([], 2)
        with pytest.raises(ValueError, match="n_strata"):
            quantile_strata([1.0, 2.0], 3)


class TestAllocation:
    def test_proportional(self):
        alloc = allocate_stratified([100, 300], 40)
        assert alloc.sum() == 40
        assert alloc[1] == pytest.approx(3 * alloc[0], abs=2)

    def test_neyman_favours_noisy_strata(self):
        alloc = allocate_stratified(
            [200, 200], 40, method="neyman", strata_sds=[1.0, 9.0]
        )
        assert alloc.sum() == 40
        assert alloc[1] > 3 * alloc[0]

    def test_minimum_two_each(self):
        alloc = allocate_stratified([500, 4], 6)
        assert np.all(alloc >= 2)
        assert alloc.sum() == 6

    def test_capped_by_stratum(self):
        alloc = allocate_stratified([4, 400], 100)
        assert alloc[0] <= 4
        assert alloc.sum() == 100

    def test_validation(self):
        with pytest.raises(ValueError, match="two nodes"):
            allocate_stratified([1, 100], 10)
        with pytest.raises(ValueError, match="n_total"):
            allocate_stratified([10, 10], 2)
        with pytest.raises(ValueError, match="exceeds"):
            allocate_stratified([5, 5], 11)
        with pytest.raises(ValueError, match="requires strata_sds"):
            allocate_stratified([10, 10], 8, method="neyman")
        with pytest.raises(ValueError, match="unknown allocation"):
            allocate_stratified([10, 10], 8, method="equal")


class TestEstimate:
    def test_exact_on_census(self, rng):
        a = rng.normal(100, 5, 40)
        b = rng.normal(300, 10, 60)
        est = stratified_estimate([a, b], [40, 60])
        truth = np.concatenate([a, b]).mean()
        assert est.mean == pytest.approx(truth)
        assert est.standard_error == pytest.approx(0.0, abs=1e-9)

    def test_weighted_mean(self, rng):
        a = rng.normal(100, 1, 10)
        b = rng.normal(200, 1, 10)
        est = stratified_estimate([a, b], [900, 100])
        assert est.mean == pytest.approx(
            0.9 * a.mean() + 0.1 * b.mean()
        )

    def test_interval_contains_mean(self, rng):
        a = rng.normal(100, 5, 10)
        est = stratified_estimate([a, rng.normal(200, 5, 10)], [500, 500])
        ci = est.interval()
        assert ci.contains(est.mean)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="per stratum"):
            stratified_estimate([rng.normal(size=5)], [10, 10])
        with pytest.raises(ValueError, match=">= 2"):
            stratified_estimate([np.array([1.0])], [10])
        with pytest.raises(ValueError, match="larger than"):
            stratified_estimate([rng.normal(size=20)], [10])


class TestStragglerRepair:
    """The headline: stratification restores calibrated coverage on the
    fleet that broke simple random sampling in experiment X1."""

    @pytest.fixture(scope="class")
    def broken_fleet(self):
        system = get_system("tu-dresden")
        rng = np.random.default_rng(0)
        schedule = imbalanced(
            system.n_nodes, rng, spread=0.10, straggler_rate=0.08,
            straggler_level=0.4,
        )
        watts = system.node_sample(
            workload_utilisation("tu-dresden"), schedule=schedule
        ).watts
        # The site knows its job placement: straggler shards are a
        # known label, not something inferred from the power data.
        labels = (schedule.multipliers < 0.7).astype(int)
        return watts, labels

    def test_simple_random_undercovers(self, broken_fleet):
        watts, _ = broken_fleet
        from repro.core.confidence import mean_confidence_interval

        rng = np.random.default_rng(1)
        truth = watts.mean()
        hits = 0
        trials = 1500
        for _ in range(trials):
            idx = rng.choice(watts.size, size=16, replace=False)
            ci = mean_confidence_interval(watts[idx], confidence=0.95)
            hits += ci.contains(truth)
        assert hits / trials < 0.88

    def test_stratified_restores_coverage(self, broken_fleet):
        watts, labels = broken_fleet
        rng = np.random.default_rng(2)
        truth = watts.mean()
        hits = 0
        trials = 1500
        for _ in range(trials):
            est = stratified_sample(watts, labels, 16, rng)
            hits += est.interval(0.95).contains(truth)
        assert hits / trials > 0.92

    def test_stratified_tighter_than_srs(self, broken_fleet):
        watts, labels = broken_fleet
        rng = np.random.default_rng(3)
        est = stratified_sample(watts, labels, 32, rng, method="neyman")
        from repro.core.confidence import mean_confidence_interval

        idx = rng.choice(watts.size, size=32, replace=False)
        srs = mean_confidence_interval(watts[idx], confidence=0.95)
        assert est.interval(0.95).half_width < srs.half_width
