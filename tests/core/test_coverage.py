"""Tests for repro.core.coverage — the Figure 3 engine."""

import numpy as np
import pytest

from repro.core.coverage import coverage_study


@pytest.fixture()
def normal_pilot(rng):
    return rng.normal(210.0, 5.3, 516)


class TestCoverageStudy:
    def test_t_calibrated_on_normal_data(self, normal_pilot, rng):
        res = coverage_study(
            normal_pilot, population=9216, sample_sizes=(3, 5, 10),
            n_sims=30_000, rng=rng,
        )
        assert res.max_miscalibration() < 0.012
        assert res.is_calibrated(tolerance=0.012)

    def test_result_shape(self, normal_pilot, rng):
        res = coverage_study(
            normal_pilot, population=2000, sample_sizes=(5, 10),
            confidences=(0.80, 0.95), n_sims=2000, rng=rng,
        )
        assert res.coverage.shape == (2, 2)
        assert res.standard_error.shape == (2, 2)

    def test_coverage_for_lookup(self, normal_pilot, rng):
        res = coverage_study(
            normal_pilot, population=2000, sample_sizes=(5,),
            confidences=(0.80, 0.95), n_sims=2000, rng=rng,
        )
        np.testing.assert_array_equal(
            res.coverage_for(0.95), res.coverage[1]
        )
        with pytest.raises(KeyError):
            res.coverage_for(0.90)

    def test_z_undercovers_at_small_n(self, normal_pilot):
        res_z = coverage_study(
            normal_pilot, population=9216, sample_sizes=(5,),
            confidences=(0.95,), n_sims=50_000, method="z",
            rng=np.random.default_rng(0),
        )
        # z at n=5: intervals far too narrow → well under 95%.
        assert res_z.coverage[0, 0] < 0.92

    def test_deterministic(self, normal_pilot):
        a = coverage_study(
            normal_pilot, population=1000, sample_sizes=(5,),
            n_sims=5000, rng=np.random.default_rng(3),
        )
        b = coverage_study(
            normal_pilot, population=1000, sample_sizes=(5,),
            n_sims=5000, rng=np.random.default_rng(3),
        )
        np.testing.assert_array_equal(a.coverage, b.coverage)

    def test_small_population_exact_path(self, rng):
        # population − n below the CLT threshold exercises the exact
        # multinomial branch.
        pilot = rng.normal(100.0, 4.0, 60)
        res = coverage_study(
            pilot, population=500, sample_sizes=(5, 20),
            confidences=(0.95,), n_sims=20_000, rng=rng,
        )
        assert abs(res.coverage[0, 0] - 0.95) < 0.015
        assert abs(res.coverage[0, 1] - 0.95) < 0.015

    def test_census_sample(self, rng):
        # n == population: the sample mean IS the population mean, so
        # coverage is 1 regardless of the interval.
        pilot = rng.normal(100.0, 4.0, 40)
        res = coverage_study(
            pilot, population=10, sample_sizes=(10,),
            confidences=(0.95,), n_sims=2000, rng=rng,
        )
        assert res.coverage[0, 0] == 1.0

    def test_outlier_contamination_still_calibrated(self, rng):
        # The paper's core robustness finding: mild outliers do not
        # break calibration at n >= 5.
        pilot = rng.normal(210.0, 5.0, 516)
        outliers = rng.choice(516, size=6, replace=False)
        pilot[outliers] += rng.uniform(25.0, 60.0, size=6)
        res = coverage_study(
            pilot, population=9216, sample_sizes=(5, 10, 20),
            n_sims=40_000, rng=rng,
        )
        assert res.max_miscalibration() < 0.02

    def test_chunked_bit_identical_to_serial(self, normal_pilot):
        # Multiple RNG blocks (n_sims > RNG_BLOCK) exercised on 1, 2
        # and 7 workers: hit counts are per-block integers, so every
        # grouping sums to exactly the same coverage.
        results = [
            coverage_study(
                normal_pilot, population=9216, sample_sizes=(3, 10),
                n_sims=12_345, rng=np.random.default_rng(7), jobs=jobs,
            )
            for jobs in (1, 2, 7)
        ]
        for chunked in results[1:]:
            np.testing.assert_array_equal(
                results[0].coverage, chunked.coverage
            )
            np.testing.assert_array_equal(
                results[0].standard_error, chunked.standard_error
            )

    def test_partial_trailing_block(self, normal_pilot):
        # n_sims that is not a multiple of RNG_BLOCK still runs every
        # replicate (coverage is a fraction of exactly n_sims).
        from repro.core.coverage import RNG_BLOCK

        n_sims = RNG_BLOCK + 17
        res = coverage_study(
            normal_pilot, population=2000, sample_sizes=(5,),
            confidences=(0.95,), n_sims=n_sims,
            rng=np.random.default_rng(1),
        )
        hits = res.coverage[0, 0] * n_sims
        assert abs(hits - round(hits)) < 1e-9

    def test_validation(self, normal_pilot, rng):
        with pytest.raises(ValueError, match="at least two"):
            coverage_study([1.0], population=100, rng=rng)
        with pytest.raises(ValueError, match="jobs"):
            coverage_study(normal_pilot, population=100,
                           sample_sizes=(5,), jobs=0, rng=rng)
        with pytest.raises(ValueError, match="smaller than"):
            coverage_study(normal_pilot, population=5,
                           sample_sizes=(10,), rng=rng)
        with pytest.raises(ValueError, match=">= 2"):
            coverage_study(normal_pilot, population=100,
                           sample_sizes=(1,), rng=rng)
        with pytest.raises(ValueError, match="method"):
            coverage_study(normal_pilot, population=100,
                           sample_sizes=(5,), method="bootstrap", rng=rng)
        with pytest.raises(ValueError, match="n_sims"):
            coverage_study(normal_pilot, population=100,
                           sample_sizes=(5,), n_sims=0, rng=rng)
