"""Tests for repro.core.accuracy."""

import pytest

from repro.core.accuracy import assess_accuracy


class TestAssessAccuracy:
    def test_basic(self, rng):
        x = rng.normal(400.0, 8.0, 32)
        a = assess_accuracy(x, 2048)
        assert a.achieved_lambda > 0
        assert a.cv == pytest.approx(8.0 / 400.0, rel=0.4)
        assert a.meets_target is None

    def test_target_met(self, rng):
        x = rng.normal(400.0, 8.0, 370)
        a = assess_accuracy(x, 10_000, target_lambda=0.01)
        assert a.meets_target is True

    def test_target_missed(self, rng):
        x = rng.normal(400.0, 20.0, 4)
        a = assess_accuracy(x, 10_000, target_lambda=0.001)
        assert a.meets_target is False

    def test_summary_contains_verdict(self, rng):
        x = rng.normal(400.0, 8.0, 16)
        good = assess_accuracy(x, 1000, target_lambda=0.5)
        bad = assess_accuracy(x, 1000, target_lambda=1e-6)
        assert "meets" in good.summary()
        assert "MISSES" in bad.summary()

    def test_interval_property(self, rng):
        x = rng.normal(400.0, 8.0, 16)
        a = assess_accuracy(x, 1000)
        assert a.interval.mean == pytest.approx(x.mean() * 1000)

    def test_more_nodes_tighter(self, rng):
        fleet = rng.normal(400.0, 8.0, 2000)
        small = assess_accuracy(fleet[:8], 2000)
        large = assess_accuracy(fleet[:256], 2000)
        assert large.achieved_lambda < small.achieved_lambda

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            assess_accuracy([0.0, 0.0, 0.0], 100)
