"""Tests for repro.core.windows."""

import numpy as np
import pytest

from repro.core.windows import (
    LEVEL1_MIN_FRACTION,
    MeasurementWindow,
    full_core_window,
    is_legal_level1_window,
    legal_level1_windows,
    level2_window_starts,
)


class TestMeasurementWindow:
    def test_basic(self):
        w = MeasurementWindow(0.1, 0.3)
        assert w.length == pytest.approx(0.2)
        assert w.seconds(1000.0) == pytest.approx(200.0)

    def test_to_absolute(self):
        w = MeasurementWindow(0.25, 0.75)
        assert w.to_absolute(100.0, 1000.0) == (350.0, 850.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="start < end"):
            MeasurementWindow(0.5, 0.5)
        with pytest.raises(ValueError, match="start < end"):
            MeasurementWindow(-0.1, 0.5)
        with pytest.raises(ValueError, match="positive"):
            MeasurementWindow(0.1, 0.2).seconds(0.0)

    def test_str(self):
        assert "0.100" in str(MeasurementWindow(0.1, 0.26))


class TestFullCore:
    def test_full(self):
        w = full_core_window()
        assert w.start == 0.0 and w.end == 1.0


class TestLevel1Legality:
    def test_minimal_legal(self):
        w = MeasurementWindow(0.1, 0.1 + LEVEL1_MIN_FRACTION)
        assert is_legal_level1_window(w, 5400.0)

    def test_too_short(self):
        w = MeasurementWindow(0.4, 0.5)
        assert not is_legal_level1_window(w, 5400.0)

    def test_outside_middle80(self):
        w = MeasurementWindow(0.05, 0.25)
        assert not is_legal_level1_window(w, 5400.0)
        w2 = MeasurementWindow(0.75, 0.95)
        assert not is_legal_level1_window(w2, 5400.0)

    def test_one_minute_floor_dominates_short_runs(self):
        # 300 s core: 16% is 48 s < 60 s, so a 16% window is illegal.
        w = MeasurementWindow(0.4, 0.4 + LEVEL1_MIN_FRACTION)
        assert not is_legal_level1_window(w, 300.0)
        # A 20%+ window (60 s) is legal.
        w2 = MeasurementWindow(0.4, 0.6)
        assert is_legal_level1_window(w2, 300.0)

    def test_bad_runtime(self):
        with pytest.raises(ValueError, match="positive"):
            is_legal_level1_window(full_core_window(), 0.0)


class TestEnumerate:
    def test_all_enumerated_legal(self):
        for w in legal_level1_windows(5400.0, n_placements=25):
            assert is_legal_level1_window(w, 5400.0)

    def test_covers_placement_range(self):
        ws = legal_level1_windows(5400.0, n_placements=50)
        assert ws[0].start == pytest.approx(0.1)
        assert ws[-1].end == pytest.approx(0.9)

    def test_custom_length(self):
        ws = legal_level1_windows(5400.0, length=0.3, n_placements=10)
        assert all(w.length == pytest.approx(0.3) for w in ws)

    def test_too_short_length_rejected(self):
        with pytest.raises(ValueError, match="legal minimum"):
            legal_level1_windows(5400.0, length=0.05)

    def test_oversized_length_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            legal_level1_windows(5400.0, length=0.85)

    def test_single_placement(self):
        ws = legal_level1_windows(5400.0, n_placements=1)
        assert len(ws) == 1


class TestLevel2Windows:
    def test_default_ten(self):
        starts = level2_window_starts()
        assert starts.shape == (10,)
        np.testing.assert_allclose(starts, np.arange(10) / 10)

    def test_tiles_core(self):
        starts = level2_window_starts(4)
        widths = 1.0 / 4
        ends = starts + widths
        assert ends[-1] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            level2_window_starts(0)
