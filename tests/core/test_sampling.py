"""Tests for repro.core.sampling — the Eq. 3-5 sample-size rule."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import (
    achieved_accuracy,
    recommend_sample_size,
    required_sample_size_infinite,
    sample_size_table,
    two_step_pilot_plan,
)


class TestInfiniteFormula:
    def test_eq4_value(self):
        # n0 = (1.96/0.01 * 0.02)^2 ≈ 15.37.
        n0 = required_sample_size_infinite(0.02, 0.01)
        assert n0 == pytest.approx(15.366, rel=1e-3)

    def test_quadratic_in_cv(self):
        a = required_sample_size_infinite(0.02, 0.01)
        b = required_sample_size_infinite(0.04, 0.01)
        assert b / a == pytest.approx(4.0)

    def test_inverse_quadratic_in_accuracy(self):
        a = required_sample_size_infinite(0.02, 0.01)
        b = required_sample_size_infinite(0.02, 0.02)
        assert a / b == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="cv"):
            required_sample_size_infinite(0.0, 0.01)
        with pytest.raises(ValueError, match="accuracy"):
            required_sample_size_infinite(0.02, 0.0)

    @given(
        st.floats(min_value=0.005, max_value=0.2),
        st.floats(min_value=0.002, max_value=0.1),
        st.floats(min_value=0.6, max_value=0.995),
    )
    def test_positive(self, cv, lam, conf):
        assert required_sample_size_infinite(cv, lam, conf) > 0


class TestRecommendSampleSize:
    def test_paper_table5_spot_checks(self):
        assert recommend_sample_size(10_000, 0.02, 0.01).n == 16
        assert recommend_sample_size(10_000, 0.03, 0.005).n == 137
        assert recommend_sample_size(10_000, 0.05, 0.005).n == 370
        assert recommend_sample_size(10_000, 0.02, 0.02).n == 4

    def test_fpc_reduces_requirement(self):
        # Small fleet: the FPC caps the requirement well below n0.
        res = recommend_sample_size(100, 0.05, 0.005)
        assert res.n < res.n0
        assert res.n <= 100

    def test_capped_at_fleet(self):
        res = recommend_sample_size(10, 0.10, 0.001)
        assert res.n == 10

    def test_minimum_two(self):
        res = recommend_sample_size(10_000, 0.001, 0.5)
        assert res.n == 2

    def test_str(self):
        s = str(recommend_sample_size(10_000, 0.02, 0.01))
        assert "16" in s and "10000" in s

    def test_bad_fleet(self):
        with pytest.raises(ValueError, match="n_nodes"):
            recommend_sample_size(0, 0.02, 0.01)

    @given(
        st.integers(min_value=2, max_value=100_000),
        st.floats(min_value=0.005, max_value=0.1),
        st.floats(min_value=0.002, max_value=0.05),
    )
    @settings(max_examples=60)
    def test_invariants(self, n_nodes, cv, lam):
        res = recommend_sample_size(n_nodes, cv, lam)
        # Always feasible, and the FPC never *increases* the requirement
        # (the n_exact ≤ n0 identity holds whenever n0 ≥ 1; below one
        # node the formula is moot since the floor of 2 applies).
        assert 2 <= res.n <= n_nodes
        assert res.n_exact <= max(res.n0, 1.0) + 1e-9

    @given(st.floats(min_value=0.005, max_value=0.08))
    @settings(max_examples=30)
    def test_monotone_in_cv(self, cv):
        lo = recommend_sample_size(10_000, cv, 0.01).n
        hi = recommend_sample_size(10_000, cv * 1.5, 0.01).n
        assert hi >= lo

    @given(st.floats(min_value=0.003, max_value=0.05))
    @settings(max_examples=30)
    def test_monotone_in_accuracy(self, lam):
        strict = recommend_sample_size(10_000, 0.03, lam).n
        loose = recommend_sample_size(10_000, 0.03, lam * 2).n
        assert strict >= loose

    @given(st.integers(min_value=50, max_value=100_000))
    @settings(max_examples=30)
    def test_monotone_in_population(self, n_nodes):
        small = recommend_sample_size(n_nodes, 0.03, 0.01).n
        large = recommend_sample_size(n_nodes * 2, 0.03, 0.01).n
        assert large >= small


class TestSampleSizeTable:
    def test_paper_exact(self):
        tbl = sample_size_table()
        expected = np.array([[62, 137, 370], [16, 35, 96],
                             [7, 16, 43], [4, 9, 24]])
        np.testing.assert_array_equal(tbl, expected)

    def test_shape(self):
        tbl = sample_size_table(accuracies=(0.01,), cvs=(0.02, 0.05))
        assert tbl.shape == (1, 2)

    def test_rows_decrease_columns_increase(self):
        tbl = sample_size_table()
        assert np.all(np.diff(tbl, axis=0) <= 0)  # looser λ → fewer nodes
        assert np.all(np.diff(tbl, axis=1) >= 0)  # higher cv → more nodes


class TestAchievedAccuracy:
    def test_paper_examples(self):
        assert achieved_accuracy(4, 210, 0.02) == pytest.approx(0.032, abs=0.002)
        assert achieved_accuracy(292, 18_688, 0.02) == pytest.approx(
            0.002, abs=0.0005
        )

    def test_z_vs_t(self):
        t_acc = achieved_accuracy(4, 210, 0.02, method="t")
        z_acc = achieved_accuracy(4, 210, 0.02, method="z")
        assert z_acc < t_acc

    def test_census_gives_zero(self):
        assert achieved_accuracy(210, 210, 0.02) == 0.0

    def test_more_nodes_better(self):
        accs = [achieved_accuracy(n, 10_000, 0.02) for n in (4, 16, 64, 256)]
        assert all(a > b for a, b in zip(accs, accs[1:]))

    def test_validation(self):
        with pytest.raises(ValueError, match="2 <= n"):
            achieved_accuracy(1, 100, 0.02)
        with pytest.raises(ValueError, match="method"):
            achieved_accuracy(5, 100, 0.02, method="x")

    def test_roundtrip_with_recommendation(self):
        # Measuring the recommended n achieves at least the target λ.
        for cv in (0.02, 0.03, 0.05):
            for lam in (0.005, 0.01, 0.02):
                n = recommend_sample_size(10_000, cv, lam).n
                got = achieved_accuracy(n, 10_000, cv, method="z")
                assert got <= lam * 1.001


class TestTwoStepPilot:
    def test_plan_from_pilot(self, rng):
        pilot = rng.normal(200.0, 4.0, 10)
        plan = two_step_pilot_plan(9216, pilot, accuracy=0.01)
        assert 2 <= plan.n <= 9216
        assert plan.cv == pytest.approx(pilot.std(ddof=1) / pilot.mean())

    def test_t_plan_conservative(self, rng):
        pilot = rng.normal(200.0, 4.0, 10)
        t_plan = two_step_pilot_plan(9216, pilot, use_t=True)
        z_plan = two_step_pilot_plan(9216, pilot, use_t=False)
        assert t_plan.n >= z_plan.n

    def test_uniform_pilot(self):
        plan = two_step_pilot_plan(100, [5.0, 5.0, 5.0])
        assert plan.n == 2

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="at least two"):
            two_step_pilot_plan(100, [5.0])
        with pytest.raises(ValueError, match="finite"):
            two_step_pilot_plan(100, [5.0, float("nan")])
        with pytest.raises(ValueError, match="finite"):
            two_step_pilot_plan(100, [5.0, -1.0])

    def test_noisier_pilot_larger_plan(self, rng):
        quiet = 200.0 + 2.0 * rng.standard_normal(10)
        loud = 200.0 + 8.0 * rng.standard_normal(10)
        assert (
            two_step_pilot_plan(9216, loud).n
            > two_step_pilot_plan(9216, quiet).n
        )
