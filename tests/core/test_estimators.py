"""Tests for repro.core.estimators."""

import numpy as np
import pytest

from repro.core.estimators import (
    extrapolate_full_system,
    extrapolation_error,
)


class TestExtrapolate:
    def test_scaling(self, rng):
        x = rng.normal(500.0, 10.0, 16)
        est = extrapolate_full_system(x, 1024)
        assert est.total_watts == pytest.approx(x.mean() * 1024)
        assert est.n_measured == 16
        assert est.n_nodes == 1024

    def test_interval_scales(self, rng):
        x = rng.normal(500.0, 10.0, 16)
        est = extrapolate_full_system(x, 1024)
        assert est.interval.mean == pytest.approx(est.total_watts)
        assert est.interval.half_width == pytest.approx(
            est.per_node.half_width * 1024
        )

    def test_relative_half_width_invariant_to_scale(self, rng):
        # Without the finite-population correction, the relative
        # accuracy depends only on the subset, not the fleet size.
        x = rng.normal(500.0, 10.0, 16)
        a = extrapolate_full_system(x, 100, apply_fpc=False)
        b = extrapolate_full_system(x, 10_000, apply_fpc=False)
        assert a.relative_half_width == pytest.approx(
            b.relative_half_width, rel=1e-9
        )

    def test_fpc_helps_small_fleets_more(self, rng):
        x = rng.normal(500.0, 10.0, 16)
        small = extrapolate_full_system(x, 100)
        large = extrapolate_full_system(x, 10_000)
        assert small.relative_half_width < large.relative_half_width

    def test_fpc_optional(self, rng):
        x = rng.normal(500.0, 10.0, 50)
        with_fpc = extrapolate_full_system(x, 100, apply_fpc=True)
        without = extrapolate_full_system(x, 100, apply_fpc=False)
        assert with_fpc.per_node.half_width < without.per_node.half_width

    def test_subset_larger_than_fleet_rejected(self, rng):
        with pytest.raises(ValueError, match="smaller than"):
            extrapolate_full_system(rng.normal(size=20), 10)

    def test_estimator_unbiased(self, rng):
        # Mean extrapolation error over many random subsets ≈ 0.
        fleet = rng.normal(300.0, 9.0, 2000)
        truth = fleet.sum()
        errors = []
        for _ in range(400):
            idx = rng.choice(2000, size=31, replace=False)
            est = extrapolate_full_system(fleet[idx], 2000)
            errors.append(extrapolation_error(est.total_watts, truth))
        assert abs(np.mean(errors)) < 0.003

    def test_interval_covers_truth(self, rng):
        fleet = rng.normal(300.0, 9.0, 2000)
        truth = fleet.sum()
        hits = 0
        trials = 600
        for _ in range(trials):
            idx = rng.choice(2000, size=25, replace=False)
            est = extrapolate_full_system(fleet[idx], 2000)
            hits += est.interval.contains(truth)
        assert hits / trials == pytest.approx(0.95, abs=0.03)

    def test_str(self, rng):
        s = str(extrapolate_full_system(rng.normal(500.0, 10.0, 8), 64))
        assert "kW" in s and "8/64" in s


class TestExtrapolationError:
    def test_signed(self):
        assert extrapolation_error(110.0, 100.0) == pytest.approx(0.10)
        assert extrapolation_error(90.0, 100.0) == pytest.approx(-0.10)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            extrapolation_error(1.0, 0.0)
