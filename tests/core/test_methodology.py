"""Tests for repro.core.methodology — the Table 1 rules."""

import pytest

from repro.core.methodology import (
    Aspect,
    LEVEL_SPECS,
    Level,
    MeasurementDescription,
    MeasurementPoint,
    Subsystem,
    check_submission,
    machine_fraction_nodes,
)


def make_description(**overrides):
    """A Level 1-compliant baseline description."""
    kwargs = dict(
        level=Level.L1,
        n_nodes_total=1024,
        n_nodes_measured=16,
        avg_node_power_watts=400.0,
        window_start_fraction=0.4,
        window_end_fraction=0.6,
        core_phase_seconds=5400.0,
        sample_interval_s=1.0,
    )
    kwargs.update(overrides)
    return MeasurementDescription(**kwargs)


class TestMachineFraction:
    def test_l1_fraction_arm(self):
        # 1024/64 = 16 nodes; 2 kW at 400 W = 5 nodes → fraction wins.
        assert machine_fraction_nodes(Level.L1, 1024, 400.0) == 16

    def test_l1_power_arm(self):
        # 128/64 = 2 nodes; 2 kW at 400 W = 5 nodes → power wins.
        assert machine_fraction_nodes(Level.L1, 128, 400.0) == 5

    def test_l2_eighth(self):
        assert machine_fraction_nodes(Level.L2, 1024, 400.0) == 128

    def test_l2_power_floor(self):
        # 10 kW at 400 W = 25 nodes beats 64/8 = 8.
        assert machine_fraction_nodes(Level.L2, 64, 400.0) == 25

    def test_l3_everything(self):
        assert machine_fraction_nodes(Level.L3, 777, 400.0) == 777

    def test_capped_at_fleet(self):
        # 2 kW at 10 W = 200 nodes, but the fleet only has 50.
        assert machine_fraction_nodes(Level.L1, 50, 10.0) == 50

    def test_at_least_one(self):
        assert machine_fraction_nodes(Level.L1, 4, 100_000.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="n_nodes"):
            machine_fraction_nodes(Level.L1, 0, 100.0)
        with pytest.raises(ValueError, match="node_power"):
            machine_fraction_nodes(Level.L1, 10, 0.0)


class TestLevelSpecs:
    def test_levels_increasingly_strict_fraction(self):
        assert (
            LEVEL_SPECS[Level.L1].machine_fraction
            < LEVEL_SPECS[Level.L2].machine_fraction
            < LEVEL_SPECS[Level.L3].machine_fraction
        )

    def test_l3_requires_integration(self):
        assert LEVEL_SPECS[Level.L3].max_sample_interval_s is None

    def test_l1_middle_80(self):
        assert LEVEL_SPECS[Level.L1].window_within_middle80
        assert not LEVEL_SPECS[Level.L2].window_within_middle80

    def test_l2_allows_estimation_l3_does_not(self):
        assert LEVEL_SPECS[Level.L2].allow_estimated_subsystems
        assert not LEVEL_SPECS[Level.L3].allow_estimated_subsystems


class TestCheckSubmissionL1:
    def test_compliant(self):
        assert check_submission(make_description()) == []

    def test_short_window(self):
        desc = make_description(
            window_start_fraction=0.4, window_end_fraction=0.45
        )
        violations = check_submission(desc)
        assert any(v.aspect is Aspect.TIMING for v in violations)

    def test_window_outside_middle_80(self):
        desc = make_description(
            window_start_fraction=0.0, window_end_fraction=0.2
        )
        violations = check_submission(desc)
        assert any("middle 80%" in v.message for v in violations)

    def test_one_minute_floor(self):
        # A 5-minute core phase: 16% is 48 s < 60 s floor.
        desc = make_description(
            core_phase_seconds=300.0,
            window_start_fraction=0.4,
            window_end_fraction=0.56,
        )
        violations = check_submission(desc)
        assert any(v.aspect is Aspect.TIMING for v in violations)

    def test_too_few_nodes(self):
        desc = make_description(n_nodes_measured=10)
        violations = check_submission(desc)
        assert any(v.aspect is Aspect.MACHINE_FRACTION for v in violations)

    def test_coarse_sampling(self):
        desc = make_description(sample_interval_s=5.0)
        violations = check_submission(desc)
        assert any(v.aspect is Aspect.GRANULARITY for v in violations)

    def test_integrating_meter_fine_at_l1(self):
        desc = make_description(sample_interval_s=None)
        assert check_submission(desc) == []

    def test_estimation_not_allowed(self):
        desc = make_description(
            subsystems_estimated=frozenset({Subsystem.INTERCONNECT})
        )
        violations = check_submission(desc)
        assert any("estimation not allowed" in v.message for v in violations)

    def test_l1_measurement_point(self):
        desc = make_description(
            measurement_point=MeasurementPoint.DOWNSTREAM_MODELED_OFFLINE
        )
        violations = check_submission(desc)
        assert any(v.aspect is Aspect.MEASUREMENT_POINT for v in violations)


class TestCheckSubmissionL2L3:
    def make_l2(self, **overrides):
        kwargs = dict(
            level=Level.L2,
            n_nodes_total=1024,
            n_nodes_measured=128,
            avg_node_power_watts=400.0,
            window_start_fraction=0.0,
            window_end_fraction=1.0,
            core_phase_seconds=5400.0,
            sample_interval_s=1.0,
            subsystems_measured=frozenset({Subsystem.COMPUTE_NODES}),
            subsystems_estimated=frozenset(
                {Subsystem.INTERCONNECT, Subsystem.STORAGE,
                 Subsystem.INFRASTRUCTURE_NODES}
            ),
            measurement_point=MeasurementPoint.UPSTREAM_OF_CONVERSION,
        )
        kwargs.update(overrides)
        return MeasurementDescription(**kwargs)

    def test_compliant_l2(self):
        assert check_submission(self.make_l2()) == []

    def test_l2_partial_window_rejected(self):
        desc = self.make_l2(window_start_fraction=0.2)
        violations = check_submission(desc)
        assert any(v.aspect is Aspect.TIMING for v in violations)

    def test_l2_missing_subsystems(self):
        desc = self.make_l2(subsystems_estimated=frozenset())
        violations = check_submission(desc)
        assert any(v.aspect is Aspect.SUBSYSTEMS for v in violations)

    def test_l3_compliant(self):
        desc = self.make_l2(
            level=Level.L3,
            n_nodes_measured=1024,
            sample_interval_s=None,
            subsystems_measured=frozenset(Subsystem),
            subsystems_estimated=frozenset(),
        )
        assert check_submission(desc) == []

    def test_l3_discrete_sampling_rejected(self):
        desc = self.make_l2(
            level=Level.L3,
            n_nodes_measured=1024,
            sample_interval_s=1.0,
            subsystems_measured=frozenset(Subsystem),
            subsystems_estimated=frozenset(),
        )
        violations = check_submission(desc)
        assert any("integrated" in v.message for v in violations)

    def test_l3_partial_fleet_rejected(self):
        desc = self.make_l2(
            level=Level.L3,
            n_nodes_measured=512,
            sample_interval_s=None,
            subsystems_measured=frozenset(Subsystem),
            subsystems_estimated=frozenset(),
        )
        violations = check_submission(desc)
        assert any(v.aspect is Aspect.MACHINE_FRACTION for v in violations)


class TestMeasurementDescription:
    def test_derived_properties(self):
        desc = make_description()
        assert desc.window_fraction == pytest.approx(0.2)
        assert desc.window_seconds == pytest.approx(1080.0)
        assert desc.measured_watts == pytest.approx(6400.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="measured"):
            make_description(n_nodes_measured=0)
        with pytest.raises(ValueError, match="window"):
            make_description(window_start_fraction=0.7,
                             window_end_fraction=0.6)
        with pytest.raises(ValueError, match="core phase"):
            make_description(core_phase_seconds=0.0)
        with pytest.raises(ValueError, match="sample interval"):
            make_description(sample_interval_s=0.0)

    def test_violation_str(self):
        desc = make_description(n_nodes_measured=2)
        v = check_submission(desc)[0]
        assert "machine fraction" in str(v)
