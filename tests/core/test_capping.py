"""Tests for repro.core.capping."""

import numpy as np
import pytest

from repro.cluster.registry import get_system, workload_utilisation
from repro.core.capping import (
    assess_cap,
    exceedance_probability,
    required_cap,
)


@pytest.fixture()
def fleet_watts():
    return get_system("lrz").node_sample(workload_utilisation("lrz")).watts


class TestExceedanceProbability:
    def test_cap_at_mean_is_half(self, fleet_watts):
        n = 64
        cap = fleet_watts.mean() * n
        p = exceedance_probability(fleet_watts, cap, n)
        assert p == pytest.approx(0.5, abs=0.02)

    def test_generous_cap_never_exceeded(self, fleet_watts):
        n = 64
        cap = fleet_watts.mean() * n * 1.2
        assert exceedance_probability(fleet_watts, cap, n) < 1e-6

    def test_tight_cap_always_exceeded(self, fleet_watts):
        n = 64
        cap = fleet_watts.mean() * n * 0.8
        assert exceedance_probability(fleet_watts, cap, n) > 1 - 1e-6

    def test_normal_matches_bootstrap(self, fleet_watts):
        n = 32
        cap = fleet_watts.mean() * n * 1.005
        p_n = exceedance_probability(fleet_watts, cap, n)
        p_b = exceedance_probability(
            fleet_watts, cap, n, method="bootstrap",
            rng=np.random.default_rng(0),
        )
        assert p_n == pytest.approx(p_b, abs=0.03)

    def test_aggregation_narrows_relative_spread(self, fleet_watts):
        # The same relative headroom is exceeded less often by a larger
        # group: σ of the aggregate grows like √n while the mean grows
        # like n.
        cap_factor = 1.01
        p_small = exceedance_probability(
            fleet_watts, fleet_watts.mean() * 8 * cap_factor, 8
        )
        p_large = exceedance_probability(
            fleet_watts, fleet_watts.mean() * 512 * cap_factor, 512
        )
        assert p_large < p_small

    def test_validation(self, fleet_watts):
        with pytest.raises(ValueError, match="method"):
            exceedance_probability(fleet_watts, 1e5, 8, method="psychic")
        with pytest.raises(ValueError, match="cap_watts"):
            exceedance_probability(fleet_watts, 0.0, 8)
        with pytest.raises(ValueError, match="at least two"):
            exceedance_probability([100.0], 1e3, 8)


class TestRequiredCap:
    def test_roundtrip(self, fleet_watts):
        n = 128
        cap = required_cap(fleet_watts, n, exceedance_target=0.01)
        p = exceedance_probability(fleet_watts, cap, n)
        assert p == pytest.approx(0.01, abs=0.003)

    def test_stricter_target_higher_cap(self, fleet_watts):
        loose = required_cap(fleet_watts, 64, exceedance_target=0.10)
        strict = required_cap(fleet_watts, 64, exceedance_target=0.001)
        assert strict > loose

    def test_bootstrap_close_to_normal(self, fleet_watts):
        c_n = required_cap(fleet_watts, 64, exceedance_target=0.05)
        c_b = required_cap(
            fleet_watts, 64, exceedance_target=0.05, method="bootstrap",
            rng=np.random.default_rng(1),
        )
        assert c_b == pytest.approx(c_n, rel=0.005)

    def test_headroom_shrinks_with_scale(self, fleet_watts):
        # The paper's variability numbers translate directly into
        # procurement headroom — and aggregation makes large caps tight.
        mu = fleet_watts.mean()
        h_small = required_cap(fleet_watts, 16) / (16 * mu) - 1
        h_large = required_cap(fleet_watts, 4096) / (4096 * mu) - 1
        assert h_large < h_small / 4

    def test_validation(self, fleet_watts):
        with pytest.raises(ValueError, match="exceedance_target"):
            required_cap(fleet_watts, 8, exceedance_target=1.0)


class TestAssessCap:
    def test_summary(self, fleet_watts):
        cap = fleet_watts.mean() * 64 * 1.02
        a = assess_cap(fleet_watts, cap, 64)
        assert a.headroom_fraction == pytest.approx(0.02, abs=1e-9)
        assert "kW" in a.summary()
