"""Tier-1 self-lint gate: the repro source tree obeys its own invariants.

This is the machine-checked version of the repo's methodology
conventions — if a change reintroduces a global-state RNG call, a magic
unit constant, a float ``==``, hidden wall-clock reads, an experiment
without a deterministic seed default, or a lying ``__all__``, this test
fails with the exact ``path:line:col: RPXnnn`` findings.
"""

from pathlib import Path

from repro.checks import load_config, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def test_source_tree_is_lint_clean():
    report = run_lint([SRC], config=load_config(REPO_ROOT))
    assert report.ok, "\n" + report.render_text()
    assert report.files_scanned > 50


def test_gate_actually_runs_the_rules():
    """Guard against a config that silently disables everything."""
    from repro.checks import default_rules

    config = load_config(REPO_ROOT)
    assert len(default_rules(config)) >= 7


def test_source_tree_is_semantically_clean():
    """The cross-module gate: no unbaselined RPX101/102/103 findings.

    The experiments stay pure functions of (params, seed), every
    sampled generator's seed traces to an explicit source, and no
    arithmetic mixes power with time.  Anything intentional must be
    argued into ``.repro-lint-baseline.json`` with a justification,
    not silently exempted.
    """
    from repro.checks.semantic import Baseline, run_semantic_lint

    report = run_semantic_lint([SRC], config=load_config(REPO_ROOT))
    assert report.parse_errors == []
    assert report.files_scanned > 50
    baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
    match = baseline.apply(report.findings)
    new = "\n".join(f.format() for f in match.new)
    assert not match.new, f"unbaselined semantic findings:\n{new}"
    assert not match.stale, f"stale baseline entries: {match.stale}"


def test_semantic_gate_sees_the_experiments():
    """Guard against the purity rule silently losing its entry points."""
    from repro.checks.semantic import ProjectContext
    from repro.checks.semantic.analysis import SEMANTIC_RULES

    config = load_config(REPO_ROOT)
    project = ProjectContext.build([SRC], config)
    purity = SEMANTIC_RULES[0]
    assert purity.rule_id == "RPX101"
    entries = purity._entry_points(project)
    assert len(entries) >= 10, "expected the paper experiments' run()s"
