"""Tier-1 self-lint gate: the repro source tree obeys its own invariants.

This is the machine-checked version of the repo's methodology
conventions — if a change reintroduces a global-state RNG call, a magic
unit constant, a float ``==``, hidden wall-clock reads, an experiment
without a deterministic seed default, or a lying ``__all__``, this test
fails with the exact ``path:line:col: RPXnnn`` findings.
"""

from pathlib import Path

from repro.checks import load_config, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"


def test_source_tree_is_lint_clean():
    report = run_lint([SRC], config=load_config(REPO_ROOT))
    assert report.ok, "\n" + report.render_text()
    assert report.files_scanned > 50


def test_gate_actually_runs_the_rules():
    """Guard against a config that silently disables everything."""
    from repro.checks import default_rules

    config = load_config(REPO_ROOT)
    assert len(default_rules(config)) >= 7
