"""Wall-clock hygiene lock for the test suite itself.

Every subsystem takes an injected clock (SimClock or compatible), so
no test has any business reading the wall clock or sleeping for real:
wall-clock tests are the canonical source of flakes.  This suite walks
the AST of every test file and fails on ``time.time()``,
``time.sleep()``, ``datetime.now()`` and friends — with an allowlist
for the lint-rule fixture trees, whose whole point is to *contain*
violations for RPX004 to find.

``asyncio.sleep(0)`` stays legal: that is a deterministic scheduling
yield, not a timed wait.  Any other ``asyncio.sleep`` argument is
banned too.
"""

from __future__ import annotations

import ast
from pathlib import Path

TESTS_DIR = Path(__file__).parent

#: Directory names whose files may (intentionally) violate the rules.
EXEMPT_DIR_NAMES = frozenset({"fixtures"})

#: Banned ``module.attr`` call targets (matched on the last two parts
#: of the dotted chain, so ``datetime.datetime.now`` is caught too).
BANNED_CALLS = frozenset({
    ("time", "time"),
    ("time", "sleep"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("time", "process_time"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
})

#: Banned ``from time import ...`` names.
BANNED_FROM_TIME = frozenset({
    "time", "sleep", "monotonic", "perf_counter", "process_time",
})


def dotted_tail(node: ast.expr) -> tuple[str, ...]:
    """The trailing dotted-name parts of an attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return tuple(reversed(parts))


def is_zero_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value in (0, 0.0)


def scan_file(path: Path) -> list[str]:
    """All wall-clock violations in one file, as readable strings."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    violations: list[str] = []
    rel = path.relative_to(TESTS_DIR)

    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            bad = sorted(
                alias.name for alias in node.names
                if alias.name in BANNED_FROM_TIME
            )
            if bad:
                violations.append(
                    f"{rel}:{node.lineno}: from time import "
                    f"{', '.join(bad)}"
                )
        elif isinstance(node, ast.Call):
            tail = dotted_tail(node.func)
            if len(tail) >= 2 and tail[-2:] in BANNED_CALLS:
                violations.append(
                    f"{rel}:{node.lineno}: {'.'.join(tail)}()"
                )
            elif (
                len(tail) >= 2
                and tail[-2:] == ("asyncio", "sleep")
                and not (node.args and is_zero_literal(node.args[0]))
            ):
                violations.append(
                    f"{rel}:{node.lineno}: asyncio.sleep(nonzero) — "
                    "use SimClock/gate hooks instead"
                )
    return violations


def test_no_wall_clock_in_tests():
    """No test reads the wall clock or sleeps for real."""
    violations: list[str] = []
    for path in sorted(TESTS_DIR.rglob("*.py")):
        if EXEMPT_DIR_NAMES & set(path.parts):
            continue
        violations.extend(scan_file(path))
    assert not violations, (
        "wall-clock usage in tests (inject a SimClock instead):\n"
        + "\n".join(violations)
    )


def test_the_scanner_actually_detects(tmp_path):
    """Self-check: the scanner flags each banned construct."""
    sample = tmp_path / "sample.py"
    sample.write_text(
        "import time, asyncio, datetime\n"
        "from time import sleep\n"
        "a = time.time()\n"
        "time.sleep(1)\n"
        "b = datetime.datetime.now()\n"
        "async def f():\n"
        "    await asyncio.sleep(0)\n"  # legal yield
        "    await asyncio.sleep(0.5)\n"
    )
    # Scan it in place via the module-level helpers, rebasing paths.
    tree = ast.parse(sample.read_text())
    hits = 0
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            hits += sum(
                1 for alias in node.names
                if alias.name in BANNED_FROM_TIME
            )
        elif isinstance(node, ast.Call):
            tail = dotted_tail(node.func)
            if len(tail) >= 2 and tail[-2:] in BANNED_CALLS:
                hits += 1
            elif (
                len(tail) >= 2
                and tail[-2:] == ("asyncio", "sleep")
                and not (node.args and is_zero_literal(node.args[0]))
            ):
                hits += 1
    assert hits == 5  # sleep-import, time(), sleep(), now(), sleep(0.5)
