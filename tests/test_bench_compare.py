"""The perf-regression gate: same-machine fail, cross-machine skip."""

from __future__ import annotations

import importlib.util
from pathlib import Path

_SCRIPT = (
    Path(__file__).resolve().parent.parent / "scripts" / "bench_compare.py"
)
_spec = importlib.util.spec_from_file_location("bench_compare", _SCRIPT)
bench_compare = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_compare)


def _payload(mean_s: float, *, brand: str = "cpu-a", name: str = "bench_x"):
    return {
        "machine_info": {
            "machine": "x86_64",
            "system": "Linux",
            "cpu": {"brand_raw": brand, "count": 1, "arch": "X86_64"},
        },
        "benchmarks": [{"name": name, "stats": {"mean": mean_s}}],
    }


class TestCompare:
    def test_same_machine_within_threshold_passes(self):
        code, lines = bench_compare.compare(
            _payload(1.0), _payload(1.2), 0.30
        )
        assert code == 0
        assert any(line.startswith("ok:") for line in lines)

    def test_same_machine_regression_fails(self):
        code, lines = bench_compare.compare(
            _payload(1.0), _payload(1.5), 0.30
        )
        assert code == 1
        assert any("regressed" in line for line in lines)

    def test_different_machine_skips_with_note(self):
        code, lines = bench_compare.compare(
            _payload(1.0), _payload(9.0, brand="cpu-b"), 0.30
        )
        assert code == 0
        assert lines[0].startswith("SKIP")
        assert any("cpu.brand_raw" in line for line in lines)

    def test_missing_benchmark_is_noted_not_failed(self):
        code, lines = bench_compare.compare(
            _payload(1.0), _payload(1.0, name="bench_y"), 0.30
        )
        assert code == 0
        assert any("missing" in line for line in lines)
        assert any("no common benchmarks" in line for line in lines)

    def test_main_round_trips_files(self, tmp_path):
        import json

        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(_payload(1.0)))
        cur.write_text(json.dumps(_payload(2.0)))
        assert bench_compare.main([str(base), str(cur)]) == 1
        assert (
            bench_compare.main(
                [str(base), str(cur), "--threshold", "1.5"]
            )
            == 0
        )
