"""Tests for repro.cluster.shared and its per-level consequences."""

import numpy as np
import pytest

from repro.cluster.shared import SharedInfrastructure
from repro.cluster.system import SystemModel
from repro.core.windows import full_core_window
from repro.experiments import ext_subsystems
from repro.metering.campaign import MeasurementCampaign
from repro.metering.meter import MeterSpec
from repro.traces.synth import simulate_run
from repro.workloads.base import ConstantWorkload


class TestSharedInfrastructure:
    def test_power_composition(self):
        s = SharedInfrastructure(
            interconnect_watts=100.0,
            interconnect_load_watts=20.0,
            infrastructure_watts=50.0,
        )
        assert s.power(0.0) == pytest.approx(150.0)
        assert s.power(1.0) == pytest.approx(170.0)

    def test_estimate_applies_error(self):
        s = SharedInfrastructure(
            interconnect_watts=100.0, estimation_error=-0.2
        )
        assert s.estimate(1.0) == pytest.approx(80.0)

    def test_is_zero(self):
        assert SharedInfrastructure().is_zero
        assert not SharedInfrastructure(interconnect_watts=1.0).is_zero

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            SharedInfrastructure(interconnect_watts=-1.0)
        with pytest.raises(ValueError, match="exceed -1"):
            SharedInfrastructure(estimation_error=-1.0)
        with pytest.raises(ValueError, match="utilisation"):
            SharedInfrastructure().power(1.5)

    def test_vectorised_power(self):
        s = SharedInfrastructure(interconnect_watts=10.0,
                                 interconnect_load_watts=5.0)
        p = s.power(np.array([0.0, 1.0]))
        np.testing.assert_allclose(p, [10.0, 15.0])


class TestSystemIntegration:
    @pytest.fixture()
    def shared_system(self, cpu_config):
        shared = SharedInfrastructure(
            interconnect_watts=800.0,
            infrastructure_watts=200.0,
            estimation_error=-0.3,
        )
        return SystemModel("shared-sys", 32, cpu_config, shared=shared,
                           seed=9)

    def test_total_exceeds_compute(self, shared_system):
        compute = shared_system.system_power(0.9)
        total = shared_system.total_system_power(0.9)
        assert total == pytest.approx(compute + 1000.0)

    def test_trace_includes_shared(self, shared_system, cpu_config):
        wl = ConstantWorkload(utilisation=0.9, core_s=300.0)
        with_shared = simulate_run(shared_system, wl, dt=1.0, noise_cv=0.0)
        bare = SystemModel("bare", 32, cpu_config, seed=9)
        without = simulate_run(bare, wl, dt=1.0, noise_cv=0.0)
        delta = (
            with_shared.true_core_average() - without.true_core_average()
        )
        assert delta == pytest.approx(1000.0, rel=0.01)

    def test_subset_traces_exclude_shared(self, shared_system, cpu_config):
        wl = ConstantWorkload(utilisation=0.9, core_s=300.0)
        run = simulate_run(shared_system, wl, dt=1.0, noise_cv=0.0)
        full_nodes = run.subset_trace(np.arange(32))
        # Node meters see only compute power.
        assert run.trace.mean_power() - full_nodes.mean_power() == (
            pytest.approx(1000.0, rel=0.01)
        )

    def test_level_bias_ordering(self, shared_system):
        wl = ConstantWorkload(utilisation=0.9, core_s=300.0)
        run = simulate_run(shared_system, wl, dt=1.0, noise_cv=0.0)
        campaign = MeasurementCampaign(run, meter_spec=MeterSpec.ideal())
        idx = np.arange(32)
        l1 = campaign.level1(window=full_core_window(), node_indices=idx)
        l2 = campaign.level2(node_indices=idx)
        l3 = campaign.level3()
        # L1 misses all shared power; L2 misses the estimation error's
        # worth; L3 is exact.
        assert l1.reported_watts < l2.reported_watts < l3.reported_watts
        assert l3.relative_error == pytest.approx(0.0, abs=1e-9)

    def test_variants_preserve_shared(self, shared_system):
        scaled = shared_system.with_power_scale(2.0)
        assert scaled.shared is shared_system.shared


class TestX6Experiment:
    def test_all_ok(self):
        res = ext_subsystems.run()
        assert res.all_ok(), "\n".join(
            c.line() for c in res.comparisons() if not c.ok
        )

    def test_larger_share_larger_bias(self):
        small = ext_subsystems.run(shared_fraction=0.05)
        large = ext_subsystems.run(shared_fraction=0.20)
        assert large.overstatement["L1"] > small.overstatement["L1"]

    def test_validation(self):
        with pytest.raises(ValueError, match="shared_fraction"):
            ext_subsystems.run(shared_fraction=0.6)
