"""Tests for repro.cluster.node."""

import numpy as np
import pytest

from repro.cluster.components import CpuModel, DramModel, FanModel, GpuModel
from repro.cluster.dvfs import OperatingPoint
from repro.cluster.node import Node, NodeConfig
from repro.cluster.thermal import FanPolicy
from repro.cluster.variability import ManufacturingVariation


class TestNodeConfig:
    def test_nominal_it_power_sums_components(self, cpu_config):
        p = cpu_config.nominal_it_power(1.0)
        expected = (
            2 * cpu_config.cpu.power(1.0)
            + cpu_config.dram.power(1.0)
            + cpu_config.nic.power(1.0)
            + cpu_config.other_watts
        )
        assert p == pytest.approx(expected)

    def test_gpu_counted(self, gpu_config):
        p_gpu = gpu_config.nominal_it_power(1.0)
        no_gpu = NodeConfig(
            cpu=gpu_config.cpu, n_cpus=2, dram=gpu_config.dram,
            nic=gpu_config.nic, fan=gpu_config.fan,
            other_watts=gpu_config.other_watts,
        )
        assert p_gpu > no_gpu.nominal_it_power(1.0)

    def test_peak_includes_fans(self, cpu_config):
        assert cpu_config.nominal_peak_power() == pytest.approx(
            cpu_config.nominal_it_power(1.0) + cpu_config.fan.power(1.0)
        )

    def test_needs_processor(self):
        with pytest.raises(ValueError, match="at least one processor"):
            NodeConfig(n_cpus=0, n_gpus=0)

    def test_gpu_count_without_model(self):
        with pytest.raises(ValueError, match="requires a gpu model"):
            NodeConfig(n_cpus=1, n_gpus=2, gpu=None)

    def test_negative_counts(self):
        with pytest.raises(ValueError, match=">= 0"):
            NodeConfig(n_cpus=-1)

    def test_gpu_only_node_allowed(self):
        cfg = NodeConfig(n_cpus=0, gpu=GpuModel(), n_gpus=1)
        assert cfg.nominal_it_power(1.0) > 0


class TestManufacture:
    def test_basic(self, cpu_config, rng):
        node = Node.manufacture(0, cpu_config, rng)
        assert node.node_id == 0
        assert len(node.cpu_multipliers) == cpu_config.n_cpus
        assert len(node.gpu_multipliers) == 0

    def test_gpu_node(self, gpu_config, rng):
        node = Node.manufacture(1, gpu_config, rng)
        assert len(node.gpu_multipliers) == 4
        assert len(node.gpu_vids) == 4

    def test_deterministic(self, gpu_config):
        a = Node.manufacture(0, gpu_config, np.random.default_rng(5))
        b = Node.manufacture(0, gpu_config, np.random.default_rng(5))
        np.testing.assert_array_equal(a.gpu_multipliers, b.gpu_multipliers)
        np.testing.assert_array_equal(a.gpu_vids, b.gpu_vids)
        assert a.inlet_c == b.inlet_c

    def test_vids_independent_of_multipliers(self, gpu_config):
        # Paper Section 5: efficiency at fixed voltage is unrelated to
        # VID, so the leakage draw must not order the VIDs.
        rng = np.random.default_rng(0)
        mults, vids = [], []
        for i in range(400):
            n = Node.manufacture(i, gpu_config, rng)
            mults.extend(n.gpu_multipliers.tolist())
            vids.extend(n.gpu_vids.tolist())
        r = np.corrcoef(mults, vids)[0, 1]
        assert abs(r) < 0.1

    def test_mismatched_arrays_rejected(self, cpu_config, rng):
        good = Node.manufacture(0, cpu_config, rng)
        with pytest.raises(ValueError, match="cpu_multipliers"):
            Node(
                node_id=0, config=cpu_config,
                cpu_multipliers=np.ones(5),
                gpu_multipliers=good.gpu_multipliers,
                gpu_vids=good.gpu_vids,
                inlet_c=22.0,
                fan_controller=good.fan_controller,
            )


class TestNodePower:
    def test_it_power_positive(self, cpu_config, rng):
        node = Node.manufacture(0, cpu_config, rng)
        assert node.it_power(0.0) > 0
        assert node.it_power(1.0) > node.it_power(0.0)

    def test_total_includes_fans(self, cpu_config, rng):
        node = Node.manufacture(0, cpu_config, rng)
        assert node.total_power(0.9) > node.it_power(0.9)

    def test_vectorised_utilisation(self, cpu_config, rng):
        node = Node.manufacture(0, cpu_config, rng)
        u = np.linspace(0, 1, 11)
        p = node.it_power(u)
        assert p.shape == (11,)
        assert np.all(np.diff(p) > 0)

    def test_multiplier_scales_power(self, cpu_config, rng):
        node = Node.manufacture(0, cpu_config, rng)
        hot = Node(
            node_id=1, config=cpu_config,
            cpu_multipliers=node.cpu_multipliers * 1.1,
            gpu_multipliers=node.gpu_multipliers,
            gpu_vids=node.gpu_vids,
            inlet_c=node.inlet_c,
            fan_controller=node.fan_controller,
            environment=node.environment,
        )
        assert hot.it_power(0.9) > node.it_power(0.9)

    def test_gpu_point_override_lowers_power(self, gpu_config, rng):
        node = Node.manufacture(0, gpu_config, rng)
        default = node.it_power(0.95)
        tuned = node.it_power(
            0.95, gpu_point=OperatingPoint(774.0, 1.018)
        )
        assert tuned < default

    def test_cpu_dvfs_lowers_power(self, cpu_config, rng):
        node = Node.manufacture(0, cpu_config, rng)
        assert node.it_power(0.9, cpu_freq_multiplier=0.8) < node.it_power(0.9)

    def test_high_vid_node_draws_more_at_default(self, gpu_config):
        # Build two otherwise-identical nodes differing only in VID.
        rng = np.random.default_rng(1)
        base = Node.manufacture(0, gpu_config, rng)
        lo = Node(
            node_id=0, config=gpu_config,
            cpu_multipliers=base.cpu_multipliers,
            gpu_multipliers=np.ones(4),
            gpu_vids=np.full(4, 40),
            inlet_c=base.inlet_c, fan_controller=base.fan_controller,
            environment=base.environment,
        )
        hi = Node(
            node_id=1, config=gpu_config,
            cpu_multipliers=base.cpu_multipliers,
            gpu_multipliers=np.ones(4),
            gpu_vids=np.full(4, 48),
            inlet_c=base.inlet_c, fan_controller=base.fan_controller,
            environment=base.environment,
        )
        assert hi.it_power(0.95) > lo.it_power(0.95)


class TestFanPolicySwitch:
    def test_pinned_node(self, cpu_config, rng):
        node = Node.manufacture(0, cpu_config, rng)
        pinned = node.with_fan_policy(FanPolicy.PINNED, pinned_speed=0.5)
        it = pinned.it_power(0.9)
        assert pinned.fan_power(it) == pytest.approx(
            cpu_config.fan.power(0.5)
        )

    def test_auto_restored(self, cpu_config, rng):
        node = Node.manufacture(0, cpu_config, rng)
        back = node.with_fan_policy(FanPolicy.PINNED).with_fan_policy(
            FanPolicy.AUTO
        )
        assert back.fan_controller.policy is FanPolicy.AUTO
