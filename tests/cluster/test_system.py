"""Tests for repro.cluster.system."""

import numpy as np
import pytest

from repro.cluster.dvfs import OperatingPoint
from repro.cluster.system import SystemModel
from repro.cluster.thermal import FanPolicy
from repro.cluster.variability import ManufacturingVariation


class TestConstruction:
    def test_repr(self, small_system):
        assert "test-cpu" in repr(small_system)
        assert "CPU" in repr(small_system)

    def test_gpu_repr(self, gpu_system):
        assert "GPU" in repr(gpu_system)

    def test_bad_n_nodes(self, cpu_config):
        with pytest.raises(ValueError, match="n_nodes"):
            SystemModel("x", 0, cpu_config)

    def test_bad_power_scale(self, cpu_config):
        with pytest.raises(ValueError, match="power_scale"):
            SystemModel("x", 4, cpu_config, power_scale=0.0)


class TestFleetEvaluation:
    def test_shapes(self, small_system):
        p = small_system.node_total_powers(0.9)
        assert p.shape == (small_system.n_nodes,)
        assert np.all(p > 0)

    def test_deterministic(self, cpu_config):
        a = SystemModel("a", 32, cpu_config, seed=5).node_total_powers(0.9)
        b = SystemModel("b", 32, cpu_config, seed=5).node_total_powers(0.9)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_fleet(self, cpu_config):
        a = SystemModel("a", 32, cpu_config, seed=5).node_total_powers(0.9)
        b = SystemModel("b", 32, cpu_config, seed=6).node_total_powers(0.9)
        assert not np.array_equal(a, b)

    def test_monotone_in_utilisation(self, small_system):
        p_lo = small_system.node_total_powers(0.3)
        p_hi = small_system.node_total_powers(0.9)
        assert np.all(p_hi > p_lo)

    def test_utilisation_range(self, small_system):
        with pytest.raises(ValueError, match="utilisation"):
            small_system.node_total_powers(1.2)

    def test_indices_subset_matches_full(self, small_system):
        full = small_system.node_total_powers(0.8)
        idx = np.array([3, 7, 11])
        sub = small_system.node_total_powers(0.8, indices=idx)
        np.testing.assert_allclose(sub, full[idx])

    def test_gpu_point_override(self, gpu_system):
        default = gpu_system.node_total_powers(0.95)
        tuned = gpu_system.node_total_powers(
            0.95, gpu_point=OperatingPoint(700.0, 1.0)
        )
        assert tuned.mean() < default.mean()

    def test_system_power_is_fleet_sum(self, small_system):
        assert small_system.system_power(0.9) == pytest.approx(
            small_system.node_total_powers(0.9).sum()
        )

    def test_power_scale_linear_on_it(self, cpu_config):
        # With fans pinned, scaling is exactly linear.
        base = SystemModel("x", 16, cpu_config, seed=1).with_fan_policy(
            FanPolicy.PINNED
        )
        doubled = base.with_power_scale(2.0)
        it_base = base.node_it_powers(0.9)
        it_doubled = doubled.node_it_powers(0.9)
        np.testing.assert_allclose(it_doubled, 2.0 * it_base, rtol=1e-12)


class TestNodeSample:
    def test_sample_statistics(self, small_system):
        ns = small_system.node_sample(0.9)
        assert len(ns) == small_system.n_nodes
        assert 0.001 < ns.coefficient_of_variation() < 0.1

    def test_measurement_noise_widens_spread(self, small_system):
        clean = small_system.node_sample(0.9)
        noisy = small_system.node_sample(
            0.9, measurement_noise_cv=0.05,
            rng=np.random.default_rng(0),
        )
        assert (
            noisy.coefficient_of_variation()
            > clean.coefficient_of_variation()
        )

    def test_negative_noise_rejected(self, small_system):
        with pytest.raises(ValueError, match="measurement_noise_cv"):
            small_system.node_sample(0.9, measurement_noise_cv=-0.1)

    def test_system_label(self, small_system):
        assert small_system.node_sample(0.9).system == "test-cpu"


class TestManufactureNode:
    def test_agrees_with_fleet(self, gpu_system):
        idx = 5
        node = gpu_system.manufacture_node(idx)
        fleet_power = gpu_system.node_total_powers(0.9)[idx]
        # power_scale applies at fleet level, node object is unscaled.
        node_power = node.total_power(0.9) * gpu_system.power_scale
        assert node_power == pytest.approx(fleet_power, rel=0.02)

    def test_out_of_range(self, small_system):
        with pytest.raises(ValueError, match="out of range"):
            small_system.manufacture_node(small_system.n_nodes)


class TestVariants:
    def test_pinned_fans_reduce_spread(self, cpu_config):
        auto = SystemModel(
            "x", 256, cpu_config,
            variation=ManufacturingVariation(sigma=0.005),
            seed=3,
        )
        pinned = auto.with_fan_policy(FanPolicy.PINNED, pinned_speed=0.5)
        cv_auto = auto.node_sample(0.9).coefficient_of_variation()
        cv_pinned = pinned.node_sample(0.9).coefficient_of_variation()
        assert cv_pinned < cv_auto

    def test_variants_preserve_fleet_draws(self, small_system):
        scaled = small_system.with_power_scale(1.5)
        # Same silicon: scaled powers are exactly 1.5x on IT side.
        np.testing.assert_allclose(
            scaled.node_it_powers(0.9),
            1.5 * small_system.node_it_powers(0.9),
            rtol=1e-12,
        )

    def test_with_variation_reroll(self, small_system):
        wider = small_system.with_variation(
            ManufacturingVariation(sigma=0.08)
        )
        cv0 = small_system.node_sample(0.9).coefficient_of_variation()
        cv1 = wider.node_sample(0.9).coefficient_of_variation()
        assert cv1 > cv0

    def test_variation_same_seed_same_z_scores(self, small_system):
        # Same seed → same underlying draws, so doubling sigma roughly
        # doubles the log-multipliers.
        wider = small_system.with_variation(
            ManufacturingVariation(sigma=0.04)
        )
        a = np.log(small_system._fleet().proc_mean_mult)
        b = np.log(wider._fleet().proc_mean_mult)
        assert np.corrcoef(a, b)[0, 1] > 0.999
