"""Tests for repro.cluster.registry — paper-system calibration.

These are the reproduction's anchor tests: the registry's fleets must
regenerate Tables 2 and 4 within tight tolerances, deterministically.
"""

import numpy as np
import pytest

from repro.cluster.registry import (
    NODE_VARIABILITY_SYSTEMS,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    TRACE_SYSTEMS,
    get_system,
    get_trace_setup,
    list_systems,
    workload_utilisation,
)
from repro.traces.ops import segment_average
from repro.traces.synth import simulate_run


class TestCatalog:
    def test_list_systems(self):
        names = list_systems()
        assert "lrz" in names and "l-csc" in names
        assert len(names) == len(set(names)) == 10

    def test_tables_consistent(self):
        assert set(PAPER_TABLE3) == set(PAPER_TABLE4)
        assert set(PAPER_TABLE2) == set(TRACE_SYSTEMS)

    def test_table4_published_cvs_in_band(self):
        # Sanity of the transcribed constants themselves.
        for row in PAPER_TABLE4.values():
            assert 0.014 < row.cv < 0.03

    def test_unknown_system(self):
        with pytest.raises(KeyError, match="unknown"):
            get_system("nonexistent")
        with pytest.raises(KeyError, match="unknown"):
            get_trace_setup("lrz")  # node-variability name, not a trace


@pytest.mark.parametrize("name", NODE_VARIABILITY_SYSTEMS)
class TestTable4Calibration:
    def test_fleet_size(self, name):
        assert get_system(name).n_nodes == PAPER_TABLE4[name].n_nodes

    def test_mean_matches(self, name):
        sample = get_system(name).node_sample(workload_utilisation(name))
        assert sample.mean() == pytest.approx(
            PAPER_TABLE4[name].mean_w, rel=0.005
        )

    def test_cv_matches(self, name):
        sample = get_system(name).node_sample(workload_utilisation(name))
        assert sample.coefficient_of_variation() == pytest.approx(
            PAPER_TABLE4[name].cv, rel=0.03
        )

    def test_deterministic(self, name):
        a = get_system(name).node_sample(workload_utilisation(name))
        b = get_system(name).node_sample(workload_utilisation(name))
        np.testing.assert_array_equal(a.watts, b.watts)


@pytest.mark.parametrize("name", TRACE_SYSTEMS)
class TestTable2Calibration:
    def test_segments_match_paper(self, name):
        system, workload = get_trace_setup(name)
        row = PAPER_TABLE2[name]
        dt = max(1.0, workload.phases.total_s / 6000)
        sim = simulate_run(system, workload, dt=dt)
        core = sim.core_trace()
        assert core.mean_power() / 1e3 == pytest.approx(row.core_kw, rel=0.005)
        assert segment_average(core, 0.0, 0.2) / 1e3 == pytest.approx(
            row.first20_kw, rel=0.01
        )
        assert segment_average(core, 0.8, 1.0) / 1e3 == pytest.approx(
            row.last20_kw, rel=0.01
        )

    def test_runtime_matches(self, name):
        _, workload = get_trace_setup(name)
        assert workload.core_runtime_s == pytest.approx(
            PAPER_TABLE2[name].runtime_s
        )


class TestSystemCharacter:
    def test_titan_is_gpu_only(self):
        titan = get_system("titan")
        assert titan.config.n_cpus == 0
        assert titan.config.n_gpus == 1

    def test_lcsc_has_four_gpus(self):
        system, _ = get_trace_setup("l-csc")
        assert system.config.n_gpus == 4

    def test_sequoia_scale(self):
        system, _ = get_trace_setup("sequoia")
        assert system.n_nodes > 50_000  # ~2 million cores

    def test_cpu_runs_flat_gpu_runs_tail(self):
        _, cpu_wl = get_trace_setup("colosse")
        _, gpu_wl = get_trace_setup("l-csc")
        # The fitted tail parameter separates the two machine classes.
        assert cpu_wl.rho < 0.05 < gpu_wl.rho
