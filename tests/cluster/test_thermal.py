"""Tests for repro.cluster.thermal."""

import numpy as np
import pytest

from repro.cluster.components import FanModel
from repro.cluster.thermal import FanController, FanPolicy, ThermalEnvironment


@pytest.fixture()
def env():
    return ThermalEnvironment()


@pytest.fixture()
def controller():
    return FanController(
        fan_model=FanModel(max_watts=120.0, min_speed=0.3),
        reference_watts=1000.0,
    )


class TestThermalEnvironment:
    def test_inlet_temperatures_near_nominal(self, env, rng):
        t = env.sample_inlet_temperatures(10_000, rng)
        assert t.mean() == pytest.approx(env.nominal_inlet_c, abs=0.1)
        assert t.std() == pytest.approx(env.inlet_spread_c, rel=0.1)

    def test_truncation(self, env, rng):
        t = env.sample_inlet_temperatures(100_000, rng)
        assert t.max() <= env.nominal_inlet_c + 3 * env.inlet_spread_c + 1e-9
        assert t.min() >= env.nominal_inlet_c - 3 * env.inlet_spread_c - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError, match="inlet_spread"):
            ThermalEnvironment(inlet_spread_c=-1.0)
        with pytest.raises(ValueError, match="max_inlet"):
            ThermalEnvironment(nominal_inlet_c=30.0, max_inlet_c=25.0)
        with pytest.raises(ValueError, match="n must be"):
            ThermalEnvironment().sample_inlet_temperatures(0, np.random.default_rng())


class TestAutoPolicy:
    def test_speed_rises_with_power(self, controller, env):
        s_lo = controller.speed(200.0, env.nominal_inlet_c, env)
        s_hi = controller.speed(1500.0, env.nominal_inlet_c, env)
        assert s_hi > s_lo

    def test_speed_rises_with_inlet(self, controller, env):
        s_cool = controller.speed(800.0, 20.0, env)
        s_warm = controller.speed(800.0, 30.0, env)
        assert s_warm > s_cool

    def test_speed_clipped_to_one(self, controller, env):
        assert controller.speed(1e6, env.max_inlet_c, env) == 1.0

    def test_speed_floor(self, controller, env):
        s = controller.speed(0.0, env.nominal_inlet_c - 10.0, env)
        assert s >= controller.fan_model.min_speed

    def test_power_vectorised(self, controller, env, rng):
        watts = rng.uniform(300.0, 900.0, 50)
        inlets = env.sample_inlet_temperatures(50, rng)
        p = controller.power(watts, inlets, env)
        assert p.shape == (50,)
        assert np.all(p >= 0)

    def test_negative_power_rejected(self, controller, env):
        with pytest.raises(ValueError, match="non-negative"):
            controller.speed(-5.0, 22.0, env)

    def test_fan_variance_from_inlet_spread(self, controller, env, rng):
        # Identical IT power, varying rack position → fan power spread
        # (the node-variability source the paper's Section 5 flags).
        inlets = env.sample_inlet_temperatures(5000, rng)
        p = controller.power(800.0, inlets, env)
        assert p.std() > 0.5  # watts of spread with no silicon variation


class TestPinnedPolicy:
    def test_pinned_ignores_state(self, controller, env):
        pinned = controller.pinned()
        s1 = pinned.speed(100.0, 18.0, env)
        s2 = pinned.speed(2000.0, 34.0, env)
        assert s1 == s2 == pinned.pinned_speed

    def test_pinned_speed_override(self, controller, env):
        pinned = controller.pinned(0.6)
        assert pinned.speed(500.0, 25.0, env) == 0.6

    def test_pinned_kills_variance(self, controller, env, rng):
        inlets = env.sample_inlet_temperatures(1000, rng)
        p = controller.pinned().power(800.0, inlets, env)
        assert np.ptp(np.asarray(p)) == 0.0

    def test_pinned_vector_shape(self, controller, env, rng):
        inlets = env.sample_inlet_temperatures(7, rng)
        p = controller.pinned().power(np.full(7, 500.0), inlets, env)
        assert np.asarray(p).shape == (7,)

    def test_validation(self):
        fan = FanModel(max_watts=100.0, min_speed=0.3)
        with pytest.raises(ValueError, match="pinned_speed"):
            FanController(fan_model=fan, pinned_speed=0.1)
        with pytest.raises(ValueError, match="gains"):
            FanController(fan_model=fan, k_power=-1.0)
        with pytest.raises(ValueError, match="reference"):
            FanController(fan_model=fan, reference_watts=0.0)
