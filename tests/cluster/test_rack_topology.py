"""Tests for the rack-correlated thermal structure and its consequence
for subset selection (the reason the methodology wants *random*
subsets)."""

import numpy as np
import pytest

from repro.cluster.components import CpuModel, DramModel, FanModel
from repro.cluster.node import NodeConfig
from repro.cluster.system import SystemModel
from repro.cluster.thermal import FanController, ThermalEnvironment
from repro.cluster.variability import ManufacturingVariation
from repro.metering.subset import contiguous_subset, random_subset


class TestRackStructure:
    def test_total_spread_preserved(self, rng):
        env = ThermalEnvironment(inlet_spread_c=1.5, rack_share=0.5)
        t = env.sample_inlet_temperatures(50_000, rng)
        assert t.std() == pytest.approx(1.5, rel=0.05)

    def test_rack_members_correlated(self, rng):
        env = ThermalEnvironment(
            inlet_spread_c=2.0, rack_share=0.8, rack_size=16
        )
        t = env.sample_inlet_temperatures(16 * 500, rng)
        racks = t.reshape(500, 16)
        # Between-rack variance dominates when rack_share is high.
        between = racks.mean(axis=1).var()
        within = racks.var(axis=1).mean()
        assert between > within

    def test_zero_share_iid(self, rng):
        env = ThermalEnvironment(inlet_spread_c=2.0, rack_share=0.0,
                                 rack_size=16)
        t = env.sample_inlet_temperatures(16 * 500, rng)
        racks = t.reshape(500, 16)
        between = racks.mean(axis=1).var()
        # Between-rack variance of iid data ≈ total/16.
        assert between == pytest.approx(t.var() / 16, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError, match="rack_share"):
            ThermalEnvironment(rack_share=1.5)
        with pytest.raises(ValueError, match="rack_size"):
            ThermalEnvironment(rack_size=0)


class TestSubsetConsequence:
    @pytest.fixture()
    def racky_system(self):
        config = NodeConfig(
            cpu=CpuModel(idle_watts=20.0, peak_watts=120.0),
            n_cpus=2,
            dram=DramModel.for_capacity(32.0),
            fan=FanModel(max_watts=120.0, min_speed=0.3),
            other_watts=20.0,
        )
        return SystemModel(
            "racky", 512, config,
            variation=ManufacturingVariation(sigma=0.004),
            environment=ThermalEnvironment(
                inlet_spread_c=2.5, rack_share=0.85, rack_size=16
            ),
            fan_controller=FanController(
                fan_model=config.fan, reference_watts=300.0, k_inlet=0.6
            ),
            seed=41,
        )

    def test_contiguous_subsets_noisier_than_random(self, racky_system):
        """One-rack subsets inherit their rack's thermal luck; random
        subsets average over racks.  The extrapolation-error spread
        must reflect that."""
        watts = racky_system.node_total_powers(0.95)
        truth = watts.mean()
        rng = np.random.default_rng(7)
        n = 16

        def spread(chooser) -> float:
            errs = [
                watts[chooser()].mean() / truth - 1.0 for _ in range(300)
            ]
            return float(np.std(errs))

        random_spread = spread(
            lambda: random_subset(racky_system.n_nodes, n, rng)
        )
        contiguous_spread = spread(
            lambda: contiguous_subset(racky_system.n_nodes, n, rng)
        )
        assert contiguous_spread > 1.5 * random_spread
