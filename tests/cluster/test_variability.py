"""Tests for repro.cluster.variability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.variability import (
    ManufacturingVariation,
    VidBinning,
    assign_vids,
)


class TestManufacturingVariation:
    def test_multipliers_positive(self, rng):
        v = ManufacturingVariation(sigma=0.05)
        m = v.sample_multipliers(1000, rng)
        assert np.all(m > 0)

    def test_median_near_one(self, rng):
        v = ManufacturingVariation(sigma=0.03)
        m = v.sample_multipliers(50_000, rng)
        assert np.median(m) == pytest.approx(1.0, abs=0.01)

    def test_spread_matches_sigma(self, rng):
        v = ManufacturingVariation(sigma=0.02)
        m = v.sample_multipliers(100_000, rng)
        assert np.std(np.log(m)) == pytest.approx(0.02, rel=0.05)

    def test_zero_sigma_degenerate(self, rng):
        v = ManufacturingVariation(sigma=0.0)
        m = v.sample_multipliers(10, rng)
        np.testing.assert_allclose(m, 1.0)

    def test_outliers_skew_high(self, rng):
        v = ManufacturingVariation(sigma=0.01, outlier_rate=0.2,
                                   outlier_sigma=0.3)
        m = v.sample_multipliers(20_000, rng)
        # Outlier bump is one-sided (adds |N| in log space).
        c = np.log(m) - np.log(m).mean()
        skew = (c**3).mean() / (c**2).mean() ** 1.5
        assert skew > 0.5

    def test_outlier_rate_respected(self, rng):
        v = ManufacturingVariation(sigma=1e-6, outlier_rate=0.1,
                                   outlier_sigma=0.5)
        m = v.sample_multipliers(50_000, rng)
        frac_big = np.mean(m > 1.01)
        assert frac_big == pytest.approx(0.1, abs=0.01)

    def test_expected_cv_small_sigma(self):
        assert ManufacturingVariation(sigma=0.02).expected_cv() == pytest.approx(
            0.02, rel=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            ManufacturingVariation(sigma=-0.1)
        with pytest.raises(ValueError, match="outlier_rate"):
            ManufacturingVariation(outlier_rate=1.0)
        with pytest.raises(ValueError, match="n must be"):
            ManufacturingVariation().sample_multipliers(0, np.random.default_rng())

    def test_deterministic_given_rng(self):
        v = ManufacturingVariation(sigma=0.02, outlier_rate=0.05)
        a = v.sample_multipliers(100, np.random.default_rng(3))
        b = v.sample_multipliers(100, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestVidBinning:
    def test_voltage_monotone_in_vid(self):
        b = VidBinning()
        volts = [b.voltage_for_vid(v) for v in b.vid_values]
        assert all(v2 > v1 for v1, v2 in zip(volts, volts[1:]))

    def test_voltage_for_lowest_vid(self):
        b = VidBinning()
        assert b.voltage_for_vid(b.vid_values[0]) == pytest.approx(b.base_volts)

    def test_voltage_step(self):
        b = VidBinning()
        v0 = b.voltage_for_vid(b.vid_values[0])
        v1 = b.voltage_for_vid(b.vid_values[1])
        assert v1 - v0 == pytest.approx(b.volts_per_step)

    def test_vectorised_voltage(self):
        b = VidBinning()
        vids = np.array(b.vid_values[:3])
        volts = b.voltage_for_vid(vids)
        assert volts.shape == (3,)

    def test_out_of_grid_rejected(self):
        b = VidBinning()
        with pytest.raises(ValueError, match="grid"):
            b.voltage_for_vid(b.vid_values[-1] + 1)

    def test_quality_to_vid_extremes(self):
        b = VidBinning()
        vids = b.quality_to_vid(np.array([0.0, 1.0]))
        assert vids[0] == b.vid_values[0]
        assert vids[-1] == b.vid_values[-1]

    def test_quality_to_vid_monotone(self, rng):
        b = VidBinning()
        q = np.sort(rng.random(100))
        vids = b.quality_to_vid(q)
        assert np.all(np.diff(vids) >= 0)

    def test_quality_out_of_range(self):
        with pytest.raises(ValueError, match="quality"):
            VidBinning().quality_to_vid(np.array([1.5]))

    def test_validation(self):
        with pytest.raises(ValueError, match="two VID"):
            VidBinning(vid_values=(40,))
        with pytest.raises(ValueError, match="increasing"):
            VidBinning(vid_values=(42, 41))
        with pytest.raises(ValueError, match="positive"):
            VidBinning(volts_per_step=0.0)


class TestAssignVids:
    def test_all_in_grid(self, rng):
        b = VidBinning()
        vids = assign_vids(500, rng, b)
        assert set(vids.tolist()) <= set(b.vid_values)

    def test_mid_grid_dominates(self, rng):
        b = VidBinning()
        vids = assign_vids(20_000, rng, b, concentration=2.0)
        counts = {v: int((vids == v).sum()) for v in b.vid_values}
        mid = b.vid_values[len(b.vid_values) // 2]
        assert counts[mid] > counts[b.vid_values[0]]
        assert counts[mid] > counts[b.vid_values[-1]]

    def test_deterministic(self):
        a = assign_vids(50, np.random.default_rng(4))
        b = assign_vids(50, np.random.default_rng(4))
        np.testing.assert_array_equal(a, b)

    def test_bad_args(self, rng):
        with pytest.raises(ValueError):
            assign_vids(0, rng)
        with pytest.raises(ValueError):
            assign_vids(5, rng, concentration=0.0)

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=200))
    def test_length(self, n):
        vids = assign_vids(n, np.random.default_rng(0))
        assert vids.shape == (n,)
