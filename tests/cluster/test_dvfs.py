"""Tests for repro.cluster.dvfs."""

import numpy as np
import pytest

from repro.cluster.components import GpuModel
from repro.cluster.dvfs import (
    DvfsGovernor,
    OperatingPoint,
    VoltageFrequencyCurve,
    efficiency_search,
)


class TestOperatingPoint:
    def test_valid(self):
        p = OperatingPoint(774.0, 1.018)
        assert p.freq_mhz == 774.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            OperatingPoint(0.0, 1.0)
        with pytest.raises(ValueError):
            OperatingPoint(700.0, -0.1)


class TestVoltageFrequencyCurve:
    def test_min_voltage_rises_with_frequency(self):
        c = VoltageFrequencyCurve()
        assert c.min_stable_volts(900.0) > c.min_stable_volts(700.0)

    def test_quality_offset_shifts_curve(self):
        good = VoltageFrequencyCurve(quality_offset=0.0)
        bad = VoltageFrequencyCurve(quality_offset=0.05)
        assert bad.min_stable_volts(774.0) == pytest.approx(
            good.min_stable_volts(774.0) + 0.05
        )

    def test_is_stable(self):
        c = VoltageFrequencyCurve(f0_mhz=774.0, v0=1.0)
        assert c.is_stable(OperatingPoint(774.0, 1.0))
        assert c.is_stable(OperatingPoint(774.0, 1.1))
        assert not c.is_stable(OperatingPoint(774.0, 0.9))

    def test_vectorised(self):
        c = VoltageFrequencyCurve()
        v = c.min_stable_volts(np.array([700.0, 800.0, 900.0]))
        assert v.shape == (3,)
        assert np.all(np.diff(v) > 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            VoltageFrequencyCurve(f0_mhz=-1.0)
        with pytest.raises(ValueError, match="slope"):
            VoltageFrequencyCurve(slope_v_per_mhz=-0.001)
        with pytest.raises(ValueError, match="frequency"):
            VoltageFrequencyCurve().min_stable_volts(0.0)


class TestDvfsGovernor:
    def test_performance_constant(self):
        g = DvfsGovernor.performance()
        x = np.linspace(0, 1, 11)
        np.testing.assert_allclose(g.frequency_multiplier(x), 1.0)

    def test_stepped(self):
        g = DvfsGovernor.stepped([0.5], [1.0, 0.8])
        assert g.frequency_multiplier(0.25) == 1.0
        assert g.frequency_multiplier(0.75) == 0.8

    def test_stepped_boundaries(self):
        g = DvfsGovernor.stepped([0.3, 0.6], [1.0, 0.9, 0.8])
        assert g.frequency_multiplier(0.3) == 1.0  # right-open intervals
        assert g.frequency_multiplier(0.31) == 0.9

    def test_stepped_validation(self):
        with pytest.raises(ValueError, match="len"):
            DvfsGovernor.stepped([0.5], [1.0])
        with pytest.raises(ValueError, match="increasing"):
            DvfsGovernor.stepped([0.6, 0.4], [1.0, 0.9, 0.8])
        with pytest.raises(ValueError, match="positive"):
            DvfsGovernor.stepped([0.5], [1.0, 0.0])

    def test_fraction_out_of_range(self):
        with pytest.raises(ValueError, match="run_fraction"):
            DvfsGovernor.performance().frequency_multiplier(1.5)

    def test_scalar_return(self):
        assert isinstance(
            DvfsGovernor.performance().frequency_multiplier(0.5), float
        )

    def test_custom_profile_validated(self):
        g = DvfsGovernor(name="bad", profile=lambda x: x * 0.0)
        with pytest.raises(ValueError, match="non-positive"):
            g.frequency_multiplier(np.array([0.5]))


class TestEfficiencySearch:
    @pytest.fixture()
    def gpu(self):
        return GpuModel(idle_watts=18.0, peak_watts=230.0,
                        nominal_mhz=900.0, nominal_volts=1.1425)

    def test_finds_interior_optimum(self, gpu):
        # With voltage tracking the stability frontier, efficiency
        # peaks below the maximum frequency (the L-CSC 774 MHz story).
        curve = VoltageFrequencyCurve(
            f0_mhz=774.0, v0=1.018, slope_v_per_mhz=0.0006
        )
        grid = np.arange(500.0, 1001.0, 2.0)
        best, eff = efficiency_search(gpu, curve, grid)
        assert grid[0] < best.freq_mhz < grid[-1]
        assert eff.shape == grid.shape

    def test_best_point_is_argmax(self, gpu):
        curve = VoltageFrequencyCurve()
        grid = np.linspace(600.0, 950.0, 36)
        best, eff = efficiency_search(gpu, curve, grid)
        assert best.freq_mhz == grid[np.argmax(eff)]

    def test_voltage_margin_lowers_efficiency(self, gpu):
        curve = VoltageFrequencyCurve()
        grid = np.linspace(600.0, 950.0, 36)
        _, eff0 = efficiency_search(gpu, curve, grid)
        _, eff1 = efficiency_search(gpu, curve, grid, voltage_margin=0.05)
        assert np.all(eff1 < eff0)

    def test_best_point_stable(self, gpu):
        curve = VoltageFrequencyCurve()
        grid = np.linspace(600.0, 950.0, 36)
        best, _ = efficiency_search(gpu, curve, grid)
        assert curve.is_stable(best)

    def test_validation(self, gpu):
        curve = VoltageFrequencyCurve()
        with pytest.raises(ValueError, match="empty"):
            efficiency_search(gpu, curve, [])
        with pytest.raises(ValueError, match="positive"):
            efficiency_search(gpu, curve, [-100.0])
        with pytest.raises(ValueError, match="utilisation"):
            efficiency_search(gpu, curve, [700.0], utilisation=0.0)
