"""Tests for repro.cluster.components."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.components import (
    ComponentPowerModel,
    CpuModel,
    DramModel,
    FanModel,
    GpuModel,
    NicModel,
)


class TestComponentPowerModel:
    def test_idle_and_peak(self):
        m = ComponentPowerModel("x", idle_watts=10.0, peak_watts=100.0)
        assert m.power(0.0) == 10.0
        assert m.power(1.0) == 100.0

    def test_linear_midpoint(self):
        m = ComponentPowerModel("x", 10.0, 110.0, gamma=1.0)
        assert m.power(0.5) == pytest.approx(60.0)

    def test_gamma_bends_curve(self):
        lin = ComponentPowerModel("x", 0.0, 100.0, gamma=1.0)
        sup = ComponentPowerModel("x", 0.0, 100.0, gamma=1.5)
        assert sup.power(0.5) < lin.power(0.5)
        assert sup.power(1.0) == lin.power(1.0)

    def test_vectorised(self):
        m = ComponentPowerModel("x", 10.0, 100.0)
        u = np.array([0.0, 0.5, 1.0])
        p = m.power(u)
        assert p.shape == (3,)
        assert p[0] == 10.0 and p[2] == 100.0

    def test_out_of_range_rejected(self):
        m = ComponentPowerModel("x", 10.0, 100.0)
        with pytest.raises(ValueError, match="utilisation"):
            m.power(1.5)
        with pytest.raises(ValueError, match="utilisation"):
            m.power(-0.2)

    def test_peak_below_idle_rejected(self):
        with pytest.raises(ValueError, match="below idle"):
            ComponentPowerModel("x", 100.0, 50.0)

    def test_negative_idle_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            ComponentPowerModel("x", -1.0, 50.0)

    def test_bad_gamma_rejected(self):
        with pytest.raises(ValueError, match="gamma"):
            ComponentPowerModel("x", 1.0, 5.0, gamma=0.0)

    def test_with_multiplier(self):
        m = ComponentPowerModel("x", 10.0, 100.0)
        m2 = m.with_multiplier(1.1)
        assert m2.idle_watts == pytest.approx(11.0)
        assert m2.peak_watts == pytest.approx(110.0)

    def test_with_multiplier_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ComponentPowerModel("x", 1.0, 2.0).with_multiplier(0.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_in_utilisation(self, u):
        m = ComponentPowerModel("x", 20.0, 200.0, gamma=1.2)
        assert m.power(u) <= m.power(min(u + 0.05, 1.0)) + 1e-9


class TestProcessorOperatingPoints:
    def test_nominal_point_matches_base_model(self):
        cpu = CpuModel()
        for u in (0.0, 0.4, 1.0):
            assert cpu.power_at(
                u, cpu.nominal_mhz, cpu.nominal_volts
            ) == pytest.approx(cpu.power(u))

    def test_lower_voltage_lower_power(self):
        gpu = GpuModel()
        p_hi = gpu.power_at(0.9, gpu.nominal_mhz, 1.05)
        p_lo = gpu.power_at(0.9, gpu.nominal_mhz, 0.95)
        assert p_lo < p_hi

    def test_lower_frequency_lower_power(self):
        gpu = GpuModel()
        p_hi = gpu.power_at(0.9, 900.0, 1.0)
        p_lo = gpu.power_at(0.9, 700.0, 1.0)
        assert p_lo < p_hi

    def test_dynamic_scales_with_f_v_squared(self):
        # With zero static fraction and idle below static floor, power
        # ratio at full load is exactly (f/f0)(V/V0)^2.
        gpu = GpuModel(idle_watts=0.0, peak_watts=200.0, static_fraction=0.0)
        base = gpu.power_at(1.0, gpu.nominal_mhz, gpu.nominal_volts)
        scaled = gpu.power_at(1.0, gpu.nominal_mhz * 0.8, gpu.nominal_volts * 0.9)
        assert scaled / base == pytest.approx(0.8 * 0.9**2)

    def test_leakage_scales_with_voltage(self):
        cpu = CpuModel(static_fraction=0.5, leakage_exponent=2.0)
        p0 = cpu.power_at(0.0, cpu.nominal_mhz, cpu.nominal_volts)
        p1 = cpu.power_at(0.0, cpu.nominal_mhz, cpu.nominal_volts * 1.1)
        assert p1 > p0

    def test_array_voltages_broadcast(self):
        gpu = GpuModel()
        volts = np.array([0.95, 1.0, 1.05])
        p = gpu.power_at(0.9, gpu.nominal_mhz, volts)
        assert p.shape == (3,)
        assert np.all(np.diff(p) > 0)  # increasing with voltage

    def test_bad_operating_point(self):
        with pytest.raises(ValueError, match="positive"):
            CpuModel().power_at(0.5, -100.0, 1.0)
        with pytest.raises(ValueError, match="positive"):
            CpuModel().power_at(0.5, 100.0, 0.0)

    def test_bad_static_fraction(self):
        with pytest.raises(ValueError, match="static_fraction"):
            CpuModel(static_fraction=1.5)


class TestDramModel:
    def test_for_capacity_scales(self):
        small = DramModel.for_capacity(16.0)
        big = DramModel.for_capacity(64.0)
        assert big.peak_watts == pytest.approx(4 * small.peak_watts)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            DramModel(idle_watts=1.0, peak_watts=2.0, gib=0.0)


class TestNicModel:
    def test_nearly_flat(self):
        nic = NicModel()
        swing = nic.power(1.0) - nic.power(0.0)
        assert swing < 0.5 * nic.power(0.0)


class TestFanModel:
    def test_cube_law(self):
        fan = FanModel(max_watts=100.0, min_speed=0.2)
        assert fan.power(1.0) == pytest.approx(100.0)
        assert fan.power(0.5) == pytest.approx(12.5)

    def test_min_speed_enforced(self):
        fan = FanModel(max_watts=100.0, min_speed=0.3)
        with pytest.raises(ValueError, match="speed"):
            fan.power(0.1)

    def test_over_speed_rejected(self):
        with pytest.raises(ValueError, match="speed"):
            FanModel().power(1.2)

    def test_zero_max_watts_allowed(self):
        # Water-cooled designs: no fan power at any speed.
        fan = FanModel(max_watts=0.0)
        assert fan.power(0.5) == 0.0

    def test_vectorised(self):
        fan = FanModel(max_watts=80.0)
        p = fan.power(np.array([0.4, 0.8]))
        assert p.shape == (2,)
        assert p[1] > p[0]

    def test_bad_min_speed(self):
        with pytest.raises(ValueError, match="min_speed"):
            FanModel(min_speed=0.0)

    @given(st.floats(min_value=0.3, max_value=0.95))
    def test_monotone_in_speed(self, s):
        fan = FanModel(max_watts=120.0)
        assert fan.power(s) < fan.power(min(s + 0.05, 1.0))
