"""Tests for repro.units."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestPowerConversions:
    def test_watts_to_kilowatts(self):
        assert units.watts_to_kilowatts(1500.0) == 1.5

    def test_kilowatts_to_watts(self):
        assert units.kilowatts_to_watts(2.5) == 2500.0

    def test_watts_to_megawatts(self):
        assert units.watts_to_megawatts(11_503_300.0) == pytest.approx(11.5033)

    def test_megawatts_to_watts(self):
        assert units.megawatts_to_watts(1.0) == 1e6

    def test_array_input_preserves_shape(self):
        w = np.array([1000.0, 2000.0, 3000.0])
        kw = units.watts_to_kilowatts(w)
        assert isinstance(kw, np.ndarray)
        np.testing.assert_allclose(kw, [1.0, 2.0, 3.0])

    def test_scalar_input_returns_float(self):
        assert isinstance(units.watts_to_kilowatts(100), float)

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_power_roundtrip(self, w):
        assert units.kilowatts_to_watts(
            units.watts_to_kilowatts(w)
        ) == pytest.approx(w, rel=1e-12, abs=1e-9)

    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_mega_roundtrip(self, w):
        assert units.megawatts_to_watts(
            units.watts_to_megawatts(w)
        ) == pytest.approx(w, rel=1e-12, abs=1e-9)


class TestEnergyConversions:
    def test_joules_to_kwh(self):
        assert units.joules_to_kilowatt_hours(3.6e6) == 1.0

    def test_kwh_to_joules(self):
        assert units.kilowatt_hours_to_joules(2.0) == 7.2e6

    @given(st.floats(min_value=0.0, max_value=1e15, allow_nan=False))
    def test_energy_roundtrip(self, j):
        assert units.kilowatt_hours_to_joules(
            units.joules_to_kilowatt_hours(j)
        ) == pytest.approx(j, rel=1e-12, abs=1e-9)


class TestTimeConversions:
    def test_seconds_to_hours(self):
        assert units.seconds_to_hours(7200.0) == 2.0

    def test_hours_to_seconds(self):
        assert units.hours_to_seconds(1.5) == 5400.0

    def test_seconds_to_minutes(self):
        assert units.seconds_to_minutes(90.0) == 1.5

    def test_minutes_to_seconds(self):
        assert units.minutes_to_seconds(2.0) == 120.0

    def test_paper_runtimes(self):
        # Table 2's runtimes round-trip to the published hours.
        assert units.seconds_to_hours(units.hours_to_seconds(28.0)) == 28.0


class TestEfficiency:
    def test_flops_per_watt(self):
        assert units.flops_per_watt(1e12, 1000.0) == 1e9

    def test_gflops_per_watt(self):
        # L-CSC Nov 2014: ~5.27 GFLOPS/W.
        assert units.gflops_per_watt(311_512.0, 59_110.0) == pytest.approx(
            5.27, rel=0.01
        )

    def test_zero_power_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            units.flops_per_watt(1e9, 0.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            units.gflops_per_watt(1.0, -5.0)
