"""Regenerate the golden comparison snapshot.

Runs the full experiment sweep serially at paper scale and writes every
``Comparison`` (label, paper, measured) to
``tests/experiments/golden_comparisons.json`` — the file the golden
regression test (``tests/experiments/test_runner_golden.py``) holds
serial, parallel and cached-replay runs to, bit for bit.

Run it only when a deliberate change to an experiment or a shared
statistical kernel shifts the measured values::

    PYTHONPATH=src python scripts/make_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.runner import run_all

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests" / "experiments" / "golden_comparisons.json"
)


def snapshot(results) -> dict:
    """Every comparison of every result, as JSON-stable primitives."""
    return {
        exp_id: [
            {
                "label": c.label,
                "paper": float(c.paper),
                "measured": float(c.measured),
            }
            for c in result.comparisons()
        ]
        for exp_id, result in results.items()
    }


def main() -> int:
    results = run_all(verbose=False)
    failed = [i for i, r in results.items() if not r.all_ok()]
    if failed:
        raise SystemExit(f"refusing to snapshot failing experiments: {failed}")
    GOLDEN_PATH.write_text(
        json.dumps(snapshot(results), indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    n = sum(len(v) for v in snapshot(results).values())
    print(f"wrote {GOLDEN_PATH} ({len(results)} experiments, "
          f"{n} comparisons)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
