#!/usr/bin/env sh
# Pre-merge gate: domain lint, tier-1 tests, bytecode compile.
#
# Run from anywhere inside the repo:
#     sh scripts/check.sh
#
# Exits non-zero on the first failing stage.  The lint stage enforces
# the reproducibility/units/RNG invariants (docs/linting.md); the test
# stage is the tier-1 suite; compileall catches syntax errors in files
# no test imports.

set -eu

cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== repro lint (RPX001-RPX007)"
python -m repro.cli lint src/repro

echo "== pytest (tier 1)"
python -m pytest -x -q

echo "== compileall"
python -m compileall -q src

echo "all gates green"
