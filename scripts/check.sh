#!/usr/bin/env sh
# Pre-merge gate: domain lint, tier-1 tests, bytecode compile.
#
# Run from anywhere inside the repo:
#     sh scripts/check.sh
#
# Exits non-zero on the first failing stage.  The lint stage enforces
# the reproducibility/units/RNG invariants (docs/linting.md); the test
# stage is the tier-1 suite; compileall catches syntax errors in files
# no test imports.

set -eu

cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== repro lint (per-file RPX001-RPX008 + semantic RPX101-RPX103)"
python -m repro.cli lint --semantic src/repro

echo "== pytest (tier 1)"
# Shard across cores when pytest-xdist is available (CI installs it);
# fall back to serial otherwise.  Always print the slowest tests so
# tier-1 creep is visible in every log.
if python -c "import xdist" 2>/dev/null; then
    python -m pytest -x -q -n auto --durations=5
else
    python -m pytest -x -q --durations=5
fi

echo "== chaos smoke (fault injection + recovery reconciliation)"
# A small end-to-end chaos sweep: inject dropout + a node loss, stream
# through the self-healing ingest, and require exact fault
# reconciliation plus estimates inside the stated error bounds.
python -m repro.cli chaos --system l-csc --max-nodes 24 \
    --core-seconds 600 --dropout 0.02,0.05 --node-loss 1
# The correlated-pathology edition: aliasing meter, entropy-dependent
# power and device spread must reconcile their exact bias ledgers,
# stay inside the correlation-widened bounds, and trip the matching
# streaming detector in every cell.
python -m repro.cli chaos --system l-csc --max-nodes 16 \
    --core-seconds 600 --pathology all --intensity high

echo "== wire smoke (parser fuzz + codec frontier reconciliation)"
# Fuzz the frame parser (mutated streams must never crash it), then
# run a small bandwidth-vs-accuracy sweep: every cell must reconcile
# the reader's CRC/sequence counters against the injected ledger
# exactly and keep drift inside the codec's stated bounds.
python -m repro.cli wire --fuzz 100
python -m repro.cli wire --system l-csc --max-nodes 12 \
    --core-seconds 600 --codecs delta-varint,quant8 \
    --drop 0 0.1 --corrupt 0.1

echo "== serve smoke (service self-test over one TCP lifecycle)"
# Boot the telemetry service on an ephemeral port, run a full
# create/ingest/verdict/close lifecycle against it over real sockets,
# and require the verdict to match the directly computed one.
python -m repro.cli serve --self-test

echo "== compileall"
python -m compileall -q src

# Opt-in perf gate: RUN_BENCH=1 re-runs the shard, serve and faults
# benchmarks and compares them against the committed baselines with the 30%
# regression threshold.  On a different machine the comparison prints
# a note and passes (timings from another box are not comparable).
if [ "${RUN_BENCH:-0}" = "1" ]; then
    echo "== shard benchmark + regression gate (RUN_BENCH=1)"
    python -m pytest benchmarks/bench_shard.py --benchmark-only \
        --benchmark-json=/tmp/bench_shard_fresh.json -q
    python scripts/bench_compare.py BENCH_shard.json \
        /tmp/bench_shard_fresh.json
    echo "== serve benchmark + regression gate (RUN_BENCH=1)"
    python -m pytest benchmarks/bench_serve.py --benchmark-only \
        --benchmark-json=/tmp/bench_serve_fresh.json -q
    python scripts/bench_compare.py BENCH_serve.json \
        /tmp/bench_serve_fresh.json
    echo "== faults benchmark + regression gate (RUN_BENCH=1)"
    python -m pytest benchmarks/bench_faults.py --benchmark-only \
        --benchmark-json=/tmp/bench_faults_fresh.json -q
    python scripts/bench_compare.py BENCH_faults.json \
        /tmp/bench_faults_fresh.json
fi

echo "all gates green"
