"""Perf-regression gate over pytest-benchmark JSON files.

Compares a freshly produced benchmark JSON against a committed
baseline (e.g. ``BENCH_shard.json``):

* same machine (CPU model, core count, architecture): any benchmark
  whose mean time regressed more than the threshold (default 30%)
  fails the gate with exit code 1;
* different machine: timings are not comparable — the gate prints a
  note and exits 0, so CI runners never fail against numbers committed
  from another box.

Stdlib only, so it runs anywhere the repo does:

    python scripts/bench_compare.py BENCH_shard.json fresh.json
    python scripts/bench_compare.py --threshold 0.5 old.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: machine_info fields that must match for timings to be comparable.
_MACHINE_KEYS = ("machine", "system")
_CPU_KEYS = ("brand_raw", "count", "arch")


def _machine_signature(data: dict) -> dict:
    """The comparable subset of a pytest-benchmark machine_info."""
    info = data.get("machine_info", {})
    cpu = info.get("cpu", {})
    sig = {key: info.get(key) for key in _MACHINE_KEYS}
    sig.update({f"cpu.{key}": cpu.get(key) for key in _CPU_KEYS})
    return sig


def _benchmarks_by_name(data: dict) -> dict[str, float]:
    """Map benchmark name -> mean seconds."""
    out = {}
    for bench in data.get("benchmarks", []):
        stats = bench.get("stats", {})
        if "mean" in stats:
            out[bench["name"]] = float(stats["mean"])
    return out


def compare(
    baseline: dict, current: dict, threshold: float
) -> tuple[int, list[str]]:
    """Return (exit_code, report_lines) for one baseline/current pair."""
    lines = []
    base_sig = _machine_signature(baseline)
    cur_sig = _machine_signature(current)
    if base_sig != cur_sig:
        diffs = [
            f"  {key}: baseline={base_sig[key]!r} current={cur_sig[key]!r}"
            for key in base_sig
            if base_sig[key] != cur_sig[key]
        ]
        lines.append(
            "SKIP: machine_info differs — timings are not comparable"
        )
        lines.extend(diffs)
        return 0, lines

    base = _benchmarks_by_name(baseline)
    cur = _benchmarks_by_name(current)
    missing = sorted(set(base) - set(cur))
    for name in missing:
        lines.append(f"NOTE: {name} missing from the current run")

    failed = False
    for name in sorted(set(base) & set(cur)):
        ratio = cur[name] / base[name]
        if ratio > 1.0 + threshold:
            failed = True
            lines.append(
                f"FAIL: {name} regressed {ratio - 1.0:+.1%} "
                f"({base[name]:.3f}s -> {cur[name]:.3f}s, "
                f"threshold {threshold:.0%})"
            )
        else:
            lines.append(
                f"ok:   {name} {ratio - 1.0:+.1%} "
                f"({base[name]:.3f}s -> {cur[name]:.3f}s)"
            )
    if not set(base) & set(cur):
        lines.append("NOTE: no common benchmarks to compare")
    return (1 if failed else 0), lines


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        description="fail when benchmarks regress on the same machine"
    )
    parser.add_argument("baseline", type=Path, help="committed JSON")
    parser.add_argument("current", type=Path, help="fresh JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional slowdown before failing (default 0.30)",
    )
    args = parser.parse_args(argv)
    baseline = json.loads(args.baseline.read_text())
    current = json.loads(args.current.read_text())
    code, lines = compare(baseline, current, args.threshold)
    for line in lines:
        print(line)
    return code


if __name__ == "__main__":
    sys.exit(main())
